package atv

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"hdmaps/internal/core"
	"hdmaps/internal/geo"
)

func TestGenerateFactory(t *testing.T) {
	rng := rand.New(rand.NewSource(381))
	f, err := GenerateFactory(FactoryParams{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if issues := f.Map.Validate(); len(issues) != 0 {
		t.Fatalf("invalid factory map: %v", issues[0])
	}
	_, lines, _, _, _, _ := f.Map.Counts()
	if lines < 8 { // hull + aisles
		t.Errorf("walls = %d", lines)
	}
	signs := f.Map.PointsIn(f.Bounds.Expand(1), core.ClassSign)
	if len(signs) != 8 { // 4 aisles × 2
		t.Errorf("signs = %d", len(signs))
	}
	if _, err := GenerateFactory(FactoryParams{Width: 5, Height: 5}, rng); !errors.Is(err, ErrBadFactory) {
		t.Errorf("tiny factory err = %v", err)
	}
}

func TestCastRay(t *testing.T) {
	rng := rand.New(rand.NewSource(382))
	f, err := GenerateFactory(FactoryParams{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// From the centre of the bottom corridor straight down: wall at y=0.
	d, hit := f.CastRay(geo.V2(30, 2), -math.Pi/2, 20)
	if !hit || math.Abs(d-2) > 1e-9 {
		t.Errorf("ray down: d=%v hit=%v", d, hit)
	}
	// Straight up hits the first shelving row at y=8.
	d, hit = f.CastRay(geo.V2(30, 2), math.Pi/2, 20)
	if !hit || math.Abs(d-6) > 1e-9 {
		t.Errorf("ray up: d=%v hit=%v", d, hit)
	}
	// Capped at max range when nothing is near enough.
	d, hit = f.CastRay(geo.V2(30, 2), 0, 5)
	if hit || d != 5 {
		t.Errorf("capped ray: d=%v hit=%v", d, hit)
	}
}

func TestPatrolBuildsGridAndKeepsMap(t *testing.T) {
	rng := rand.New(rand.NewSource(383))
	f, err := GenerateFactory(FactoryParams{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	onboard := f.Map.Clone()
	res, err := Patrol(f, onboard, f.PatrolLoop(2), PatrolConfig{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage < 0.2 {
		t.Errorf("coverage = %v", res.Coverage)
	}
	// Walls appear occupied at sampled positions (the wall sits on the
	// grid boundary, so check the first two cell rows).
	occupiedHits := 0
	for x := 5.0; x < 55; x += 5 {
		best := 0.0
		for _, y := range []float64{-0.1, 0.1, 0.3} {
			if p := res.Grid.ProbAt(geo.V2(x, y)); p > best {
				best = p
			}
		}
		if best > 0.6 {
			occupiedHits++
		}
	}
	if occupiedHits < 5 {
		t.Errorf("hull wall occupied at only %d/10 samples", occupiedHits)
	}
	// Corridor is free.
	if p := res.Grid.ProbAt(geo.V2(30, 2)); p > 0.3 {
		t.Errorf("corridor occupancy = %v", p)
	}
	// Unchanged world: no spurious updates.
	if res.Added != 0 || res.Removed != 0 {
		t.Errorf("false updates: added=%d removed=%d", res.Added, res.Removed)
	}
}

func TestPatrolDetectsSignChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(384))
	f, err := GenerateFactory(FactoryParams{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	onboard := f.Map.Clone()
	// Mutate the world: remove one visible sign (left end of aisle 1)
	// and add a new one on the patrol corridor.
	var removedPos geo.Vec2
	for _, s := range f.Map.PointsIn(f.Bounds, core.ClassSign) {
		if s.Pos.X < 10 {
			removedPos = s.Pos.XY()
			if err := f.Map.RemovePoint(s.ID); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	newPos := geo.V2(30, 3)
	f.Map.AddPoint(core.PointElement{
		Class: core.ClassSign, Pos: newPos.Vec3(1.8),
		Attr: map[string]string{"type": "safety"},
	})
	f.Map.FreezeIndexes()

	// Several patrol laps (multiple passes let beliefs converge); updates
	// accumulate across laps because the on-board map is patched in
	// place.
	loop := f.PatrolLoop(2)
	var totalAdded, totalRemoved int
	for lap := 0; lap < 3; lap++ {
		res, err := Patrol(f, onboard, loop, PatrolConfig{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		totalAdded += res.Added
		totalRemoved += res.Removed
	}
	if totalAdded == 0 {
		t.Error("new sign not added to the map")
	}
	if totalRemoved == 0 && onboardHasSignNear(onboard, removedPos) {
		t.Error("missing sign not removed from the map")
	}
	// Added sign is near the true new sign.
	if !onboardHasSignNear(onboard, newPos) {
		t.Error("added sign not near the true position")
	}
}

func onboardHasSignNear(m *core.Map, p geo.Vec2) bool {
	for _, s := range m.PointsIn(geo.NewAABB(p, p).Expand(1.5), core.ClassSign) {
		if s.Pos.XY().Dist(p) < 1.5 {
			return true
		}
	}
	return false
}

func TestPatrolErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(385))
	f, _ := GenerateFactory(FactoryParams{}, rng)
	if _, err := Patrol(f, f.Map.Clone(), nil, PatrolConfig{}, rng); !errors.Is(err, ErrBadFactory) {
		t.Errorf("nil route err = %v", err)
	}
}
