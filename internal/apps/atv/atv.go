// Package atv implements the indoor Automated Transfer Vehicle pipeline
// of Tas et al. [10], [11]: a factory floor is mapped as an occupancy
// grid by a range-sensing ATV while a sign detector compares what it
// sees against the on-board HD map; new or missing safety signs are
// batched as map updates.
package atv

import (
	"errors"
	"math"
	"math/rand"

	"hdmaps/internal/core"
	"hdmaps/internal/geo"
	"hdmaps/internal/raster"
	"hdmaps/internal/update/incremental"
)

// ErrBadFactory is returned for degenerate factory parameters.
var ErrBadFactory = errors.New("atv: bad factory parameters")

// Factory is an indoor ground-truth world: wall segments (shelving
// aisles + outer hull) and safety signs, stored in the same HD-map model
// the outdoor pipelines use (walls are ClassBarrier lines).
type Factory struct {
	Map    *core.Map
	Bounds geo.AABB
	// Aisles is the number of shelving rows.
	Aisles int
}

// FactoryParams configures GenerateFactory.
type FactoryParams struct {
	// Width/Height of the hall in metres (defaults 60×40).
	Width, Height float64
	// Aisles is the number of shelving rows (default 4).
	Aisles int
	// SignsPerAisle places safety signs at shelving ends (default 2).
	SignsPerAisle int
}

func (p *FactoryParams) defaults() {
	if p.Width <= 0 {
		p.Width = 60
	}
	if p.Height <= 0 {
		p.Height = 40
	}
	if p.Aisles <= 0 {
		p.Aisles = 4
	}
	if p.SignsPerAisle <= 0 {
		p.SignsPerAisle = 2
	}
}

// GenerateFactory builds the hall.
func GenerateFactory(p FactoryParams, rng *rand.Rand) (*Factory, error) {
	p.defaults()
	if p.Width < 20 || p.Height < 15 {
		return nil, ErrBadFactory
	}
	m := core.NewMap("factory")
	wall := func(a, b geo.Vec2) {
		m.AddLine(core.LineElement{
			Class:    core.ClassBarrier,
			Geometry: geo.Polyline{a, b},
			Meta:     core.Meta{Confidence: 1, Source: "factory"},
		})
	}
	// Outer hull.
	w, h := p.Width, p.Height
	wall(geo.V2(0, 0), geo.V2(w, 0))
	wall(geo.V2(w, 0), geo.V2(w, h))
	wall(geo.V2(w, h), geo.V2(0, h))
	wall(geo.V2(0, h), geo.V2(0, 0))
	// Shelving rows: horizontal walls with aisle gaps at both ends.
	gap := 4.0
	rowSpacing := h / float64(p.Aisles+1)
	for a := 1; a <= p.Aisles; a++ {
		y := rowSpacing * float64(a)
		wall(geo.V2(gap, y), geo.V2(w-gap, y))
		// Safety signs at shelving ends.
		for s := 0; s < p.SignsPerAisle; s++ {
			x := gap
			if s%2 == 1 {
				x = w - gap
			}
			m.AddPoint(core.PointElement{
				Class: core.ClassSign,
				Pos:   geo.V3(x, y+0.5, 1.8),
				Attr:  map[string]string{"type": "safety"},
				Meta:  core.Meta{Confidence: 1, Source: "factory"},
			})
		}
	}
	m.FreezeIndexes()
	return &Factory{
		Map:    m,
		Bounds: geo.NewAABB(geo.V2(0, 0), geo.V2(w, h)),
		Aisles: p.Aisles,
	}, nil
}

// wallSegments extracts all wall segments for ray casting.
func (f *Factory) wallSegments() [][2]geo.Vec2 {
	var segs [][2]geo.Vec2
	for _, id := range f.Map.LineIDs() {
		l, _ := f.Map.Line(id)
		if l.Class != core.ClassBarrier {
			continue
		}
		for i := 1; i < len(l.Geometry); i++ {
			segs = append(segs, [2]geo.Vec2{l.Geometry[i-1], l.Geometry[i]})
		}
	}
	return segs
}

// CastRay returns the distance to the nearest wall along the ray, capped
// at maxRange; hit reports whether a wall was struck.
func (f *Factory) CastRay(origin geo.Vec2, angle, maxRange float64) (dist float64, hit bool) {
	dir := geo.V2(math.Cos(angle), math.Sin(angle))
	end := origin.Add(dir.Scale(maxRange))
	best := maxRange
	found := false
	for _, s := range f.wallSegments() {
		if p, ok := geo.SegmentIntersect(origin, end, s[0], s[1]); ok {
			if d := p.Dist(origin); d < best {
				best = d
				found = true
			}
		}
	}
	return best, found
}

// PatrolConfig tunes an ATV patrol run.
type PatrolConfig struct {
	// Rays per scan (default 90).
	Rays int
	// MaxRange of the range sensor (default 20 m).
	MaxRange float64
	// RangeNoise σ (default 0.03 m).
	RangeNoise float64
	// SignRange/SignTPR of the visual sign detector (defaults 8 m, 0.9).
	SignRange, SignTPR float64
	// GridRes of the occupancy map (default 0.25 m).
	GridRes float64
	// StepLen between scan poses along the patrol loop (default 1 m).
	StepLen float64
}

func (c *PatrolConfig) defaults() {
	if c.Rays <= 0 {
		c.Rays = 90
	}
	if c.MaxRange <= 0 {
		c.MaxRange = 20
	}
	if c.RangeNoise == 0 {
		c.RangeNoise = 0.03
	}
	if c.SignRange <= 0 {
		c.SignRange = 8
	}
	if c.SignTPR == 0 {
		c.SignTPR = 0.9
	}
	if c.GridRes <= 0 {
		c.GridRes = 0.25
	}
	if c.StepLen <= 0 {
		c.StepLen = 1
	}
}

// PatrolResult reports one patrol.
type PatrolResult struct {
	// Grid is the occupancy map built during the patrol.
	Grid *raster.Occupancy
	// UpdatedMap is the stale on-board map with confirmed sign changes
	// applied.
	UpdatedMap *core.Map
	// Added / Removed count applied sign updates.
	Added, Removed int
	// Coverage is the known fraction of the grid after the patrol.
	Coverage float64
}

// PatrolLoop returns a rectangular patrol route through the hall's open
// perimeter corridor.
func (f *Factory) PatrolLoop(margin float64) geo.Polyline {
	if margin <= 0 {
		margin = 2
	}
	w := f.Bounds.Max.X
	h := f.Bounds.Max.Y
	return geo.Polyline{
		geo.V2(margin, margin), geo.V2(w-margin, margin),
		geo.V2(w-margin, h-margin), geo.V2(margin, h-margin),
		geo.V2(margin, margin),
	}
}

// Patrol drives the loop with a range sensor and sign detector: the grid
// is built from range returns (visual-SLAM substitute at the interface
// level), signs are detected, matched against the stale on-board map,
// and confirmed differences applied via the incremental fuser.
func Patrol(f *Factory, onboard *core.Map, route geo.Polyline, cfg PatrolConfig, rng *rand.Rand) (*PatrolResult, error) {
	cfg.defaults()
	if len(route) < 2 {
		return nil, ErrBadFactory
	}
	// The grid extends one metre beyond the hull so wall hits (whose
	// noise straddles the wall plane) always land in a valid cell.
	grid, err := raster.NewOccupancy(f.Bounds.Expand(1), cfg.GridRes)
	if err != nil {
		return nil, err
	}
	fuser, err := incremental.NewFuser(onboard, incremental.Config{
		MatchRadius: 1.5, PromoteObs: 3, DecayHalfLife: 3, DemoteConf: 0.2,
	})
	if err != nil {
		return nil, err
	}
	L := route.Length()
	stamp := uint64(0)
	for s := 0.0; s <= L; s += cfg.StepLen {
		stamp++
		pose := route.PoseAt(s)
		// Range scan -> occupancy update (per-scan deduplicated).
		rays := make([]raster.Ray, 0, cfg.Rays)
		for r := 0; r < cfg.Rays; r++ {
			a := float64(r) / float64(cfg.Rays) * 2 * math.Pi
			d, hit := f.CastRay(pose.P, a, cfg.MaxRange)
			d += rng.NormFloat64() * cfg.RangeNoise
			if d < 0.1 {
				d = 0.1
			}
			end := pose.P.Add(geo.V2(math.Cos(a), math.Sin(a)).Scale(d))
			rays = append(rays, raster.Ray{Hit: end, IsHit: hit})
		}
		grid.IntegrateScan(pose.P, rays)
		// Sign detection against the TRUE factory (line of sight
		// required: a wall between the ATV and the sign occludes it).
		var obs []incremental.Observation
		view := geo.NewAABB(pose.P, pose.P).Expand(cfg.SignRange)
		for _, sign := range f.Map.PointsIn(view, core.ClassSign) {
			d := sign.Pos.XY().Dist(pose.P)
			if d > cfg.SignRange {
				continue
			}
			if occluded(f, pose.P, sign.Pos.XY()) {
				continue
			}
			if rng.Float64() > cfg.SignTPR {
				continue
			}
			obs = append(obs, incremental.Observation{
				Class: core.ClassSign,
				P: sign.Pos.XY().Add(geo.V2(
					rng.NormFloat64()*0.1, rng.NormFloat64()*0.1)),
				PosVar: 0.01, Stamp: stamp,
			})
		}
		// The decay view must only cover what the ATV can actually see:
		// restrict to unoccluded mapped signs by passing a tight view.
		fuser.Observe(obs, visibleRegion(f, pose.P, cfg.SignRange), stamp)
	}
	res := &PatrolResult{
		Grid:       grid,
		UpdatedMap: onboard,
		Added:      fuser.Promoted,
		Removed:    fuser.Removed,
		Coverage:   grid.KnownFraction(),
	}
	return res, nil
}

// occluded reports whether a wall blocks the segment from a to b.
func occluded(f *Factory, a, b geo.Vec2) bool {
	for _, s := range f.wallSegments() {
		if p, ok := geo.SegmentIntersect(a, b, s[0], s[1]); ok {
			// Touching at the target point does not occlude.
			if p.Dist(b) > 0.3 && p.Dist(a) > 0.3 {
				return true
			}
		}
	}
	return false
}

// visibleRegion approximates the sensing region around p: a box small
// enough that signs hidden behind walls are unlikely to fall inside it,
// so only confidently-visible mapped signs decay when unseen.
func visibleRegion(f *Factory, p geo.Vec2, r float64) geo.AABB {
	// Conservative: half the detector range, so only confidently-visible
	// mapped signs decay when unseen.
	return geo.NewAABB(p, p).Expand(r * 0.5)
}
