// Package pose implements pose estimation beyond planar localization:
// the 6-DoF completion of HDMI-Loc [23] (a 4-DoF ground estimate is
// extended with roll and pitch from the terrain model) and the
// max-mixture semantic landmark refinement of Stannartz et al. [58]
// (ambiguous data associations resolved by letting each observation pick
// its best hypothesis every iteration, with a null hypothesis for
// clutter).
package pose

import (
	"errors"
	"math"

	"hdmaps/internal/core"
	"hdmaps/internal/geo"
	"hdmaps/internal/worldgen"
)

// ErrNoObservations is returned when refinement has nothing to work on.
var ErrNoObservations = errors.New("pose: no observations")

// CompleteSixDoF lifts a planar pose estimate to 6-DoF using the world's
// terrain: z from the elevation model, pitch from the along-track grade,
// roll from the cross-track grade. This mirrors HDMI-Loc's second stage,
// which computes roll/pitch after the 4-DoF particle stage.
func CompleteSixDoF(w *worldgen.World, ground geo.Pose2) geo.Pose3 {
	gradeAlong := w.GradeAt(ground.P, ground.Theta)
	gradeCross := w.GradeAt(ground.P, ground.Theta+math.Pi/2)
	return geo.Pose3{
		P:     ground.P.Vec3(w.ElevationAt(ground.P)),
		Yaw:   ground.Theta,
		Pitch: -math.Atan(gradeAlong), // nose up on ascending grade
		Roll:  math.Atan(gradeCross),
	}
}

// Observation is one semantic landmark detection in the vehicle frame.
type Observation struct {
	Local geo.Vec2
	Class core.Class
}

// MaxMixtureConfig tunes the refinement.
type MaxMixtureConfig struct {
	// Iterations of associate-and-align (default 5).
	Iterations int
	// CandidateRadius bounds association candidates (default 8 m).
	CandidateRadius float64
	// NullDistance is the residual beyond which the null (clutter)
	// hypothesis wins and the observation is dropped this iteration
	// (default 3 m).
	NullDistance float64
}

func (c *MaxMixtureConfig) defaults() {
	if c.Iterations <= 0 {
		c.Iterations = 5
	}
	if c.CandidateRadius <= 0 {
		c.CandidateRadius = 8
	}
	if c.NullDistance <= 0 {
		c.NullDistance = 3
	}
}

// MaxMixtureRefine refines a pose prior by repeatedly (1) associating
// each observation to its maximum-likelihood map candidate given the
// current pose — the max-mixture step — and (2) solving the rigid
// alignment over the surviving associations. It returns the refined pose
// and the number of observations that ended associated (not null).
func MaxMixtureRefine(m *core.Map, prior geo.Pose2, obs []Observation, cfg MaxMixtureConfig) (geo.Pose2, int, error) {
	cfg.defaults()
	if len(obs) == 0 {
		return prior, 0, ErrNoObservations
	}
	pose := prior
	associated := 0
	for iter := 0; iter < cfg.Iterations; iter++ {
		box := geo.NewAABB(pose.P, pose.P).Expand(80)
		var src, tgt []geo.Vec2
		associated = 0
		for _, o := range obs {
			world := pose.Transform(o.Local)
			// Max-mixture: evaluate every candidate of the class, keep
			// the best; the null hypothesis wins beyond NullDistance.
			var best geo.Vec2
			bestD := cfg.NullDistance
			found := false
			for _, p := range m.PointsIn(box, o.Class) {
				if d := p.Pos.XY().Dist(world); d < bestD && p.Pos.XY().Dist(world) <= cfg.CandidateRadius {
					best, bestD = p.Pos.XY(), d
					found = true
				}
			}
			if !found {
				continue
			}
			src = append(src, world)
			tgt = append(tgt, best)
			associated++
		}
		if associated < 2 {
			return pose, associated, nil
		}
		delta := rigidAlign(src, tgt)
		pose = delta.Compose(pose)
		if delta.P.Norm() < 1e-4 && math.Abs(delta.Theta) < 1e-5 {
			break
		}
	}
	return pose, associated, nil
}

// rigidAlign is the closed-form 2D alignment.
func rigidAlign(src, tgt []geo.Vec2) geo.Pose2 {
	n := float64(len(src))
	var cs, ct geo.Vec2
	for i := range src {
		cs = cs.Add(src[i])
		ct = ct.Add(tgt[i])
	}
	cs, ct = cs.Scale(1/n), ct.Scale(1/n)
	var sxx, sxy, syx, syy float64
	for i := range src {
		a := src[i].Sub(cs)
		b := tgt[i].Sub(ct)
		sxx += a.X * b.X
		sxy += a.X * b.Y
		syx += a.Y * b.X
		syy += a.Y * b.Y
	}
	theta := math.Atan2(sxy-syx, sxx+syy)
	rcs := cs.Rotate(theta)
	return geo.Pose2{P: ct.Sub(rcs), Theta: theta}
}
