package pose

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"hdmaps/internal/core"
	"hdmaps/internal/geo"
	"hdmaps/internal/worldgen"
)

func TestCompleteSixDoF(t *testing.T) {
	rng := rand.New(rand.NewSource(341))
	hw, err := worldgen.GenerateHighway(worldgen.HighwayParams{
		LengthM: 500, Lanes: 2, HillAmp: 25,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ground := geo.NewPose2(250, -3.6, 0.1)
	p6 := CompleteSixDoF(hw.World, ground)
	if p6.P.XY() != ground.P || p6.Yaw != ground.Theta {
		t.Error("planar components changed")
	}
	if p6.P.Z != hw.ElevationAt(ground.P) {
		t.Error("z not from terrain")
	}
	// Roll/pitch bounded by the terrain's maximum slope.
	if math.Abs(p6.Pitch) > 0.3 || math.Abs(p6.Roll) > 0.3 {
		t.Errorf("implausible attitude: pitch=%v roll=%v", p6.Pitch, p6.Roll)
	}
	// On flat terrain both vanish.
	flat, _ := worldgen.GenerateHighway(worldgen.HighwayParams{LengthM: 200}, rand.New(rand.NewSource(342)))
	p6f := CompleteSixDoF(flat.World, geo.NewPose2(100, -3.6, 0))
	if p6f.Pitch != 0 || p6f.Roll != 0 || p6f.P.Z != 0 {
		t.Errorf("flat terrain gave pitch=%v roll=%v z=%v", p6f.Pitch, p6f.Roll, p6f.P.Z)
	}
}

func TestSixDoFPitchSign(t *testing.T) {
	// Construct a world with a known slope via a hilly highway and check
	// the pitch opposes the grade direction consistently: driving uphill
	// (positive grade) -> positive pitch per our convention (nose up =
	// -atan(grade)... verify internal consistency both directions).
	rng := rand.New(rand.NewSource(343))
	hw, err := worldgen.GenerateHighway(worldgen.HighwayParams{LengthM: 2000, HillAmp: 30}, rng)
	if err != nil {
		t.Fatal(err)
	}
	p := geo.V2(700, -3.6)
	fwd := CompleteSixDoF(hw.World, geo.Pose2{P: p, Theta: 0})
	bwd := CompleteSixDoF(hw.World, geo.Pose2{P: p, Theta: math.Pi})
	if math.Abs(fwd.Pitch+bwd.Pitch) > 1e-9 {
		t.Errorf("pitch must flip with direction: %v vs %v", fwd.Pitch, bwd.Pitch)
	}
	if math.Abs(fwd.Roll+bwd.Roll) > 1e-9 {
		t.Errorf("roll must flip with direction: %v vs %v", fwd.Roll, bwd.Roll)
	}
}

func TestMaxMixtureRefine(t *testing.T) {
	m := core.NewMap("t")
	rng := rand.New(rand.NewSource(344))
	var landmarks []geo.Vec2
	for i := 0; i < 12; i++ {
		p := geo.V2(rng.Float64()*80, rng.Float64()*40-20)
		landmarks = append(landmarks, p)
		m.AddPoint(core.PointElement{Class: core.ClassSign, Pos: p.Vec3(2)})
	}
	truth := geo.NewPose2(40, 0, 0.05)
	var obs []Observation
	for _, lm := range landmarks {
		local := truth.InverseTransform(lm)
		if local.Norm() > 50 {
			continue
		}
		obs = append(obs, Observation{
			Local: local.Add(geo.V2(rng.NormFloat64()*0.1, rng.NormFloat64()*0.1)),
			Class: core.ClassSign,
		})
	}
	// Clutter observation with no map counterpart anywhere near.
	obs = append(obs, Observation{Local: geo.V2(5, 200), Class: core.ClassSign})
	prior := geo.NewPose2(41.5, 1.2, 0.12)
	refined, associated, err := MaxMixtureRefine(m, prior, obs, MaxMixtureConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if associated < len(obs)-1 {
		t.Errorf("associated = %d of %d", associated, len(obs)-1)
	}
	priorErr := prior.P.Dist(truth.P)
	refErr := refined.P.Dist(truth.P)
	if refErr >= priorErr {
		t.Errorf("refinement did not improve: %v -> %v", priorErr, refErr)
	}
	if refErr > 0.2 {
		t.Errorf("refined error = %v m", refErr)
	}
	if hd := math.Abs(geo.AngleDiff(refined.Theta, truth.Theta)); hd > 0.02 {
		t.Errorf("refined heading error = %v", hd)
	}
}

func TestMaxMixtureAmbiguity(t *testing.T) {
	// Two identical landmark rows 4 m apart: a naive nearest association
	// from a bad prior picks the wrong row; max-mixture re-association
	// across iterations must still converge to a consistent alignment.
	m := core.NewMap("t")
	for x := 0.0; x < 60; x += 10 {
		m.AddPoint(core.PointElement{Class: core.ClassPole, Pos: geo.V3(x, 0, 3)})
		m.AddPoint(core.PointElement{Class: core.ClassPole, Pos: geo.V3(x, 4, 3)})
	}
	truth := geo.NewPose2(30, 2, 0)
	var obs []Observation
	for x := 0.0; x < 60; x += 10 {
		for _, y := range []float64{0.0, 4.0} {
			obs = append(obs, Observation{
				Local: truth.InverseTransform(geo.V2(x, y)), Class: core.ClassPole,
			})
		}
	}
	prior := geo.NewPose2(30, 3.2, 0) // 1.2 m off toward the wrong row
	refined, _, err := MaxMixtureRefine(m, prior, obs, MaxMixtureConfig{Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Converges to truth or to the 4 m-shifted alias — both are
	// self-consistent; the residual must be near zero for one of them.
	d1 := refined.P.Dist(truth.P)
	d2 := refined.P.Dist(truth.P.Add(geo.V2(0, 4)))
	if math.Min(d1, d2) > 0.3 {
		t.Errorf("did not converge to a consistent mode: %v / %v", d1, d2)
	}
}

func TestMaxMixtureErrors(t *testing.T) {
	m := core.NewMap("t")
	if _, _, err := MaxMixtureRefine(m, geo.Pose2{}, nil, MaxMixtureConfig{}); !errors.Is(err, ErrNoObservations) {
		t.Errorf("err = %v", err)
	}
	// All observations are clutter: pose unchanged, associated = 0.
	prior := geo.NewPose2(1, 2, 0.3)
	got, n, err := MaxMixtureRefine(m, prior, []Observation{{Local: geo.V2(1, 1), Class: core.ClassSign}}, MaxMixtureConfig{})
	if err != nil || n != 0 || got != prior {
		t.Errorf("clutter-only refine: %v n=%d err=%v", got, n, err)
	}
}
