// Package spatial provides the spatial indexes used by the HD-map store
// and the localization/creation pipelines: an STR-bulk-loaded R-tree for
// map elements, a uniform grid index for dense point data, and a KD-tree
// for nearest-neighbour queries over point sets.
package spatial

import (
	"container/heap"
	"sort"

	"hdmaps/internal/geo"
)

// Item is anything indexable by a bounding box.
type Item interface {
	Bounds() geo.AABB
}

// rtreeNode is an internal or leaf node of the R-tree.
type rtreeNode struct {
	bounds   geo.AABB
	children []*rtreeNode // nil for leaves
	items    []Item       // nil for internal nodes
}

// RTree is a static, bulk-loaded R-tree (Sort-Tile-Recursive packing).
// HD-map element sets are write-rarely/read-often: maps are rebuilt in
// batches by the creation and update pipelines, then queried millions of
// times by localization and planning, which is exactly the trade-off STR
// packing optimises for. Insertions after construction are supported via a
// small overflow buffer that is folded in on the next Rebuild.
type RTree struct {
	root     *rtreeNode
	overflow []Item
	size     int
	fanout   int
}

// NewRTree builds an R-tree over items with the given fanout (node
// capacity). Fanout < 2 defaults to 16.
func NewRTree(items []Item, fanout int) *RTree {
	if fanout < 2 {
		fanout = 16
	}
	t := &RTree{fanout: fanout}
	t.bulkLoad(items)
	return t
}

func (t *RTree) bulkLoad(items []Item) {
	t.size = len(items)
	t.overflow = nil
	if len(items) == 0 {
		t.root = &rtreeNode{bounds: geo.EmptyAABB()}
		return
	}
	leaves := strPack(items, t.fanout)
	nodes := leaves
	for len(nodes) > 1 {
		nodes = strPackNodes(nodes, t.fanout)
	}
	t.root = nodes[0]
}

// strPack groups items into leaf nodes using Sort-Tile-Recursive.
func strPack(items []Item, fanout int) []*rtreeNode {
	sorted := append([]Item(nil), items...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Bounds().Center().X < sorted[j].Bounds().Center().X
	})
	nLeaves := (len(sorted) + fanout - 1) / fanout
	nSlices := intSqrtCeil(nLeaves)
	sliceSize := nSlices * fanout
	var leaves []*rtreeNode
	for start := 0; start < len(sorted); start += sliceSize {
		end := min(start+sliceSize, len(sorted))
		slice := sorted[start:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].Bounds().Center().Y < slice[j].Bounds().Center().Y
		})
		for ls := 0; ls < len(slice); ls += fanout {
			le := min(ls+fanout, len(slice))
			leaf := &rtreeNode{items: append([]Item(nil), slice[ls:le]...), bounds: geo.EmptyAABB()}
			for _, it := range leaf.items {
				leaf.bounds = leaf.bounds.Union(it.Bounds())
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

func strPackNodes(nodes []*rtreeNode, fanout int) []*rtreeNode {
	sorted := append([]*rtreeNode(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].bounds.Center().X < sorted[j].bounds.Center().X
	})
	nParents := (len(sorted) + fanout - 1) / fanout
	nSlices := intSqrtCeil(nParents)
	sliceSize := nSlices * fanout
	var parents []*rtreeNode
	for start := 0; start < len(sorted); start += sliceSize {
		end := min(start+sliceSize, len(sorted))
		slice := sorted[start:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].bounds.Center().Y < slice[j].bounds.Center().Y
		})
		for ls := 0; ls < len(slice); ls += fanout {
			le := min(ls+fanout, len(slice))
			p := &rtreeNode{children: append([]*rtreeNode(nil), slice[ls:le]...), bounds: geo.EmptyAABB()}
			for _, c := range p.children {
				p.bounds = p.bounds.Union(c.bounds)
			}
			parents = append(parents, p)
		}
	}
	return parents
}

func intSqrtCeil(n int) int {
	if n <= 0 {
		return 0
	}
	s := 1
	for s*s < n {
		s++
	}
	return s
}

// Len returns the number of indexed items (including pending inserts).
func (t *RTree) Len() int { return t.size }

// Insert adds an item to the overflow buffer. Queries see it immediately;
// call Rebuild to fold overflow into the packed tree when the buffer grows.
func (t *RTree) Insert(it Item) {
	t.overflow = append(t.overflow, it)
	t.size++
}

// OverflowLen returns the number of items pending a Rebuild.
func (t *RTree) OverflowLen() int { return len(t.overflow) }

// Rebuild repacks the tree including all overflow items.
func (t *RTree) Rebuild() {
	all := make([]Item, 0, t.size)
	t.collect(t.root, &all)
	all = append(all, t.overflow...)
	t.bulkLoad(all)
}

func (t *RTree) collect(n *rtreeNode, out *[]Item) {
	if n == nil {
		return
	}
	*out = append(*out, n.items...)
	for _, c := range n.children {
		t.collect(c, out)
	}
}

// Search appends to out every item whose bounds intersect query, and
// returns the result. Pass a reused slice to avoid allocation.
func (t *RTree) Search(query geo.AABB, out []Item) []Item {
	out = t.searchNode(t.root, query, out)
	for _, it := range t.overflow {
		if it.Bounds().Intersects(query) {
			out = append(out, it)
		}
	}
	return out
}

func (t *RTree) searchNode(n *rtreeNode, query geo.AABB, out []Item) []Item {
	if n == nil || !n.bounds.Intersects(query) {
		return out
	}
	for _, it := range n.items {
		if it.Bounds().Intersects(query) {
			out = append(out, it)
		}
	}
	for _, c := range n.children {
		out = t.searchNode(c, query, out)
	}
	return out
}

// Visit calls fn for every item intersecting query; returning false stops
// the traversal early.
func (t *RTree) Visit(query geo.AABB, fn func(Item) bool) {
	if !t.visitNode(t.root, query, fn) {
		return
	}
	for _, it := range t.overflow {
		if it.Bounds().Intersects(query) && !fn(it) {
			return
		}
	}
}

func (t *RTree) visitNode(n *rtreeNode, query geo.AABB, fn func(Item) bool) bool {
	if n == nil || !n.bounds.Intersects(query) {
		return true
	}
	for _, it := range n.items {
		if it.Bounds().Intersects(query) && !fn(it) {
			return false
		}
	}
	for _, c := range n.children {
		if !t.visitNode(c, query, fn) {
			return false
		}
	}
	return true
}

// nnEntry is a node or item in the best-first nearest-neighbour queue.
type nnEntry struct {
	dist float64
	node *rtreeNode
	item Item
}

type nnQueue []nnEntry

func (q nnQueue) Len() int            { return len(q) }
func (q nnQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q nnQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nnQueue) Push(x interface{}) { *q = append(*q, x.(nnEntry)) }
func (q *nnQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Nearest returns the k items whose bounding boxes are closest to p,
// ordered by increasing distance (best-first branch-and-bound traversal).
func (t *RTree) Nearest(p geo.Vec2, k int) []Item {
	if k <= 0 || t.size == 0 {
		return nil
	}
	q := &nnQueue{}
	if t.root != nil {
		heap.Push(q, nnEntry{dist: t.root.bounds.DistanceToPoint(p), node: t.root})
	}
	for _, it := range t.overflow {
		heap.Push(q, nnEntry{dist: it.Bounds().DistanceToPoint(p), item: it})
	}
	var result []Item
	for q.Len() > 0 && len(result) < k {
		e := heap.Pop(q).(nnEntry)
		switch {
		case e.item != nil:
			result = append(result, e.item)
		case e.node != nil:
			for _, it := range e.node.items {
				heap.Push(q, nnEntry{dist: it.Bounds().DistanceToPoint(p), item: it})
			}
			for _, c := range e.node.children {
				heap.Push(q, nnEntry{dist: c.bounds.DistanceToPoint(p), node: c})
			}
		}
	}
	return result
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
