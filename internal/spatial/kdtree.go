package spatial

import (
	"container/heap"
	"sort"

	"hdmaps/internal/geo"
)

// KDTree is a static 2-d tree over points, used for nearest-neighbour
// association in scan matching (ICP) and landmark data association, where
// the query pattern is many kNN lookups against a fixed reference set.
type KDTree struct {
	pts  []geo.Vec2 // points in tree order
	idx  []int      // original indices, parallel to pts
	axis []int8     // split axis per node (-1 for leaf sentinel)
}

// NewKDTree builds a balanced KD-tree over pts. The original slice is not
// retained.
func NewKDTree(pts []geo.Vec2) *KDTree {
	n := len(pts)
	t := &KDTree{
		pts:  make([]geo.Vec2, 0, n),
		idx:  make([]int, 0, n),
		axis: make([]int8, 0, n),
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	src := append([]geo.Vec2(nil), pts...)
	t.build(src, order, 0)
	return t
}

// build recursively partitions by median along alternating axes, appending
// nodes in pre-order so the tree is encoded implicitly in three slices.
func (t *KDTree) build(pts []geo.Vec2, order []int, depth int) int {
	if len(pts) == 0 {
		return -1
	}
	axis := int8(depth % 2)
	sort.Sort(&kdSorter{pts: pts, order: order, axis: axis})
	mid := len(pts) / 2
	nodeIdx := len(t.pts)
	t.pts = append(t.pts, pts[mid])
	t.idx = append(t.idx, order[mid])
	t.axis = append(t.axis, axis)
	// Children positions are discovered by recursion order: left subtree
	// occupies the range immediately after the node; record sizes.
	t.build(pts[:mid], order[:mid], depth+1)
	t.build(pts[mid+1:], order[mid+1:], depth+1)
	return nodeIdx
}

type kdSorter struct {
	pts   []geo.Vec2
	order []int
	axis  int8
}

func (s *kdSorter) Len() int { return len(s.pts) }
func (s *kdSorter) Swap(i, j int) {
	s.pts[i], s.pts[j] = s.pts[j], s.pts[i]
	s.order[i], s.order[j] = s.order[j], s.order[i]
}
func (s *kdSorter) Less(i, j int) bool {
	if s.axis == 0 {
		return s.pts[i].X < s.pts[j].X
	}
	return s.pts[i].Y < s.pts[j].Y
}

// Len returns the number of points in the tree.
func (t *KDTree) Len() int { return len(t.pts) }

// Nearest returns the original index of the point closest to q and its
// distance; ok is false for an empty tree.
func (t *KDTree) Nearest(q geo.Vec2) (idx int, dist float64, ok bool) {
	res := t.KNearest(q, 1)
	if len(res) == 0 {
		return 0, 0, false
	}
	return res[0].Index, res[0].Dist, true
}

// Neighbor is a kNN result.
type Neighbor struct {
	Index int // index into the original point slice
	Dist  float64
}

type nbrHeap []Neighbor // max-heap on Dist

func (h nbrHeap) Len() int            { return len(h) }
func (h nbrHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h nbrHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nbrHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *nbrHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// KNearest returns up to k nearest points to q, sorted by increasing
// distance.
func (t *KDTree) KNearest(q geo.Vec2, k int) []Neighbor {
	if k <= 0 || len(t.pts) == 0 {
		return nil
	}
	h := &nbrHeap{}
	t.knn(q, k, 0, len(t.pts), h)
	out := make([]Neighbor, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Neighbor)
	}
	return out
}

// knn searches the subtree stored in pre-order range [lo, hi).
func (t *KDTree) knn(q geo.Vec2, k, lo, hi int, h *nbrHeap) {
	if lo >= hi {
		return
	}
	node := lo
	p := t.pts[node]
	d := p.Dist(q)
	if h.Len() < k {
		heap.Push(h, Neighbor{Index: t.idx[node], Dist: d})
	} else if d < (*h)[0].Dist {
		(*h)[0] = Neighbor{Index: t.idx[node], Dist: d}
		heap.Fix(h, 0)
	}
	// The left subtree is the pre-order range (lo, lo+leftSize]; its size
	// mirrors the build's median split: n points -> n/2 on the left.
	leftSize := (hi - lo) / 2
	leftLo, leftHi := lo+1, lo+1+leftSize
	rightLo, rightHi := leftHi, hi

	var qCoord, pCoord float64
	if t.axis[node] == 0 {
		qCoord, pCoord = q.X, p.X
	} else {
		qCoord, pCoord = q.Y, p.Y
	}
	near, far := [2]int{leftLo, leftHi}, [2]int{rightLo, rightHi}
	if qCoord > pCoord {
		near, far = far, near
	}
	t.knn(q, k, near[0], near[1], h)
	planeDist := qCoord - pCoord
	if planeDist < 0 {
		planeDist = -planeDist
	}
	if h.Len() < k || planeDist < (*h)[0].Dist {
		t.knn(q, k, far[0], far[1], h)
	}
}

// WithinRadius returns the original indices of all points within r of q.
func (t *KDTree) WithinRadius(q geo.Vec2, r float64) []int {
	var out []int
	t.radius(q, r, 0, len(t.pts), &out)
	return out
}

func (t *KDTree) radius(q geo.Vec2, r float64, lo, hi int, out *[]int) {
	if lo >= hi {
		return
	}
	node := lo
	p := t.pts[node]
	if p.Dist(q) <= r {
		*out = append(*out, t.idx[node])
	}
	leftSize := (hi - lo) / 2
	leftLo, leftHi := lo+1, lo+1+leftSize
	rightLo, rightHi := leftHi, hi

	var qCoord, pCoord float64
	if t.axis[node] == 0 {
		qCoord, pCoord = q.X, p.X
	} else {
		qCoord, pCoord = q.Y, p.Y
	}
	if qCoord-r <= pCoord {
		t.radius(q, r, leftLo, leftHi, out)
	}
	if qCoord+r >= pCoord {
		t.radius(q, r, rightLo, rightHi, out)
	}
}
