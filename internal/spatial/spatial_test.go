package spatial

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"hdmaps/internal/geo"
)

// boxItem is a trivial Item for index tests.
type boxItem struct {
	id  int
	box geo.AABB
}

func (b boxItem) Bounds() geo.AABB { return b.box }

func randomItems(rng *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		c := geo.V2(rng.Float64()*1000, rng.Float64()*1000)
		half := geo.V2(rng.Float64()*5, rng.Float64()*5)
		items[i] = boxItem{id: i, box: geo.NewAABB(c.Sub(half), c.Add(half))}
	}
	return items
}

func bruteSearch(items []Item, q geo.AABB) map[int]bool {
	hits := map[int]bool{}
	for _, it := range items {
		if it.Bounds().Intersects(q) {
			hits[it.(boxItem).id] = true
		}
	}
	return hits
}

func TestRTreeSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{0, 1, 5, 64, 500} {
		items := randomItems(rng, n)
		tree := NewRTree(items, 8)
		if tree.Len() != n {
			t.Fatalf("Len = %d, want %d", tree.Len(), n)
		}
		for trial := 0; trial < 50; trial++ {
			c := geo.V2(rng.Float64()*1000, rng.Float64()*1000)
			q := geo.NewAABB(c, c.Add(geo.V2(rng.Float64()*100, rng.Float64()*100)))
			want := bruteSearch(items, q)
			got := tree.Search(q, nil)
			if len(got) != len(want) {
				t.Fatalf("n=%d: Search returned %d, want %d", n, len(got), len(want))
			}
			for _, it := range got {
				if !want[it.(boxItem).id] {
					t.Fatalf("unexpected hit %v", it)
				}
			}
		}
	}
}

func TestRTreeInsertOverflowAndRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	items := randomItems(rng, 100)
	tree := NewRTree(items[:50], 8)
	for _, it := range items[50:] {
		tree.Insert(it)
	}
	if tree.Len() != 100 || tree.OverflowLen() != 50 {
		t.Fatalf("Len=%d OverflowLen=%d", tree.Len(), tree.OverflowLen())
	}
	q := geo.NewAABB(geo.V2(0, 0), geo.V2(1000, 1000))
	if got := len(tree.Search(q, nil)); got != 100 {
		t.Fatalf("pre-rebuild search found %d", got)
	}
	tree.Rebuild()
	if tree.OverflowLen() != 0 || tree.Len() != 100 {
		t.Fatalf("post-rebuild Len=%d OverflowLen=%d", tree.Len(), tree.OverflowLen())
	}
	if got := len(tree.Search(q, nil)); got != 100 {
		t.Fatalf("post-rebuild search found %d", got)
	}
}

func TestRTreeNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	items := randomItems(rng, 300)
	tree := NewRTree(items, 8)
	for trial := 0; trial < 30; trial++ {
		p := geo.V2(rng.Float64()*1000, rng.Float64()*1000)
		got := tree.Nearest(p, 5)
		if len(got) != 5 {
			t.Fatalf("Nearest returned %d items", len(got))
		}
		// Compare against brute force ordering of box distances.
		dists := make([]float64, len(items))
		for i, it := range items {
			dists[i] = it.Bounds().DistanceToPoint(p)
		}
		sort.Float64s(dists)
		for i, it := range got {
			d := it.Bounds().DistanceToPoint(p)
			if math.Abs(d-dists[i]) > 1e-9 {
				t.Fatalf("Nearest[%d] dist %v, want %v", i, d, dists[i])
			}
		}
	}
}

func TestRTreeVisitEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	items := randomItems(rng, 200)
	tree := NewRTree(items, 8)
	count := 0
	tree.Visit(geo.NewAABB(geo.V2(0, 0), geo.V2(1000, 1000)), func(Item) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("Visit count = %d, want 10", count)
	}
}

func TestRTreeEmpty(t *testing.T) {
	tree := NewRTree(nil, 8)
	if got := tree.Search(geo.NewAABB(geo.V2(0, 0), geo.V2(1, 1)), nil); len(got) != 0 {
		t.Fatal("empty tree returned hits")
	}
	if got := tree.Nearest(geo.V2(0, 0), 3); got != nil {
		t.Fatal("empty tree returned neighbours")
	}
}

func TestGridIndexWithinRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	g := NewGridIndex(5)
	pts := make([]geo.Vec2, 500)
	for i := range pts {
		pts[i] = geo.V2(rng.Float64()*200, rng.Float64()*200)
	}
	g.AddAll(pts)
	if g.Len() != 500 {
		t.Fatalf("Len = %d", g.Len())
	}
	for trial := 0; trial < 50; trial++ {
		q := geo.V2(rng.Float64()*200, rng.Float64()*200)
		r := rng.Float64() * 20
		got := g.WithinRadius(q, r, nil)
		want := 0
		for _, p := range pts {
			if p.Dist(q) <= r {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("WithinRadius found %d, want %d", len(got), want)
		}
		if c := g.CountWithin(q, r); c != want {
			t.Fatalf("CountWithin = %d, want %d", c, want)
		}
		for _, id := range got {
			if g.Point(id).Dist(q) > r {
				t.Fatalf("point %d outside radius", id)
			}
		}
	}
}

func TestGridIndexNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	g := NewGridIndex(3)
	pts := make([]geo.Vec2, 300)
	for i := range pts {
		pts[i] = geo.V2(rng.Float64()*100, rng.Float64()*100)
	}
	g.AddAll(pts)
	for trial := 0; trial < 50; trial++ {
		q := geo.V2(rng.Float64()*140-20, rng.Float64()*140-20)
		id, dist, ok := g.NearestPoint(q)
		if !ok {
			t.Fatal("NearestPoint failed")
		}
		bestD := math.Inf(1)
		for _, p := range pts {
			if d := p.Dist(q); d < bestD {
				bestD = d
			}
		}
		if math.Abs(dist-bestD) > 1e-9 {
			t.Fatalf("NearestPoint dist %v, want %v (id %d)", dist, bestD, id)
		}
	}
	empty := NewGridIndex(1)
	if _, _, ok := empty.NearestPoint(geo.V2(0, 0)); ok {
		t.Fatal("empty grid returned a point")
	}
}

func TestKDTreeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	for _, n := range []int{1, 2, 7, 100, 513} {
		pts := make([]geo.Vec2, n)
		for i := range pts {
			pts[i] = geo.V2(rng.NormFloat64()*50, rng.NormFloat64()*50)
		}
		tree := NewKDTree(pts)
		if tree.Len() != n {
			t.Fatalf("Len = %d", tree.Len())
		}
		for trial := 0; trial < 40; trial++ {
			q := geo.V2(rng.NormFloat64()*60, rng.NormFloat64()*60)
			k := 1 + rng.Intn(5)
			got := tree.KNearest(q, k)
			// Brute force.
			type pd struct {
				i int
				d float64
			}
			all := make([]pd, n)
			for i, p := range pts {
				all[i] = pd{i, p.Dist(q)}
			}
			sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
			wantK := k
			if wantK > n {
				wantK = n
			}
			if len(got) != wantK {
				t.Fatalf("n=%d k=%d: got %d results", n, k, len(got))
			}
			for i := range got {
				if math.Abs(got[i].Dist-all[i].d) > 1e-9 {
					t.Fatalf("n=%d k=%d: result %d dist %v, want %v", n, k, i, got[i].Dist, all[i].d)
				}
			}
		}
	}
}

func TestKDTreeWithinRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	pts := make([]geo.Vec2, 400)
	for i := range pts {
		pts[i] = geo.V2(rng.Float64()*100, rng.Float64()*100)
	}
	tree := NewKDTree(pts)
	for trial := 0; trial < 40; trial++ {
		q := geo.V2(rng.Float64()*100, rng.Float64()*100)
		r := rng.Float64() * 15
		got := tree.WithinRadius(q, r)
		want := map[int]bool{}
		for i, p := range pts {
			if p.Dist(q) <= r {
				want[i] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("WithinRadius found %d, want %d", len(got), len(want))
		}
		for _, i := range got {
			if !want[i] {
				t.Fatalf("unexpected index %d", i)
			}
		}
	}
}

func TestKDTreeNearestSingle(t *testing.T) {
	tree := NewKDTree([]geo.Vec2{geo.V2(5, 5)})
	idx, d, ok := tree.Nearest(geo.V2(8, 9))
	if !ok || idx != 0 || math.Abs(d-5) > 1e-9 {
		t.Fatalf("Nearest = %d %v %v", idx, d, ok)
	}
	empty := NewKDTree(nil)
	if _, _, ok := empty.Nearest(geo.V2(0, 0)); ok {
		t.Fatal("empty KD-tree returned a point")
	}
}

func BenchmarkRTreeSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(29))
	tree := NewRTree(randomItems(rng, 10000), 16)
	var buf []Item
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := geo.V2(rng.Float64()*1000, rng.Float64()*1000)
		buf = tree.Search(geo.NewAABB(c, c.Add(geo.V2(50, 50))), buf[:0])
	}
}

func BenchmarkKDTreeKNN(b *testing.B) {
	rng := rand.New(rand.NewSource(30))
	pts := make([]geo.Vec2, 10000)
	for i := range pts {
		pts[i] = geo.V2(rng.Float64()*1000, rng.Float64()*1000)
	}
	tree := NewKDTree(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.KNearest(geo.V2(rng.Float64()*1000, rng.Float64()*1000), 8)
	}
}
