package spatial

import (
	"math"

	"hdmaps/internal/geo"
)

// GridIndex is a uniform-cell spatial hash for 2D points. It is the
// workhorse behind point-cloud neighbourhood queries and probe-trace
// aggregation, where millions of points share a bounded extent and the
// R-tree's generality is unnecessary.
type GridIndex struct {
	cell  float64
	cells map[[2]int32][]int
	pts   []geo.Vec2
}

// NewGridIndex creates an index with the given cell size in metres.
// Cell sizes at or below zero default to 1 m.
func NewGridIndex(cellSize float64) *GridIndex {
	if cellSize <= 0 {
		cellSize = 1
	}
	return &GridIndex{cell: cellSize, cells: make(map[[2]int32][]int)}
}

// key returns the cell coordinate containing p.
func (g *GridIndex) key(p geo.Vec2) [2]int32 {
	return [2]int32{int32(math.Floor(p.X / g.cell)), int32(math.Floor(p.Y / g.cell))}
}

// Add inserts a point and returns its index handle.
func (g *GridIndex) Add(p geo.Vec2) int {
	id := len(g.pts)
	g.pts = append(g.pts, p)
	k := g.key(p)
	g.cells[k] = append(g.cells[k], id)
	return id
}

// AddAll inserts all points.
func (g *GridIndex) AddAll(pts []geo.Vec2) {
	for _, p := range pts {
		g.Add(p)
	}
}

// Len returns the number of indexed points.
func (g *GridIndex) Len() int { return len(g.pts) }

// Point returns the point with handle id.
func (g *GridIndex) Point(id int) geo.Vec2 { return g.pts[id] }

// WithinRadius appends the handles of all points within r of p to out.
func (g *GridIndex) WithinRadius(p geo.Vec2, r float64, out []int) []int {
	if r < 0 {
		return out
	}
	r2 := r * r
	k0 := g.key(geo.V2(p.X-r, p.Y-r))
	k1 := g.key(geo.V2(p.X+r, p.Y+r))
	for cx := k0[0]; cx <= k1[0]; cx++ {
		for cy := k0[1]; cy <= k1[1]; cy++ {
			for _, id := range g.cells[[2]int32{cx, cy}] {
				if g.pts[id].DistSq(p) <= r2 {
					out = append(out, id)
				}
			}
		}
	}
	return out
}

// CountWithin returns the number of points within r of p.
func (g *GridIndex) CountWithin(p geo.Vec2, r float64) int {
	count := 0
	r2 := r * r
	k0 := g.key(geo.V2(p.X-r, p.Y-r))
	k1 := g.key(geo.V2(p.X+r, p.Y+r))
	for cx := k0[0]; cx <= k1[0]; cx++ {
		for cy := k0[1]; cy <= k1[1]; cy++ {
			for _, id := range g.cells[[2]int32{cx, cy}] {
				if g.pts[id].DistSq(p) <= r2 {
					count++
				}
			}
		}
	}
	return count
}

// NearestPoint returns the handle of the closest point to p and its
// distance; ok is false when the index is empty. The search expands in
// growing rings of cells until a hit is confirmed.
func (g *GridIndex) NearestPoint(p geo.Vec2) (id int, dist float64, ok bool) {
	if len(g.pts) == 0 {
		return 0, 0, false
	}
	center := g.key(p)
	best, bestD2 := -1, math.Inf(1)
	for ring := int32(0); ; ring++ {
		found := false
		for cx := center[0] - ring; cx <= center[0]+ring; cx++ {
			for cy := center[1] - ring; cy <= center[1]+ring; cy++ {
				// Only the perimeter of the ring is new.
				if ring > 0 && cx > center[0]-ring && cx < center[0]+ring &&
					cy > center[1]-ring && cy < center[1]+ring {
					continue
				}
				ids := g.cells[[2]int32{cx, cy}]
				if len(ids) > 0 {
					found = true
				}
				for _, i := range ids {
					if d2 := g.pts[i].DistSq(p); d2 < bestD2 {
						best, bestD2 = i, d2
					}
				}
			}
		}
		// Once a candidate exists, one extra ring guarantees correctness
		// (a closer point can hide at most one ring further out).
		if best >= 0 && (found || float64(ring-1)*g.cell > math.Sqrt(bestD2)) {
			// Expand one more ring, then stop.
			if float64(ring)*g.cell > math.Sqrt(bestD2) {
				return best, math.Sqrt(bestD2), true
			}
		}
		if ring > int32(len(g.pts))+2 && best >= 0 { // safety net
			return best, math.Sqrt(bestD2), true
		}
		if ring > 1<<20 { // unreachable guard against infinite loops
			return best, math.Sqrt(bestD2), best >= 0
		}
	}
}

// Cells returns the number of occupied cells (for diagnostics).
func (g *GridIndex) Cells() int { return len(g.cells) }
