package cluster

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hdmaps/internal/storage"
)

// newDirTestNode is a testNode over a DirStore, for crash-recovery
// tests where state must survive on disk.
func newDirTestNode(t *testing.T, name string) *testNode {
	t.Helper()
	store, err := storage.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/v1/", storage.NewTileServer(store))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return &testNode{name: name, store: store, srv: srv}
}

func directPut(t *testing.T, base, path string, data []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, base+path, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("direct put %s: %d", path, resp.StatusCode)
	}
}

// TestSweepConvergesColdReplica: a replica diverges behind the router's
// back and nothing ever reads the key — only sweeps run. The cluster
// must still converge byte-identically, and once converged the digest
// pass must stop fetching leaves for the quiet buckets.
func TestSweepConvergesColdReplica(t *testing.T) {
	rt, nodes := newTestCluster(t, 3, Config{Replicas: 3, SweepInterval: -1})
	key := storage.TileKey{Layer: "base", TX: 1, TY: 1}
	v1, v2 := tileBytes(1, 1), tileBytes(2, 2)
	if w := do(t, rt, http.MethodPut, "/v1/tiles/base/1/1", v1, nil); w.Code != http.StatusNoContent {
		t.Fatalf("put v1: %d", w.Code)
	}
	// One replica jumps ahead during a "partition" (written through its
	// own HTTP surface, invisible to the router).
	directPut(t, nodes[2].srv.URL, "/v1/tiles/base/1/1", v2)

	readsBefore := rt.Stats().Reads
	rt.SweepNow()
	for _, n := range nodes {
		got, err := n.store.Get(key)
		if err != nil || !bytes.Equal(got, v2) {
			t.Fatalf("node %s did not converge to winner: err=%v", n.name, err)
		}
	}
	s := rt.Stats()
	if s.Reads != readsBefore {
		t.Fatalf("sweep convergence consumed client reads: %d -> %d", readsBefore, s.Reads)
	}
	if s.AEKeysSynced == 0 || s.AERepairsDone == 0 {
		t.Fatalf("sweep did not account its work: %+v", s)
	}

	// Round 2 verifies convergence; round 3 must skip every bucket (no
	// leaf fetches) because nothing changed since a verified-clean round.
	rt.SweepNow()
	mismatchesAfterVerify := rt.Stats().AERangeMismatches
	rt.SweepNow()
	if got := rt.Stats().AERangeMismatches; got != mismatchesAfterVerify {
		t.Fatalf("steady-state sweep still inspecting buckets: %d -> %d", mismatchesAfterVerify, got)
	}
	if rt.Stats().AERounds != 3 {
		t.Fatalf("rounds: %+v", rt.Stats())
	}
}

// TestSweepConvergesDeleteToRevivedOwner is the resurrection scenario
// in miniature: an owner misses a delete while down, revives holding
// the stale live tile, and no client ever touches the key again. The
// sweep must propagate the tombstone to the revived owner — absence
// converges without reads.
func TestSweepConvergesDeleteToRevivedOwner(t *testing.T) {
	rt, nodes := newTestCluster(t, 4, Config{Replicas: 3, SweepInterval: -1})
	byName := map[string]*testNode{}
	for _, n := range nodes {
		byName[n.name] = n
	}
	const dead = "node2"
	key := pickKey(rt, "base", dead)
	path := fmt.Sprintf("/v1/tiles/%s/%d/%d", key.Layer, key.TX, key.TY)

	data := tileBytes(5, 1)
	if w := do(t, rt, http.MethodPut, path, data, nil); w.Code != http.StatusNoContent {
		t.Fatalf("put: %d", w.Code)
	}
	markDown(rt, dead)
	if w := do(t, rt, http.MethodDelete, path, nil, nil); w.Code != http.StatusNoContent {
		t.Fatalf("delete: %d", w.Code)
	}
	// The dead owner still holds the live tile — a resurrection seed.
	if _, err := byName[dead].store.Get(key); err != nil {
		t.Fatal("dead owner lost its stale tile prematurely")
	}
	if s := rt.Stats(); s.TombstonesWritten != 1 || s.TombstonesPending != 1 {
		t.Fatalf("tombstone ledger after delete: %+v", s)
	}

	// Revive without draining hints (simulate the hint being lost) —
	// the sweep alone must still converge the deletion.
	rt.hints.take(dead)
	rt.members[dead].markUp()
	rt.SweepNow()

	tl := storage.TombLayerPrefix + key.Layer
	for _, n := range nodes {
		if _, err := n.store.Get(key); err == nil {
			t.Fatalf("node %s still serves the deleted tile", n.name)
		}
	}
	for _, name := range rt.Ring().Owners(key, 3) {
		if ks, _ := byName[name].store.Keys(tl); len(ks) != 1 {
			t.Fatalf("owner %s missing tombstone marker", name)
		}
	}
}

// TestSweepGCReclaimsTombstones: once every owner is alive, holds the
// marker, its TTL expired, and no hint is in flight, the GC pass
// deletes the markers everywhere and balances the ledger.
func TestSweepGCReclaimsTombstones(t *testing.T) {
	rt, nodes := newTestCluster(t, 3, Config{Replicas: 3, SweepInterval: -1, TombstoneTTL: time.Millisecond})
	key := storage.TileKey{Layer: "base", TX: 8, TY: 8}
	path := "/v1/tiles/base/8/8"
	if w := do(t, rt, http.MethodPut, path, tileBytes(3, 3), nil); w.Code != http.StatusNoContent {
		t.Fatalf("put: %d", w.Code)
	}
	if w := do(t, rt, http.MethodDelete, path, nil, nil); w.Code != http.StatusNoContent {
		t.Fatalf("delete: %d", w.Code)
	}
	s := rt.Stats()
	if s.TombstonesWritten != 1 || s.TombstonesPending != 1 {
		t.Fatalf("ledger after delete: %+v", s)
	}
	// TTLSeconds is 0 (sub-second TTL), so the marker is GC-eligible on
	// the first sweep: all owners alive, all hold it, nothing pending.
	rt.SweepNow()
	s = rt.Stats()
	if s.TombstonesReclaimed != 1 || s.TombstonesPending != 0 {
		t.Fatalf("ledger after GC: %+v", s)
	}
	if s.TombstonesWritten != s.TombstonesReclaimed+uint64(s.TombstonesPending) {
		t.Fatalf("tombstone books do not balance: %+v", s)
	}
	tl := storage.TombLayerPrefix + key.Layer
	for _, n := range nodes {
		if ks, _ := n.store.Keys(tl); len(ks) != 0 {
			t.Fatalf("node %s still holds a reclaimed marker", n.name)
		}
	}
	// A GC'd delete must not resurrect: the key stays absent.
	if w := do(t, rt, http.MethodGet, path, nil, nil); w.Code != http.StatusNotFound {
		t.Fatalf("get after GC: %d", w.Code)
	}
}

// TestSweepGCHeldByDeadOwner: a marker is not reclaimable while any
// owner is down — the dead owner might revive with the stale tile, and
// only the marker can out-order it.
func TestSweepGCHeldByDeadOwner(t *testing.T) {
	rt, _ := newTestCluster(t, 3, Config{Replicas: 3, SweepInterval: -1, TombstoneTTL: time.Millisecond})
	path := "/v1/tiles/base/9/9"
	if w := do(t, rt, http.MethodPut, path, tileBytes(2, 2), nil); w.Code != http.StatusNoContent {
		t.Fatalf("put: %d", w.Code)
	}
	if w := do(t, rt, http.MethodDelete, path, nil, nil); w.Code != http.StatusNoContent {
		t.Fatalf("delete: %d", w.Code)
	}
	markDown(rt, "node1")
	rt.SweepNow()
	if s := rt.Stats(); s.TombstonesReclaimed != 0 || s.TombstonesPending != 1 {
		t.Fatalf("GC ran with a dead owner: %+v", s)
	}
	// Owner back up: the next sweep may collect.
	rt.members["node1"].markUp()
	rt.SweepNow()
	if s := rt.Stats(); s.TombstonesReclaimed != 1 || s.TombstonesPending != 0 {
		t.Fatalf("GC did not collect after revival: %+v", s)
	}
}

// TestRouterCrashRecoveryDurableHints: a router parks a missed write
// and a missed delete for a dead owner, then crashes. A fresh router
// over the same nodes must rebuild its hint buffer from the durable
// parked copies and drain them — both the write and the delete reach
// the revived owner, and the parked copies are cleaned to zero.
func TestRouterCrashRecoveryDurableHints(t *testing.T) {
	nodes := make([]*testNode, 4)
	cfg := Config{Replicas: 3, SweepInterval: -1, ProbeInterval: 20 * time.Millisecond}
	cfg.Nodes = make([]Node, len(nodes))
	for i := range nodes {
		nodes[i] = newDirTestNode(t, fmt.Sprintf("node%d", i))
		cfg.Nodes[i] = Node{Name: nodes[i].name, Base: nodes[i].srv.URL}
	}
	byName := map[string]*testNode{}
	for _, n := range nodes {
		byName[n.name] = n
	}
	rt1, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const dead = "node1"
	keyA := pickKey(rt1, "base", dead) // will be deleted while the owner is down
	keyB := pickKey(rt1, "signs", dead)
	pathA := fmt.Sprintf("/v1/tiles/%s/%d/%d", keyA.Layer, keyA.TX, keyA.TY)
	pathB := fmt.Sprintf("/v1/tiles/%s/%d/%d", keyB.Layer, keyB.TX, keyB.TY)

	if w := do(t, rt1, http.MethodPut, pathA, tileBytes(1, 1), nil); w.Code != http.StatusNoContent {
		t.Fatalf("put A: %d", w.Code)
	}
	markDown(rt1, dead)
	dataB := tileBytes(4, 4)
	if w := do(t, rt1, http.MethodPut, pathB, dataB, nil); w.Code != http.StatusNoContent {
		t.Fatalf("put B with dead owner: %d", w.Code)
	}
	if w := do(t, rt1, http.MethodDelete, pathA, nil, nil); w.Code != http.StatusNoContent {
		t.Fatalf("delete A with dead owner: %d", w.Code)
	}
	if s := rt1.Stats(); s.HintsPending != 2 {
		t.Fatalf("hints pending before crash: %+v", s)
	}
	countParked := func() int {
		parked := 0
		for _, n := range nodes {
			layers, _ := n.store.ListLayers()
			for _, l := range layers {
				if isHintLayer(l) {
					ks, _ := n.store.Keys(l)
					parked += len(ks)
				}
			}
		}
		return parked
	}
	if got := countParked(); got != 2 {
		t.Fatalf("durable parked copies before crash: %d, want 2", got)
	}

	// Crash: the router dies with its in-memory hint buffer. The nodes
	// (and their disks) survive.
	rt1.Close()

	rt2, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt2.Close)
	rt2.Start()

	// Recovery scan rebuilds the buffer; the probe loop sees the target
	// alive with pending hints and drains.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := rt2.Stats()
		// pending drops when the drain *claims* the batch; quiescence is
		// when every queued hint is accounted drained/superseded/dropped
		// and the durable copies are gone.
		if s.HintsRecovered == 2 && s.HintsQueued == s.HintsDrained+s.HintsSuperseded+s.HintsDropped &&
			s.HintsPending == 0 && countParked() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovery did not drain: %+v parked=%d", s, countParked())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The revived owner got the missed write...
	got, err := byName[dead].store.Get(keyB)
	if err != nil || !bytes.Equal(got, dataB) {
		t.Fatalf("revived owner missing hinted write: err=%v", err)
	}
	// ...and the missed delete, as a marker, not a gap.
	if _, err := byName[dead].store.Get(keyA); err == nil {
		t.Fatal("revived owner resurrected the deleted tile")
	}
	if ks, _ := byName[dead].store.Keys(storage.TombLayerPrefix + keyA.Layer); len(ks) != 1 {
		t.Fatal("revived owner did not receive the tombstone marker")
	}
	// The hint ledger balances across the crash.
	s := rt2.Stats()
	if s.HintsQueued != s.HintsDrained+s.HintsSuperseded+s.HintsDropped {
		t.Fatalf("hint books do not balance after recovery: %+v", s)
	}

	// The sweep rebuilds the tombstone ledger the old router took to its
	// grave, so GC still happens eventually.
	rt2.SweepNow()
	if s := rt2.Stats(); s.TombstonesPending != 1 || s.TombstonesWritten != 1 {
		t.Fatalf("ledger not rebuilt from shard state: %+v", s)
	}
}

// TestDeleteThenGetServesNotFound: the client-visible contract — a
// delete wins over the stale replica on quorum reads even before any
// repair has run.
func TestDeleteThenGetServesNotFound(t *testing.T) {
	rt, nodes := newTestCluster(t, 3, Config{Replicas: 3, SweepInterval: -1})
	path := "/v1/tiles/base/3/3"
	if w := do(t, rt, http.MethodPut, path, tileBytes(7, 7), nil); w.Code != http.StatusNoContent {
		t.Fatalf("put: %d", w.Code)
	}
	if w := do(t, rt, http.MethodDelete, path, nil, nil); w.Code != http.StatusNoContent {
		t.Fatalf("delete: %d", w.Code)
	}
	if w := do(t, rt, http.MethodGet, path, nil, nil); w.Code != http.StatusNotFound {
		t.Fatalf("get after delete: %d", w.Code)
	}
	// A stale replay of the erased write (lower clock than the marker)
	// must bounce off every replica with 409.
	stale := tileBytes(1, 1)
	for _, n := range nodes {
		req, _ := http.NewRequest(http.MethodPut, n.srv.URL+path, bytes.NewReader(stale))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("stale replay on %s: %d, want 409", n.name, resp.StatusCode)
		}
	}
	// A genuinely newer write resurrects the key (LWW semantics).
	fresh := tileBytes(100, 2)
	if w := do(t, rt, http.MethodPut, path, fresh, nil); w.Code != http.StatusNoContent {
		t.Fatalf("newer put: %d", w.Code)
	}
	if w := do(t, rt, http.MethodGet, path, nil, nil); w.Code != http.StatusOK || !bytes.Equal(w.Body.Bytes(), fresh) {
		t.Fatalf("get after resurrection: %d", w.Code)
	}
	checkAccounting(t, rt)
}
