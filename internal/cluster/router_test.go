package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hdmaps/internal/core"
	"hdmaps/internal/geo"
	"hdmaps/internal/storage"
)

// testNode is one in-process tile server: a MemStore behind the real
// HTTP surface plus the /healthz the failure detector probes.
type testNode struct {
	name  string
	store storage.TileStore
	srv   *httptest.Server
}

func newTestNode(t *testing.T, name string) *testNode {
	t.Helper()
	store := storage.NewMemStore()
	mux := http.NewServeMux()
	mux.Handle("/v1/", storage.NewTileServer(store))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return &testNode{name: name, store: store, srv: srv}
}

// newTestCluster builds n nodes and a stopped router over them (tests
// drive the failure detector by hand for determinism).
func newTestCluster(t *testing.T, n int, cfg Config) (*Router, []*testNode) {
	t.Helper()
	nodes := make([]*testNode, n)
	cfg.Nodes = make([]Node, n)
	for i := range nodes {
		nodes[i] = newTestNode(t, fmt.Sprintf("node%d", i))
		cfg.Nodes[i] = Node{Name: nodes[i].name, Base: nodes[i].srv.URL}
	}
	if cfg.ShardTimeout == 0 {
		cfg.ShardTimeout = 2 * time.Second
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt, nodes
}

// tileBytes encodes a tiny valid tile with the given logical clock.
func tileBytes(clock uint64, salt int) []byte {
	m := core.NewMap(fmt.Sprintf("t%d", salt))
	m.Clock = clock
	m.AddPoint(core.PointElement{Class: core.ClassSign, Pos: geo.V3(float64(salt), 1, 0)})
	return storage.EncodeBinary(m)
}

// markDown forces the failure detector's view without real probes.
func markDown(rt *Router, name string) {
	m := rt.members[name]
	for i := 0; i < rt.cfg.failAfter(); i++ {
		m.strike(rt.cfg.failAfter(), "test kill")
	}
}

func do(t *testing.T, h http.Handler, method, path string, body []byte, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func checkAccounting(t *testing.T, rt *Router) {
	t.Helper()
	s := rt.Stats()
	if s.Routed != s.Served+s.Shed+s.Errored {
		t.Errorf("accounting: routed %d != served %d + shed %d + errored %d",
			s.Routed, s.Served, s.Shed, s.Errored)
	}
}

func TestRouterReplicatedWriteAndQuorumRead(t *testing.T) {
	rt, nodes := newTestCluster(t, 3, Config{Replicas: 3})
	data := tileBytes(1, 7)
	path := "/v1/tiles/base/4/2"
	if w := do(t, rt, http.MethodPut, path, data, map[string]string{storage.ChecksumHeader: storage.Checksum(data)}); w.Code != http.StatusNoContent {
		t.Fatalf("put: %d %s", w.Code, w.Body.String())
	}
	// With R == N the write must land on every node.
	key := storage.TileKey{Layer: "base", TX: 4, TY: 2}
	for _, n := range nodes {
		got, err := n.store.Get(key)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("node %s replica: err=%v len=%d want %d", n.name, err, len(got), len(data))
		}
	}
	w := do(t, rt, http.MethodGet, path, nil, nil)
	if w.Code != http.StatusOK || !bytes.Equal(w.Body.Bytes(), data) {
		t.Fatalf("get: %d len=%d", w.Code, w.Body.Len())
	}
	if got := w.Header().Get(storage.ChecksumHeader); got != storage.Checksum(data) {
		t.Fatalf("checksum header %q", got)
	}
	if w := do(t, rt, http.MethodGet, "/v1/tiles/base/99/99", nil, nil); w.Code != http.StatusNotFound {
		t.Fatalf("missing tile: %d", w.Code)
	}
	s := rt.Stats()
	if s.Reads != 2 || s.Writes != 1 || s.Served != 3 {
		t.Fatalf("stats: %+v", s)
	}
	checkAccounting(t, rt)
}

func TestRouterReadRepairConverges(t *testing.T) {
	rt, nodes := newTestCluster(t, 3, Config{Replicas: 3})
	rt.Start()
	key := storage.TileKey{Layer: "base", TX: 1, TY: 1}
	v1 := tileBytes(1, 1)
	v2 := tileBytes(2, 2)
	// All replicas at v1 via the router, then one replica jumps to v2
	// behind the router's back (as if written during a partition). The
	// divergent write goes through the node's own HTTP surface so its
	// write-time checksum is honest — a direct store write would look
	// like at-rest corruption instead.
	if w := do(t, rt, http.MethodPut, "/v1/tiles/base/1/1", v1, nil); w.Code != http.StatusNoContent {
		t.Fatalf("put v1: %d", w.Code)
	}
	req, err := http.NewRequest(http.MethodPut, nodes[2].srv.URL+"/v1/tiles/base/1/1", bytes.NewReader(v2))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("direct put v2: %d", resp.StatusCode)
	}
	// Quorum reads must converge every replica to the winner (v2: the
	// higher clock) byte-identically via background read-repair.
	deadline := time.Now().Add(5 * time.Second)
	for {
		do(t, rt, http.MethodGet, "/v1/tiles/base/1/1", nil, nil)
		converged := true
		for _, n := range nodes {
			got, err := n.store.Get(key)
			if err != nil || !bytes.Equal(got, v2) {
				converged = false
			}
		}
		if converged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replicas did not converge to the winner")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s := rt.Stats()
	if s.StaleReplicas == 0 || s.RepairsDone == 0 {
		t.Fatalf("expected stale replicas and repairs: %+v", s)
	}
	// A later read must serve v2 from a clean quorum.
	w := do(t, rt, http.MethodGet, "/v1/tiles/base/1/1", nil, nil)
	if !bytes.Equal(w.Body.Bytes(), v2) {
		t.Fatal("read after convergence is not the winner")
	}
	checkAccounting(t, rt)
}

func TestRouterReadsSurviveOneDeadReplica(t *testing.T) {
	rt, _ := newTestCluster(t, 3, Config{Replicas: 3})
	data := tileBytes(1, 3)
	if w := do(t, rt, http.MethodPut, "/v1/tiles/base/5/5", data, nil); w.Code != http.StatusNoContent {
		t.Fatalf("put: %d", w.Code)
	}
	markDown(rt, "node1")
	w := do(t, rt, http.MethodGet, "/v1/tiles/base/5/5", nil, nil)
	if w.Code != http.StatusOK || !bytes.Equal(w.Body.Bytes(), data) {
		t.Fatalf("quorum read with one dead replica: %d", w.Code)
	}
	checkAccounting(t, rt)
}

func TestRouterShedsWithoutQuorum(t *testing.T) {
	rt, _ := newTestCluster(t, 3, Config{Replicas: 3})
	data := tileBytes(1, 4)
	if w := do(t, rt, http.MethodPut, "/v1/tiles/base/6/6", data, nil); w.Code != http.StatusNoContent {
		t.Fatalf("put: %d", w.Code)
	}
	markDown(rt, "node0")
	markDown(rt, "node1")
	// One live replica < read quorum of 2: the router must refuse
	// honestly (503 + Retry-After), never serve a sub-quorum answer.
	w := do(t, rt, http.MethodGet, "/v1/tiles/base/6/6", nil, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("sub-quorum read: %d", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	s := rt.Stats()
	if s.Shed != 1 || s.QuorumFailures != 1 {
		t.Fatalf("stats: %+v", s)
	}
	checkAccounting(t, rt)
}

// TestReplicasFollowMembership: the effective replication factor
// clamps to current membership, not the boot-time Nodes list — a
// cluster started below its target regains the full factor (and the
// derived quorums) once AddNode grows the ring.
func TestReplicasFollowMembership(t *testing.T) {
	rt, nodes := newTestCluster(t, 2, Config{Replicas: 3})
	if got := rt.replicas(); got != 2 {
		t.Fatalf("2-node start: replicas %d, want 2", got)
	}
	late := newTestNode(t, "node2")
	if err := rt.AddNode(Node{Name: late.name, Base: late.srv.URL}); err != nil {
		t.Fatal(err)
	}
	if got := rt.replicas(); got != 3 {
		t.Fatalf("after join: replicas %d, want 3", got)
	}
	if got := rt.writeQuorum(); got != 2 {
		t.Fatalf("after join: write quorum %d, want 2", got)
	}
	if st := rt.Status(); st.Replicas != 3 || st.WriteQuorum != 2 {
		t.Fatalf("status: replicas %d quorum %d", st.Replicas, st.WriteQuorum)
	}
	// A post-join write must land on all three nodes (R == N), not on
	// the two the boot-time clamp would have chosen.
	data := tileBytes(1, 9)
	if w := do(t, rt, http.MethodPut, "/v1/tiles/base/3/3", data, nil); w.Code != http.StatusNoContent {
		t.Fatalf("put: %d %s", w.Code, w.Body.String())
	}
	key := storage.TileKey{Layer: "base", TX: 3, TY: 3}
	for _, n := range append(nodes, late) {
		got, err := n.store.Get(key)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("node %s replica after join: err=%v len=%d", n.name, err, len(got))
		}
	}
	checkAccounting(t, rt)
}

// TestDeleteShedsWithoutProbeQuorum: minting a deletion marker from
// fewer than a read quorum of definitive clock answers could stamp it
// below the tile's real version, acking a delete that erases nothing.
// The router must shed instead.
func TestDeleteShedsWithoutProbeQuorum(t *testing.T) {
	rt, _ := newTestCluster(t, 3, Config{Replicas: 3})
	data := tileBytes(7, 5)
	if w := do(t, rt, http.MethodPut, "/v1/tiles/base/2/2", data, nil); w.Code != http.StatusNoContent {
		t.Fatalf("put: %d", w.Code)
	}
	markDown(rt, "node0")
	markDown(rt, "node1")
	w := do(t, rt, http.MethodDelete, "/v1/tiles/base/2/2", nil, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("sub-quorum delete: %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	checkAccounting(t, rt)
}

// pickKey finds a tile key on the given layer whose owner set contains
// wantOwner — N=4, R=3 guarantees one non-owner fallback.
func pickKey(rt *Router, layer, wantOwner string) storage.TileKey {
	for tx := int32(0); tx < 1000; tx++ {
		key := storage.TileKey{Layer: layer, TX: tx, TY: 0}
		for _, o := range rt.Ring().Owners(key, rt.replicas()) {
			if o == wantOwner {
				return key
			}
		}
	}
	panic("no key found for owner " + wantOwner)
}

func TestRouterHintedHandoff(t *testing.T) {
	rt, nodes := newTestCluster(t, 4, Config{Replicas: 3})
	byName := map[string]*testNode{}
	for _, n := range nodes {
		byName[n.name] = n
	}
	const dead = "node2"
	key := pickKey(rt, "base", dead)
	path := fmt.Sprintf("/v1/tiles/%s/%d/%d", key.Layer, key.TX, key.TY)
	markDown(rt, dead)

	data := tileBytes(3, 9)
	if w := do(t, rt, http.MethodPut, path, data, nil); w.Code != http.StatusNoContent {
		t.Fatalf("put with dead owner: %d %s", w.Code, w.Body.String())
	}
	// Live owners got the write; the dead one did not.
	if _, err := byName[dead].store.Get(key); err == nil {
		t.Fatal("dead owner received the write")
	}
	s := rt.Stats()
	if s.HintsQueued != 1 || s.HintsPending != 1 {
		t.Fatalf("hint stats after write: %+v", s)
	}
	// The hint is durably parked on some live node under the handoff
	// layer, surviving a router restart.
	hl := hintLayer(dead, key.Layer)
	durable := 0
	for _, n := range nodes {
		if ks, _ := n.store.Keys(hl); len(ks) == 1 {
			durable++
		}
	}
	if durable != 1 {
		t.Fatalf("durable hint copies: %d, want 1", durable)
	}
	// Hint layers never leak through the router's merged listings.
	var layers []string
	if err := json.Unmarshal(do(t, rt, http.MethodGet, "/v1/layers", nil, nil).Body.Bytes(), &layers); err != nil {
		t.Fatal(err)
	}
	for _, l := range layers {
		if strings.HasPrefix(l, hintLayerPrefix) {
			t.Fatalf("hint layer leaked: %v", layers)
		}
	}

	// Recovery: the up transition drains the handoff buffer back to the
	// returned owner.
	rt.noteSuccess(rt.members[dead])
	// pending() drops when the drain claims the batch, before the replay
	// PUT lands — quiescence is when the drained counter catches up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := rt.Stats()
		if s.HintsPending == 0 && s.HintsDrained == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hints did not drain")
		}
		time.Sleep(2 * time.Millisecond)
	}
	got, err := byName[dead].store.Get(key)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("recovered owner replica: err=%v", err)
	}
	// Drained durable copies are cleaned up.
	waitCleanup := time.Now().Add(2 * time.Second)
	for {
		left := 0
		for _, n := range nodes {
			ks, _ := n.store.Keys(hl)
			left += len(ks)
		}
		if left == 0 {
			break
		}
		if time.Now().After(waitCleanup) {
			t.Fatalf("%d durable hint copies left after drain", left)
		}
		time.Sleep(2 * time.Millisecond)
	}
	s = rt.Stats()
	if s.HintsDrained != 1 || s.HintsPending != 0 || s.HintsDropped != 0 {
		t.Fatalf("hint stats after drain: %+v", s)
	}
	if s.HintsQueued != s.HintsDrained+s.HintsSuperseded+s.HintsDropped {
		t.Fatalf("hint books do not balance: %+v", s)
	}
	checkAccounting(t, rt)
}

func TestRouterHintSupersededByNewerWrite(t *testing.T) {
	rt, nodes := newTestCluster(t, 4, Config{Replicas: 3})
	const dead = "node1"
	key := pickKey(rt, "base", dead)
	path := fmt.Sprintf("/v1/tiles/%s/%d/%d", key.Layer, key.TX, key.TY)
	markDown(rt, dead)
	v1, v2 := tileBytes(1, 1), tileBytes(2, 2)
	if w := do(t, rt, http.MethodPut, path, v1, nil); w.Code != http.StatusNoContent {
		t.Fatalf("put v1: %d", w.Code)
	}
	if w := do(t, rt, http.MethodPut, path, v2, nil); w.Code != http.StatusNoContent {
		t.Fatalf("put v2: %d", w.Code)
	}
	s := rt.Stats()
	if s.HintsQueued != 2 || s.HintsSuperseded != 1 || s.HintsPending != 1 {
		t.Fatalf("superseded accounting: %+v", s)
	}
	rt.noteSuccess(rt.members[dead])
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := rt.Stats()
		if s.HintsPending == 0 && s.HintsDrained == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hints did not drain")
		}
		time.Sleep(2 * time.Millisecond)
	}
	var deadNode *testNode
	for _, n := range nodes {
		if n.name == dead {
			deadNode = n
		}
	}
	got, err := deadNode.store.Get(key)
	if err != nil || !bytes.Equal(got, v2) {
		t.Fatalf("drain replayed wrong version: err=%v", err)
	}
	s = rt.Stats()
	if s.HintsQueued != s.HintsDrained+s.HintsSuperseded+s.HintsDropped {
		t.Fatalf("hint books do not balance: %+v", s)
	}
}

func TestRouterMergedListings(t *testing.T) {
	rt, _ := newTestCluster(t, 3, Config{Replicas: 2})
	// Tiles on two layers spread across shards.
	for i := 0; i < 8; i++ {
		layer := "base"
		if i%2 == 1 {
			layer = "signs"
		}
		data := tileBytes(1, i)
		path := fmt.Sprintf("/v1/tiles/%s/%d/0", layer, i)
		if w := do(t, rt, http.MethodPut, path, data, nil); w.Code != http.StatusNoContent {
			t.Fatalf("put %s: %d", path, w.Code)
		}
	}
	var layers []string
	if err := json.Unmarshal(do(t, rt, http.MethodGet, "/v1/layers", nil, nil).Body.Bytes(), &layers); err != nil {
		t.Fatal(err)
	}
	if len(layers) != 2 || layers[0] != "base" || layers[1] != "signs" {
		t.Fatalf("merged layers: %v", layers)
	}
	var keys []struct {
		TX int32 `json:"tx"`
		TY int32 `json:"ty"`
	}
	if err := json.Unmarshal(do(t, rt, http.MethodGet, "/v1/tiles/base", nil, nil).Body.Bytes(), &keys); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 4 {
		t.Fatalf("merged base listing: %v", keys)
	}
	checkAccounting(t, rt)
}

func TestRouterMetaEndpoints(t *testing.T) {
	rt, _ := newTestCluster(t, 3, Config{Replicas: 3})
	for _, path := range []string{"/healthz", "/readyz", "/statz", "/clusterz", "/metricz", "/tracez"} {
		if w := do(t, rt, http.MethodGet, path, nil, nil); w.Code != http.StatusOK {
			t.Errorf("%s: %d", path, w.Code)
		}
	}
	var status ClusterStatus
	if err := json.Unmarshal(do(t, rt, http.MethodGet, "/clusterz", nil, nil).Body.Bytes(), &status); err != nil {
		t.Fatal(err)
	}
	if len(status.Members) != 3 || status.Replicas != 3 || status.ReadQuorum != 2 {
		t.Fatalf("clusterz: %+v", status)
	}
	// Meta endpoints are not proxied traffic and must not be counted.
	if s := rt.Stats(); s.Routed != 0 {
		t.Fatalf("meta endpoints counted as routed: %+v", s)
	}
	// Per-shard counters ride the registry with bounded label
	// cardinality.
	var ms map[string]json.RawMessage
	if err := json.Unmarshal(do(t, rt, http.MethodGet, "/metricz", nil, nil).Body.Bytes(), &ms); err != nil {
		t.Fatal(err)
	}
}

func TestRouterRejectsBadRequests(t *testing.T) {
	rt, _ := newTestCluster(t, 3, Config{Replicas: 3})
	cases := []struct {
		method, path string
		body         []byte
		hdr          map[string]string
		want         int
	}{
		{http.MethodGet, "/v1/tiles/base/x/0", nil, nil, http.StatusBadRequest},
		{http.MethodPost, "/v1/tiles/base/1/0", nil, nil, http.StatusMethodNotAllowed},
		{http.MethodPut, "/v1/tiles/base/1/0", []byte("not a tile"), nil, http.StatusUnprocessableEntity},
		{http.MethodPut, "/v1/tiles/base/1/0", tileBytes(1, 1), map[string]string{storage.ChecksumHeader: "deadbeef"}, http.StatusBadRequest},
		{http.MethodGet, "/v1/tiles/hint--node0--base/1/0", nil, nil, http.StatusNotFound},
		{http.MethodGet, "/v1/nope", nil, nil, http.StatusNotFound},
	}
	for _, c := range cases {
		w := do(t, rt, c.method, c.path, c.body, c.hdr)
		if w.Code != c.want {
			t.Errorf("%s %s: %d want %d (%s)", c.method, c.path, w.Code, c.want, w.Body.String())
		}
	}
	// Definitive rejections are served answers; accounting still closes.
	s := rt.Stats()
	if s.Served != uint64(len(cases)) {
		t.Fatalf("served = %d, want %d", s.Served, len(cases))
	}
	checkAccounting(t, rt)
}

func TestRouterDrainingSheds(t *testing.T) {
	rt, _ := newTestCluster(t, 3, Config{Replicas: 3})
	rt.Close()
	w := do(t, rt, http.MethodGet, "/v1/tiles/base/1/0", nil, nil)
	if w.Code != http.StatusServiceUnavailable || w.Header().Get("Retry-After") == "" {
		t.Fatalf("draining router: %d Retry-After=%q", w.Code, w.Header().Get("Retry-After"))
	}
	if w := do(t, rt, http.MethodGet, "/readyz", nil, nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: %d", w.Code)
	}
	checkAccounting(t, rt)
}

func TestRouterMembershipChange(t *testing.T) {
	rt, _ := newTestCluster(t, 3, Config{Replicas: 2})
	if got := rt.Ring().Len(); got != 3 {
		t.Fatalf("ring size %d", got)
	}
	extra := newTestNode(t, "node3")
	if err := rt.AddNode(Node{Name: extra.name, Base: extra.srv.URL}); err != nil {
		t.Fatal(err)
	}
	if got := rt.Ring().Len(); got != 4 {
		t.Fatalf("ring size after join: %d", got)
	}
	rt.RemoveNode("node3")
	if got := rt.Ring().Len(); got != 3 {
		t.Fatalf("ring size after leave: %d", got)
	}
	if err := rt.AddNode(Node{Name: "Bad Name!", Base: "http://x"}); err == nil {
		t.Fatal("invalid node name accepted")
	}
}
