package cluster

import (
	"sync"

	"hdmaps/internal/storage"
)

// ledgerEntry tracks one key's outstanding deletion marker: the clock
// it was written at and its GC parameters, copied from the marker so
// the ledger can decide TTL expiry without re-fetching it.
type ledgerEntry struct {
	Clock      uint64
	Created    uint64
	TTLSeconds uint64
}

// tombstoneLedger is the router's account of deletion markers not yet
// garbage-collected. The invariant the soak asserts:
//
//	tombstones written == reclaimed + pending
//
// with set-cardinality semantics — record counts a key once no matter
// how many times it is re-deleted before GC, and complete removes it
// only when the reclaimed clock matches the recorded one (a concurrent
// re-delete at a higher clock keeps the key pending).
type tombstoneLedger struct {
	mu      sync.Mutex
	entries map[storage.TileKey]ledgerEntry
}

func newTombstoneLedger() *tombstoneLedger {
	return &tombstoneLedger{entries: make(map[storage.TileKey]ledgerEntry)}
}

// record notes a marker written (or re-discovered from shard state by
// the sweeper). Returns true when the key is new to the ledger — the
// caller increments TombstonesWritten exactly then. A newer clock for
// a known key updates the entry without recounting.
func (l *tombstoneLedger) record(key storage.TileKey, e ledgerEntry) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	cur, ok := l.entries[key]
	if ok && cur.Clock >= e.Clock {
		return false
	}
	l.entries[key] = e
	return !ok
}

// complete retires a key after GC (or after observing a live tile that
// superseded the marker). The entry is removed only if its clock still
// matches — a re-delete racing GC stays pending. Returns true when an
// entry was actually retired.
func (l *tombstoneLedger) complete(key storage.TileKey, clock uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	cur, ok := l.entries[key]
	if !ok || cur.Clock != clock {
		return false
	}
	delete(l.entries, key)
	return true
}

// pending is the live count of uncollected markers.
func (l *tombstoneLedger) pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// snapshot copies the ledger for a GC pass to iterate without holding
// the lock across network calls.
func (l *tombstoneLedger) snapshot() map[storage.TileKey]ledgerEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[storage.TileKey]ledgerEntry, len(l.entries))
	for k, e := range l.entries {
		out[k] = e
	}
	return out
}
