package cluster

// The router's half of the active observability plane: a shared event
// journal fed from the points that already bump counters (failure
// detector transitions, membership changes, sweep rounds, hint
// drains), an incident manager minting timelines from alert
// transitions, and a notifier pushing those transitions to operator
// sinks. All three ride the same plane switch as the sampler: a
// negative SampleInterval disables everything and /eventz, /incidentz
// answer 404.

import (
	"fmt"
	"net/http"

	"hdmaps/internal/obs/eventlog"
	"hdmaps/internal/obs/incident"
	"hdmaps/internal/obs/notify"
	"hdmaps/internal/obs/slo"
)

// event appends one entry to the journal; a no-op when the plane is
// disabled, so emission points never need their own guard.
func (rt *Router) event(typ, node, detail, traceID string) {
	if rt.journal != nil {
		rt.journal.Append(typ, node, detail, traceID)
	}
}

// EventLog exposes the router's journal (nil when the plane is off) —
// soaks assert against it and embedding processes (ingest, resilience)
// share it as their event sink.
func (rt *Router) EventLog() *eventlog.Log { return rt.journal }

// Incidents exposes the incident manager (nil when the plane is off).
func (rt *Router) Incidents() *incident.Manager { return rt.incidents }

// Notifier exposes the notifier (nil unless NotifySinks were
// configured) — soaks assert its ledger balances.
func (rt *Router) Notifier() *notify.Notifier { return rt.notifier }

// alertEventType maps an alert's target state to its journal event
// type.
func alertEventType(s slo.State) string {
	switch s {
	case slo.StateWarning:
		return eventlog.TypeAlertWarning
	case slo.StateCritical:
		return eventlog.TypeAlertCritical
	default:
		return eventlog.TypeAlertOK
	}
}

// onAlertTransition is the engine's OnTransition hook: journal first
// (so a closing incident's snapshot includes its own recovery edge),
// then the incident lifecycle, then the push fan-out.
func (rt *Router) onAlertTransition(tr slo.Transition) {
	detail := fmt.Sprintf("%s: %s -> %s (burn fast %.2f slow %.2f)",
		tr.Objective, tr.From, tr.To, tr.Alert.BurnFast, tr.Alert.BurnSlow)
	rt.event(alertEventType(tr.To), "", detail, tr.Alert.ExemplarTraceID)
	if rt.incidents != nil {
		rt.incidents.OnTransition(tr)
	}
	if rt.notifier != nil {
		rt.notifier.Notify(notify.Notification{
			Objective:       tr.Objective,
			Description:     tr.Description,
			From:            tr.From.String(),
			To:              tr.To.String(),
			At:              tr.At,
			BurnFast:        tr.Alert.BurnFast,
			BurnSlow:        tr.Alert.BurnSlow,
			ExemplarTraceID: tr.Alert.ExemplarTraceID,
		})
	}
}

// handleEventz serves the journal; the eventlog handler owns the
// hardened query-parameter surface.
func (rt *Router) handleEventz(w http.ResponseWriter, r *http.Request) {
	if rt.journal == nil {
		rt.writeJSONErrorRaw(w, http.StatusNotFound, "observability plane disabled")
		return
	}
	eventlog.Handler(rt.journal).ServeHTTP(w, r)
}

// handleIncidentz serves the incident table.
func (rt *Router) handleIncidentz(w http.ResponseWriter, r *http.Request) {
	if rt.incidents == nil {
		rt.writeJSONErrorRaw(w, http.StatusNotFound, "observability plane disabled")
		return
	}
	incident.Handler(rt.incidents).ServeHTTP(w, r)
}
