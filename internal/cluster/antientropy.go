package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"time"

	"hdmaps/internal/obs"
	"hdmaps/internal/obs/eventlog"
	"hdmaps/internal/storage"
)

// Anti-entropy makes the cluster converge without traffic driving it.
// Read-repair and hinted handoff only heal keys that are read or whose
// owner outage the router witnessed; a cold tile written while an owner
// was down, a key whose owners moved after a ring change, or a delete
// a crashed router never finished all stay divergent forever under
// those mechanisms alone. The sweeper closes that gap with a two-level
// Merkle-style exchange:
//
//  1. Per (node, layer) it fetches a fixed 16-bucket digest vector — a
//     few hundred bytes regardless of key count.
//  2. A bucket whose digests changed since the last verified-converged
//     round is "suspect": its per-key (clock, CRC, tomb) leaf tuples
//     are fetched and reconciled key by key.
//
// Replicas legitimately hold different key subsets (each node stores
// only the keys it owns), so cross-node digest equality means nothing;
// what the sweeper compares is each node's digest against its own
// previous round. A bucket is skipped only when every node's digest is
// unchanged AND the previous round verified it converged AND every
// member is alive — any membership change or byte of churn re-opens it.
type aeState struct {
	// prev: layer -> bucket -> node -> "count:digest" from the last round.
	prev map[string]map[int]map[string]string
	// clean: layer -> bucket -> the last round verified this bucket
	// converged (all owners agree on every key in it).
	clean map[string]map[int]bool
}

func newAEState() *aeState {
	return &aeState{
		prev:  make(map[string]map[int]map[string]string),
		clean: make(map[string]map[int]bool),
	}
}

// sweepLoop runs sweep rounds at the configured interval until Close.
func (rt *Router) sweepLoop(iv time.Duration) {
	defer rt.bg.Done()
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.sweepOnce()
		}
	}
}

// SweepNow runs one full anti-entropy round synchronously: digest
// exchange, inline reconciliation of every divergence found, then a
// tombstone GC pass. Tests and the demo call it to make convergence
// deterministic instead of waiting out the sweep interval.
func (rt *Router) SweepNow() {
	rt.sweepOnce()
}

// sweepOnce is one round. Rounds are serialised: the ticker and
// SweepNow callers queue behind each other on the sweep mutex.
func (rt *Router) sweepOnce() {
	rt.sweepMu.Lock()
	defer rt.sweepMu.Unlock()

	_, span := rt.tracer.StartSpan(context.Background(), "cluster.sweep")
	defer span.End()
	trace := span.TraceID()

	ms := rt.memberList()
	var live []*member
	for _, m := range ms {
		if m.Alive() {
			live = append(live, m)
		}
	}
	allAlive := len(live) == len(ms)
	if len(live) == 0 {
		span.Fail("no live members")
		return
	}

	// Layer inventory: union of base layers across live nodes. Tombstone
	// shadow layers reveal layers whose every live tile was deleted.
	layerSet := map[string]bool{}
	for _, m := range live {
		var layers []string
		if err := rt.aeJSON(trace, span, m, "/v1/layers", &layers); err != nil {
			continue
		}
		for _, l := range layers {
			switch {
			case isHintLayer(l):
			case storage.IsInternalLayer(l):
				layerSet[l[len(storage.TombLayerPrefix):]] = true
			default:
				layerSet[l] = true
			}
		}
	}
	layers := make([]string, 0, len(layerSet))
	for l := range layerSet {
		layers = append(layers, l)
	}
	sort.Strings(layers)

	for _, layer := range layers {
		rt.sweepLayer(trace, span, live, allAlive, layer)
	}
	rt.gcPass(trace, span)
	rt.stats.aeRounds.Inc()
	rt.noteSweepRound(time.Now())
	rt.event(eventlog.TypeSweepRound, "",
		fmt.Sprintf("%d layers over %d/%d live nodes", len(layers), len(live), len(ms)), trace)
}

// sweepLayer diffs one layer's digests against the previous round and
// reconciles every suspect bucket.
func (rt *Router) sweepLayer(trace string, span *obs.Span, live []*member, allAlive bool, layer string) {
	// Rebuild the GC ledger from shard state: markers written by a
	// previous router (or re-propagated by sync) must stay accounted, or
	// they would never be collected after a router crash.
	for _, m := range live {
		var tombs []storage.DigestEntry
		if err := rt.aeJSON(trace, span, m, "/v1/digest/"+url.PathEscape(layer)+"?tombs=1", &tombs); err != nil {
			continue
		}
		for _, e := range tombs {
			key := storage.TileKey{Layer: layer, TX: e.TX, TY: e.TY}
			if rt.ledger.record(key, ledgerEntry{Clock: e.Clock, Created: e.Created, TTLSeconds: e.TTLSeconds}) {
				rt.stats.tombstonesWritten.Inc()
			}
		}
	}

	// Per-node bucket vectors. A node whose digest fetch fails drops out
	// of this round: its buckets cannot be verified, so nothing is
	// marked clean.
	cur := map[int]map[string]string{}
	complete := true
	for _, m := range live {
		var d storage.LayerDigest
		if err := rt.aeJSON(trace, span, m, "/v1/digest/"+url.PathEscape(layer), &d); err != nil {
			complete = false
			continue
		}
		for b, bd := range d.Buckets {
			if cur[b] == nil {
				cur[b] = map[string]string{}
			}
			cur[b][m.node.Name] = strconv.Itoa(bd.Count) + ":" + bd.Digest
		}
	}

	prev := rt.ae.prev[layer]
	clean := rt.ae.clean[layer]
	newClean := make(map[int]bool, storage.DigestBuckets)
	for b := 0; b < storage.DigestBuckets; b++ {
		rt.stats.aeRangesDiffed.Inc()
		if prev != nil && clean[b] && allAlive && sameDigests(cur[b], prev[b]) {
			// Verified converged last round and nothing moved since.
			newClean[b] = true
			continue
		}
		rt.stats.aeRangeMismatches.Inc()
		synced, ok := rt.inspectBucket(trace, span, live, layer, b)
		// Converged only if every leaf fetch succeeded, no key needed a
		// sync, and no member was missing from the comparison.
		newClean[b] = ok && synced == 0 && allAlive && complete
	}
	rt.ae.prev[layer] = cur
	rt.ae.clean[layer] = newClean
}

// inspectBucket fetches one bucket's leaf tuples from every live node
// and reconciles each key whose live owners disagree. Returns the
// number of keys synced and whether the inspection saw every node.
func (rt *Router) inspectBucket(trace string, span *obs.Span, live []*member, layer string, bucket int) (int, bool) {
	type meta struct {
		e  storage.DigestEntry
		ok bool
	}
	perNode := map[string][]storage.DigestEntry{}
	complete := true
	for _, m := range live {
		var entries []storage.DigestEntry
		path := "/v1/digest/" + url.PathEscape(layer) + "?bucket=" + strconv.Itoa(bucket)
		if err := rt.aeJSON(trace, span, m, path, &entries); err != nil {
			complete = false
			continue
		}
		perNode[m.node.Name] = entries
	}

	type coord struct{ tx, ty int32 }
	byKey := map[coord]map[string]meta{}
	for node, entries := range perNode {
		for _, e := range entries {
			c := coord{e.TX, e.TY}
			if byKey[c] == nil {
				byKey[c] = map[string]meta{}
			}
			byKey[c][node] = meta{e: e, ok: true}
		}
	}
	coords := make([]coord, 0, len(byKey))
	for c := range byKey {
		coords = append(coords, c)
	}
	sort.Slice(coords, func(i, j int) bool {
		if coords[i].tx != coords[j].tx {
			return coords[i].tx < coords[j].tx
		}
		return coords[i].ty < coords[j].ty
	})

	synced := 0
	for _, c := range coords {
		holders := byKey[c]
		key := storage.TileKey{Layer: layer, TX: c.tx, TY: c.ty}

		// The winner by digest metadata: clock first, tombstone beats
		// live on a tie, CRC as the deterministic final tiebreak.
		var winNode string
		var win meta
		for node, h := range holders {
			if !win.ok || digestFresher(h.e, win.e) {
				win, winNode = h, node
			}
		}

		// Diverged when any live owner is missing the winner or holds a
		// different version. Non-owner copies (keys that moved on a ring
		// change) are left alone: they stop mattering once the real
		// owners converge, and the winner search above still sees them.
		owners := rt.ownersFor(key)
		diverged := false
		winnerOnOwner := false
		for _, o := range owners {
			if !o.Alive() {
				continue
			}
			// Only nodes that answered the leaf fetch can vote; an owner
			// that answered with nothing holds nothing.
			if _, answered := perNode[o.node.Name]; !answered {
				continue
			}
			h, has := holders[o.node.Name]
			if has && h.e.Clock == win.e.Clock && h.e.Sum == win.e.Sum && h.e.Tomb == win.e.Tomb {
				winnerOnOwner = true
			} else {
				diverged = true
			}
		}
		if !diverged {
			continue
		}
		source := ""
		if !winnerOnOwner {
			source = winNode
		}
		rt.stats.aeKeysSynced.Inc()
		rt.syncKey(trace, span, key, source)
		synced++
	}
	return synced, complete
}

// digestFresher orders two digest tuples the same way
// storage.FresherState orders full replica states, using the CRC as the
// byte-level tiebreak (identical bytes hash identically, so equal CRCs
// mean already-converged and never need a winner).
func digestFresher(a, b storage.DigestEntry) bool {
	if a.Clock != b.Clock {
		return a.Clock > b.Clock
	}
	if a.Tomb != b.Tomb {
		return a.Tomb
	}
	return a.Sum > b.Sum
}

// syncKey reconciles one key: re-read every live owner (plus, when the
// suspected winner lives on a non-owner, that node as a read-only
// source), pick the winner by the cluster's total order over real
// bytes, and conditionally write it to each lagging owner. The expect
// precondition means a concurrent fresher write makes the shard answer
// 412 and the sync steps aside — sweeps can never roll a key back.
func (rt *Router) syncKey(trace string, span *obs.Span, key storage.TileKey, source string) {
	leg := span.StartChild("sweep.sync")
	leg.SetAttr("layer", key.Layer)
	defer leg.End()

	owners := rt.ownersFor(key)
	var legs []legResult
	for _, m := range owners {
		if !m.Alive() {
			continue
		}
		ctx, cancel := rt.legContext(context.Background())
		res := rt.shardGet(ctx, trace, leg, m, key)
		cancel()
		legs = append(legs, res)
	}
	if source != "" {
		rt.mu.RLock()
		src := rt.members[source]
		rt.mu.RUnlock()
		isOwner := false
		for _, o := range owners {
			if o == src {
				isOwner = true
			}
		}
		if src != nil && !isOwner && src.Alive() {
			ctx, cancel := rt.legContext(context.Background())
			res := rt.shardGet(ctx, trace, leg, src, key)
			cancel()
			if res.ok && (res.found || res.tomb) {
				legs = append(legs, res)
			}
		}
	}

	var winner *legResult
	for i := range legs {
		l := &legs[i]
		if (l.found || l.tomb) && (winner == nil ||
			storage.FresherState(l.tomb, l.clock, l.data, winner.tomb, winner.clock, winner.data)) {
			winner = l
		}
	}
	if winner == nil {
		rt.stats.aeRepairsSkipped.Inc()
		leg.Fail("no winner readable")
		return
	}

	ownerSet := map[*member]bool{}
	for _, o := range owners {
		ownerSet[o] = true
	}
	for i := range legs {
		l := &legs[i]
		if !ownerSet[l.m] || l.m == winner.m {
			continue
		}
		if l.ok && l.tomb == winner.tomb && l.found == winner.found && bytes.Equal(l.data, winner.data) {
			continue // already converged
		}
		if !l.ok && !l.integrity {
			rt.stats.aeRepairsSkipped.Inc()
			continue // unreachable mid-sweep; next round retries
		}
		expect := ""
		if !l.integrity {
			expect = legExpectOf(l)
		}
		ctx, cancel := rt.legContext(context.Background())
		err := rt.shardPut(ctx, trace, leg, l.m, key, winner.data, winner.sum, expect)
		cancel()
		if err != nil {
			rt.stats.aeRepairsSkipped.Inc()
			continue
		}
		rt.stats.aeRepairsDone.Inc()
		rt.stats.shardRepairs.With(l.m.node.Name).Inc()
	}
}

// gcPass reclaims tombstones whose job is provably finished. A marker
// may be deleted only when (1) its TTL expired, (2) no hint for the key
// is still parked, (3) every ring owner is alive and holds this exact
// marker. Until then it must survive: the marker is the only thing
// standing between a revived stale replica and a resurrected delete.
// Reclamation itself is conditional (expect tomb:<clock>), so a
// concurrent re-delete or fresher write aborts the collection.
func (rt *Router) gcPass(trace string, span *obs.Span) {
	snap := rt.ledger.snapshot()
	if len(snap) == 0 {
		return
	}
	now := uint64(time.Now().Unix())
	for key, e := range snap {
		if e.Created+e.TTLSeconds > now {
			continue // TTL not expired
		}
		if rt.hints.pendingForKey(key) {
			continue // a parked write/delete for this key is still in flight
		}
		owners := rt.ownersFor(key)
		allAlive := len(owners) > 0
		for _, o := range owners {
			if !o.Alive() {
				allAlive = false
			}
		}
		if !allAlive {
			continue // a dead owner might still revive with stale state
		}

		leg := span.StartChild("sweep.gc")
		leg.SetAttr("layer", key.Layer)
		allHold := true
		allAbsent := true
		superseded := false
		readable := true
		var states []legResult
		for _, o := range owners {
			ctx, cancel := rt.legContext(context.Background())
			res := rt.shardGet(ctx, trace, leg, o, key)
			cancel()
			if !res.ok {
				readable = false
				break
			}
			states = append(states, res)
			if res.clock > e.Clock {
				superseded = true
			}
			if res.found || res.tomb {
				allAbsent = false
			}
			if !res.tomb || res.clock != e.Clock {
				allHold = false
			}
		}
		switch {
		case !readable:
			// Can't prove anything this round.
		case superseded:
			// A fresher write or re-delete owns the key now; this ledger
			// entry's marker is history. complete() is clock-guarded, so a
			// re-delete that already refreshed the entry keeps it pending.
			if rt.ledger.complete(key, e.Clock) {
				rt.stats.tombstonesReclaimed.Inc()
			}
		case allAbsent:
			// Every owner already forgot the key — a previous GC deleted
			// the markers but crashed before retiring the ledger entry.
			if rt.ledger.complete(key, e.Clock) {
				rt.stats.tombstonesReclaimed.Inc()
			}
		case !allHold:
			// Some owner still lacks the marker: not safe. The digest pass
			// re-propagates it; collect on a later round.
		default:
			collected := true
			expect := storage.ReplicaState{Tomb: true, Clock: e.Clock}.String()
			for _, o := range owners {
				ctx, cancel := rt.legContext(context.Background())
				err := rt.shardDelete(ctx, trace, leg, o, key, expect)
				cancel()
				if err != nil {
					// 412 = the owner's state moved under us; anything else
					// = unreachable. Abort; the marker stays pending and
					// partially-collected owners are re-seeded by the next
					// digest pass.
					collected = false
					break
				}
			}
			if collected && rt.ledger.complete(key, e.Clock) {
				rt.stats.tombstonesReclaimed.Inc()
			}
		}
		leg.End()
	}
}

// aeJSON fetches one node's JSON endpoint under a fresh leg span and
// timeout, for sweep use outside any client request.
func (rt *Router) aeJSON(trace string, span *obs.Span, m *member, path string, v any) error {
	leg := span.StartChild("sweep.fetch")
	leg.SetAttr("node", m.node.Name)
	ctx, cancel := rt.legContext(context.Background())
	err := rt.shardJSON(ctx, trace, leg, m, path, v)
	cancel()
	if err != nil {
		leg.Fail(err.Error())
	}
	leg.End()
	return err
}

// sameDigests reports whether two node->digest maps are identical.
func sameDigests(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
