package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hdmaps/internal/obs/eventlog"
	"hdmaps/internal/obs/incident"
)

// TestEventJournalRecordsLifecycle drives the failure detector and
// membership API by hand and asserts every transition lands on the
// journal exactly once, in order, with the detector's error detail.
func TestEventJournalRecordsLifecycle(t *testing.T) {
	rt, _ := newTestCluster(t, 2, Config{})
	j := rt.EventLog()
	if j == nil {
		t.Fatal("default config should build an event journal")
	}

	m := rt.members["node0"]
	for i := 0; i < rt.cfg.failAfter(); i++ {
		rt.noteFailure(m, "test kill")
	}
	rt.noteSuccess(m)
	n2 := newTestNode(t, "node2")
	if err := rt.AddNode(Node{Name: "node2", Base: n2.srv.URL}); err != nil {
		t.Fatal(err)
	}
	rt.RemoveNode("node2")

	evs := j.Since(0, "", 0)
	var types []string
	for _, e := range evs {
		types = append(types, e.Type)
	}
	want := []string{eventlog.TypeNodeDead, eventlog.TypeNodeRevived,
		eventlog.TypeNodeJoin, eventlog.TypeNodeLeave}
	if len(types) != len(want) {
		t.Fatalf("journal types %v, want %v", types, want)
	}
	for i, w := range want {
		if types[i] != w {
			t.Fatalf("event %d: %s, want %s (all: %v)", i, types[i], w, types)
		}
	}
	if evs[0].Node != "node0" || evs[0].Detail != "test kill" {
		t.Fatalf("node_dead event: %+v", evs[0])
	}

	// Type-filtered query through the HTTP surface.
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("GET", "/eventz?type="+eventlog.TypeNodeDead, nil))
	if rec.Code != 200 {
		t.Fatalf("eventz status %d: %s", rec.Code, rec.Body.String())
	}
	var doc eventlog.Status
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Events) != 1 || doc.Events[0].Type != eventlog.TypeNodeDead {
		t.Fatalf("filtered eventz: %+v", doc.Events)
	}
}

// TestEventzIncidentzQueryHardening exercises the 400 surface of both
// new endpoints and the hardened /fleetz through the real router mux:
// garbage parameters are named errors, never silent coercion.
func TestEventzIncidentzQueryHardening(t *testing.T) {
	rt, _ := newTestCluster(t, 1, Config{})
	cases := []struct {
		path string
		code int
	}{
		{"/eventz", 200},
		{"/eventz?since=0&type=" + eventlog.TypeSweepRound, 200},
		{"/eventz?since=bogus", 400},
		{"/eventz?since=-1", 400},
		{"/eventz?since=9100000000000000000", 400},
		{"/eventz?type=no_such_type", 400},
		{"/eventz?max=-5", 400},
		{"/incidentz", 200},
		{"/incidentz?state=open", 200},
		{"/incidentz?state=resolved", 200},
		{"/incidentz?state=bogus", 400},
		{"/fleetz?points=5", 200},
		{"/fleetz?points=bogus", 400},
		{"/fleetz?points=-1", 400},
		{"/fleetz?points=10000000000", 400},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		rt.ServeHTTP(rec, httptest.NewRequest("GET", tc.path, nil))
		if rec.Code != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.path, rec.Code, tc.code,
				strings.TrimSpace(rec.Body.String()))
		}
		if tc.code == 400 {
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Errorf("%s: 400 body not a JSON error: %q", tc.path, rec.Body.String())
			}
		}
	}
}

// TestEventzIncidentzDisabledWithPlane: the new endpoints ride the same
// plane switch as /fleetz — a negative SampleInterval turns them off.
func TestEventzIncidentzDisabledWithPlane(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	rt, err := NewRouter(Config{
		Nodes:          []Node{{Name: "n1", Base: srv.URL}},
		SampleInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.EventLog() != nil || rt.Incidents() != nil || rt.Notifier() != nil {
		t.Fatal("disabled plane should not build journal/incidents/notifier")
	}
	for _, path := range []string{"/eventz", "/incidentz"} {
		rec := httptest.NewRecorder()
		rt.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 404 {
			t.Fatalf("%s: status %d, want 404 when disabled", path, rec.Code)
		}
	}
}

// TestSharedJournalInjection: a caller-supplied journal is used as-is
// (so ingest and resilience can share it) and survives Router.Close —
// the router only closes journals it created itself.
func TestSharedJournalInjection(t *testing.T) {
	shared, err := eventlog.New(eventlog.Config{Types: eventlog.StandardTypes()})
	if err != nil {
		t.Fatal(err)
	}
	defer shared.Close()
	shared.Append(eventlog.TypeCommitReject, "", "pre-existing entry", "")

	rt, _ := newTestCluster(t, 1, Config{EventLog: shared})
	if rt.EventLog() != shared {
		t.Fatal("router should adopt the injected journal")
	}
	m := rt.members["node0"]
	for i := 0; i < rt.cfg.failAfter(); i++ {
		rt.noteFailure(m, "boom")
	}
	evs := shared.Since(0, "", 0)
	if len(evs) != 2 || evs[0].Type != eventlog.TypeCommitReject || evs[1].Type != eventlog.TypeNodeDead {
		t.Fatalf("shared journal: %+v", evs)
	}
	rt.Close()
	// Still usable: Close must not have closed the shared journal.
	shared.Append(eventlog.TypeRollback, "", "after router close", "")
	if got := len(shared.Since(0, "", 0)); got != 3 {
		t.Fatalf("journal after router close: %d events, want 3", got)
	}
}

// TestAlertTransitionMintsIncident drives the SLO engine through a
// fault via the federation fakes and asserts the full active plane:
// journal edge, incident minted with the causal node_dead event, and
// resolution on recovery.
func TestAlertTransitionMintsIncident(t *testing.T) {
	rt, _ := fedRouter(t, 1, Config{
		SampleInterval: time.Second, // driven manually via ObserveNow
		SLOFastWindow:  5 * time.Second,
		SLOSlowWindow:  20 * time.Second,
		IncidentWindow: time.Hour,
	})
	base := time.Unix(200000, 0)

	// Healthy baseline: traffic flows, nothing shed.
	routed := rt.reg.Counter("cluster.router.routed")
	shed := rt.reg.Counter("cluster.router.shed")
	routed.Add(100)
	for i := 0; i < 25; i++ {
		rt.ObserveNow(base.Add(time.Duration(i) * time.Second))
		routed.Add(100)
	}

	// The causal event an operator should find inside the incident.
	rt.EventLog().Append(eventlog.TypeNodeDead, "n1", "injected", "")

	// Fault: every routed request sheds.
	for i := 25; i < 35; i++ {
		rt.ObserveNow(base.Add(time.Duration(i) * time.Second))
		routed.Add(100)
		shed.Add(100)
	}
	open := rt.Incidents().Incidents()
	if len(open) == 0 || open[0].State != incident.StateOpen {
		t.Fatalf("no open incident after sustained fault: %+v", open)
	}
	if open[0].Objective != "slo.read.availability" {
		t.Fatalf("incident objective %q", open[0].Objective)
	}

	// Recovery: shedding stops; the incident resolves and bundles the
	// injected kill event from its causal window.
	for i := 35; i < 80; i++ {
		rt.ObserveNow(base.Add(time.Duration(i) * time.Second))
		routed.Add(100)
	}
	all := rt.Incidents().Incidents()
	var resolved *incident.Incident
	for i := range all {
		if all[i].State == incident.StateResolved {
			resolved = &all[i]
		}
	}
	if resolved == nil {
		t.Fatalf("incident never resolved: %+v", all)
	}
	foundKill := false
	for _, e := range resolved.Events {
		if e.Type == eventlog.TypeNodeDead && e.Node == "n1" {
			foundKill = true
		}
	}
	if !foundKill {
		t.Fatalf("resolved incident missing causal node_dead event: %+v", resolved.Events)
	}
	// The journal carries the alert edges themselves too.
	crit := rt.EventLog().Since(0, eventlog.TypeAlertCritical, 0)
	okEvs := rt.EventLog().Since(0, eventlog.TypeAlertOK, 0)
	if len(crit) == 0 || len(okEvs) == 0 {
		t.Fatalf("journal alert edges: critical=%d ok=%d, want both > 0", len(crit), len(okEvs))
	}
}
