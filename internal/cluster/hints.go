package cluster

import (
	"strings"
	"sync"

	"hdmaps/internal/storage"
)

// hintLayerPrefix marks handoff layers on fallback nodes. A hint for
// key {L, tx, ty} missed by node "n2" is stored on the fallback node
// as tile {hint--n2--L, tx, ty} with the original payload, so the
// parked write survives a router restart on a real node's disk (the
// Dynamo-style "hinted handoff buffer on a fallback node"). Hint
// layers are filtered out of every merged listing, so clients never
// see them. The prefix is owned by the storage layer, which stores
// hint payloads raw (tile or tombstone bytes alike).
const hintLayerPrefix = storage.HintLayerPrefix

// hintLayer names the handoff layer for writes node target missed on
// layer.
func hintLayer(target, layer string) string {
	return hintLayerPrefix + target + "--" + layer
}

// parseHintLayer splits a hint layer name into (target node, original
// layer); ok is false for non-hint layers.
func parseHintLayer(name string) (target, layer string, ok bool) {
	if !strings.HasPrefix(name, hintLayerPrefix) {
		return "", "", false
	}
	rest := name[len(hintLayerPrefix):]
	i := strings.Index(rest, "--")
	if i <= 0 || i+2 >= len(rest) {
		return "", "", false
	}
	return rest[:i], rest[i+2:], true
}

// isHintLayer reports whether a layer name is a handoff layer.
func isHintLayer(name string) bool {
	_, _, ok := parseHintLayer(name)
	return ok
}

// hint is one write a down owner missed — a tile PUT or, with Tomb
// set, a deletion whose payload is the encoded tombstone marker. Both
// kinds park a durable copy on a fallback node, so deletes survive a
// router restart exactly like writes do.
type hint struct {
	Target   string          // owner that missed the write
	Fallback string          // node durably holding the payload ("" when memory-only)
	Key      storage.TileKey // original tile key
	Data     []byte          // payload to replay: tile bytes, or marker bytes when Tomb
	Tomb     bool            // payload is a tombstone marker (the missed write was a delete)
	Clock    uint64          // payload clock, for replay ordering diagnostics
	Sum      string          // payload checksum (ChecksumHeader value)
}

// hintBuffer indexes pending hints by target node, bounded by max
// entries in total. One key keeps only its latest hint per target —
// replaying an overwritten intermediate write would be wasted work and,
// worse, could race a fresher repair.
type hintBuffer struct {
	mu       sync.Mutex
	byTarget map[string]map[storage.TileKey]*hint
	total    int
	max      int
}

func newHintBuffer(max int) *hintBuffer {
	if max <= 0 {
		max = 4096
	}
	return &hintBuffer{byTarget: make(map[string]map[storage.TileKey]*hint), max: max}
}

// hintOutcome reports what add/restore did, so callers can keep the
// accounting invariant queued == drained + superseded + dropped +
// pending exact.
type hintOutcome int

const (
	hintAdded    hintOutcome = iota // new (target, key) slot filled
	hintReplaced                    // an older hint for the slot was superseded
	hintFull                        // buffer at capacity; hint not stored
)

// add indexes a hint, replacing any earlier hint for the same
// (target, key) — replaying an overwritten intermediate write would be
// wasted work and could race a fresher repair. hintFull means the
// caller must fail the write leg rather than silently park it nowhere.
func (b *hintBuffer) add(h *hint) hintOutcome {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.byTarget[h.Target]
	if m == nil {
		m = make(map[storage.TileKey]*hint)
		b.byTarget[h.Target] = m
	}
	if _, exists := m[h.Key]; exists {
		m[h.Key] = h
		return hintReplaced
	}
	if b.total >= b.max {
		return hintFull
	}
	b.total++
	m[h.Key] = h
	return hintAdded
}

// restore re-inserts a hint claimed by take whose replay failed. Unlike
// add it never clobbers: if a newer hint for the slot arrived while the
// drain held this one, the old hint is the superseded side
// (hintReplaced) and is discarded.
func (b *hintBuffer) restore(h *hint) hintOutcome {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.byTarget[h.Target]
	if m == nil {
		m = make(map[storage.TileKey]*hint)
		b.byTarget[h.Target] = m
	}
	if _, exists := m[h.Key]; exists {
		return hintReplaced
	}
	if b.total >= b.max {
		return hintFull
	}
	b.total++
	m[h.Key] = h
	return hintAdded
}

// take removes and returns every pending hint for target — the drain
// claims the whole batch, re-adding any hint whose replay fails.
func (b *hintBuffer) take(target string) []*hint {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.byTarget[target]
	if len(m) == 0 {
		return nil
	}
	out := make([]*hint, 0, len(m))
	for _, h := range m {
		out = append(out, h)
	}
	delete(b.byTarget, target)
	b.total -= len(out)
	return out
}

// pending reports the number of unreplayed hints, total and for one
// target.
func (b *hintBuffer) pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

func (b *hintBuffer) pendingFor(target string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.byTarget[target])
}

// pendingForKey reports whether any target still has an unreplayed
// hint for key. Tombstone GC consults this: a marker with a hint in
// flight is not yet safe to reclaim.
func (b *hintBuffer) pendingForKey(key storage.TileKey) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, m := range b.byTarget {
		if _, ok := m[key]; ok {
			return true
		}
	}
	return false
}

// pendingByTarget snapshots the per-target pending counts for
// /clusterz.
func (b *hintBuffer) pendingByTarget() map[string]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int, len(b.byTarget))
	for t, m := range b.byTarget {
		if len(m) > 0 {
			out[t] = len(m)
		}
	}
	return out
}
