package cluster

// The router's observability plane: an in-process sampler turning the
// router registry into time-series history, the fleet federation
// scrape (federation.go), and the SLO burn-rate engine evaluating the
// shipped objectives over that history. One loop drives all three on
// the SampleInterval cadence so /fleetz and /alertz always describe
// the same rounds.

import (
	"net/http"
	"strconv"
	"time"

	"hdmaps/internal/obs/eventlog"
	"hdmaps/internal/obs/incident"
	"hdmaps/internal/obs/notify"
	"hdmaps/internal/obs/slo"
	"hdmaps/internal/obs/timeseries"
)

func (c *Config) sampleInterval() time.Duration {
	if c.SampleInterval < 0 {
		return 0 // observability plane disabled
	}
	if c.SampleInterval == 0 {
		return 5 * time.Second
	}
	return c.SampleInterval
}

func (c *Config) sampleHistory() int {
	if c.SampleHistory > 0 {
		return c.SampleHistory
	}
	return 360
}

func (c *Config) maxFleetNodes() int {
	if c.MaxFleetNodes > 0 {
		return c.MaxFleetNodes
	}
	return 16
}

// shippedObjectives is the default SLO set: availability and latency
// of the read path, quorum assembly, ingest commit-gate pass rate
// (no-data unless an ingest service shares the router's registry), and
// anti-entropy sweep freshness when sweeping is enabled.
func (rt *Router) shippedObjectives() []slo.Objective {
	objs := []slo.Objective{
		{
			Name:           "slo.read.availability",
			Description:    "routed requests answered, not shed",
			BadSeries:      "cluster.router.shed",
			TotalSeries:    "cluster.router.routed",
			Target:         0.99,
			ExemplarSource: "cluster.router.latency_seconds",
		},
		{
			Name:           "slo.read.latency_p99",
			Description:    "p99 tile request latency under 500ms",
			ValueSeries:    "cluster.router.latency_seconds.p99",
			Bound:          0.5,
			Target:         0.9,
			ExemplarSource: "cluster.router.latency_seconds",
		},
		{
			Name:           "slo.read.quorum",
			Description:    "requests that assembled their quorum",
			BadSeries:      "cluster.read.quorum_failures",
			TotalSeries:    "cluster.router.routed",
			Target:         0.99,
			ExemplarSource: "cluster.router.latency_seconds",
		},
		{
			Name:        "slo.ingest.gate_pass",
			Description: "ingest commit-gate pass rate",
			BadSeries:   "ingest.gate.rejected",
			TotalSeries: "ingest.gate.checked",
			Target:      0.9,
		},
	}
	if iv := rt.cfg.sweepInterval(); iv > 0 {
		objs = append(objs, slo.Objective{
			Name:        "slo.sweep.cadence",
			Description: "anti-entropy sweep freshness (age under 4 intervals)",
			ValueSeries: "cluster.antientropy.round_age_seconds",
			Bound:       (4 * iv).Seconds(),
			Target:      0.9,
		})
	}
	return objs
}

// buildObservability wires the sampler, federation, SLO engine, event
// journal, incident manager, and notifier into a freshly-constructed
// router. A non-positive resolved sample interval leaves the plane off
// (rt.sampler et al stay nil; /fleetz, /alertz, /eventz, and
// /incidentz answer 404).
func (rt *Router) buildObservability() error {
	iv := rt.cfg.sampleInterval()
	if iv <= 0 {
		return nil
	}
	rt.sampler = timeseries.NewSampler(timeseries.Config{
		Registry: rt.reg,
		Interval: iv,
		Capacity: rt.cfg.sampleHistory(),
	})
	rt.fleet = newFleet(rt, iv, rt.cfg.sampleHistory(), rt.cfg.maxFleetNodes())
	rt.aeAge = rt.reg.Gauge("cluster.antientropy.round_age_seconds")

	if rt.cfg.EventLog != nil {
		rt.journal = rt.cfg.EventLog
	} else {
		j, err := eventlog.New(eventlog.Config{
			Types:    eventlog.StandardTypes(),
			Capacity: rt.cfg.EventLogCapacity,
			Path:     rt.cfg.EventLogPath,
			Registry: rt.reg,
		})
		if err != nil {
			return err
		}
		rt.journal = j
		rt.ownJournal = true
	}
	rt.incidents = incident.New(incident.Config{
		Journal:  rt.journal,
		Window:   rt.cfg.IncidentWindow,
		Registry: rt.reg,
	})
	if len(rt.cfg.NotifySinks) > 0 {
		n, err := notify.New(notify.Config{
			Sinks:    rt.cfg.NotifySinks,
			MinHold:  rt.cfg.NotifyMinHold,
			Registry: rt.reg,
		})
		if err != nil {
			return err
		}
		rt.notifier = n
	}

	objs := rt.cfg.SLOObjectives
	if objs == nil {
		objs = rt.shippedObjectives()
	}
	eng, err := slo.New(slo.Config{
		Source:       rt.sampler.Store(),
		Objectives:   objs,
		FastWindow:   rt.cfg.SLOFastWindow,
		SlowWindow:   rt.cfg.SLOSlowWindow,
		Registry:     rt.reg,
		OnTransition: rt.onAlertTransition,
	})
	if err != nil {
		return err
	}
	rt.sloEng = eng
	return nil
}

// noteSweepRound stamps the completion time of an anti-entropy round;
// the observability loop turns it into the sweep-age gauge the
// slo.sweep.cadence objective watches.
func (rt *Router) noteSweepRound(now time.Time) {
	rt.lastSweep.Store(now.UnixMilli())
}

// obsLoop is the observability heartbeat: every SampleInterval it
// refreshes derived gauges, samples the router's own registry,
// federates the fleet, and re-evaluates the SLO engine. Runs on a
// tracked background goroutine; exits with the router.
func (rt *Router) obsLoop(iv time.Duration) {
	defer rt.bg.Done()
	rt.observeRound(time.Now()) // baseline round so the first interval has a predecessor
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case now := <-t.C:
			rt.observeRound(now)
		}
	}
}

// observeRound is one round of the plane — derived gauges, sample,
// federate, evaluate — under obsMu so the background loop and
// ObserveNow never sample concurrently.
func (rt *Router) observeRound(now time.Time) {
	rt.obsMu.Lock()
	defer rt.obsMu.Unlock()
	if last := rt.lastSweep.Load(); last > 0 {
		age := now.Sub(time.UnixMilli(last))
		if age < 0 {
			age = 0
		}
		rt.aeAge.Set(int64(age / time.Second))
	}
	rt.sampler.SampleNow(now)
	rt.fleet.scrapeRound(now)
	rt.sloEng.Evaluate()
}

// ObserveNow runs one observability round synchronously — sample,
// federate, evaluate — stamped at now. Tests and soaks call it to make
// alert transitions deterministic instead of sleeping out the
// interval. No-op when the plane is disabled.
func (rt *Router) ObserveNow(now time.Time) {
	if rt.sampler == nil {
		return
	}
	rt.observeRound(now)
}

// SLOAlerts reads the current alert set (nil when the plane is off).
func (rt *Router) SLOAlerts() []slo.Alert {
	if rt.sloEng == nil {
		return nil
	}
	return rt.sloEng.Alerts()
}

// maxFleetPoints bounds ?points=: no ring is anywhere near this deep,
// so anything beyond it is a garbage cursor, not a request for more
// history.
const maxFleetPoints = 1 << 20

// handleFleetz serves the federated fleet document. ?points=N bounds
// the per-series history (default 30, 0 = full ring). Non-numeric,
// negative, or absurd values are 400 JSON errors — never silently
// coerced.
func (rt *Router) handleFleetz(w http.ResponseWriter, r *http.Request) {
	if rt.fleet == nil {
		rt.writeJSONErrorRaw(w, http.StatusNotFound, "observability plane disabled")
		return
	}
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		rt.writeJSONErrorRaw(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	points := 30
	if v := r.URL.Query().Get("points"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 || n > maxFleetPoints {
			rt.writeJSONErrorRaw(w, http.StatusBadRequest,
				"bad points: want an integer in [0, 2^20], got "+strconv.Quote(v))
			return
		}
		points = n
	}
	rt.writeJSON(w, rt.FleetStatus(points))
}

func (rt *Router) handleAlertz(w http.ResponseWriter, r *http.Request) {
	if rt.sloEng == nil {
		http.Error(w, "observability plane disabled", http.StatusNotFound)
		return
	}
	slo.Handler(rt.sloEng).ServeHTTP(w, r)
}
