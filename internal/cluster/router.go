package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hdmaps/internal/obs"
	"hdmaps/internal/obs/eventlog"
	"hdmaps/internal/obs/incident"
	"hdmaps/internal/obs/notify"
	"hdmaps/internal/obs/slo"
	"hdmaps/internal/obs/timeseries"
	"hdmaps/internal/storage"
)

// Node identifies one tile-server backend: a stable name (the ring
// identity, also the metric label) and its HTTP base URL.
type Node struct {
	Name string
	Base string
}

// Config configures a Router. Zero fields take the defaults documented
// on each resolver below.
type Config struct {
	// Nodes is the initial membership. Names must be unique, non-empty,
	// and valid metric label values ([a-z0-9_]+).
	Nodes []Node
	// Replicas is the owner-set size R per tile (default 3, clamped to
	// the member count).
	Replicas int
	// ReadQuorum / WriteQuorum are the answers required before a read
	// responds or a write acks (default R/2+1 each). A write quorum is
	// sloppy: a hint successfully parked for a dead owner counts.
	ReadQuorum  int
	WriteQuorum int
	// VNodes is the virtual-node count per member (default
	// DefaultVNodes).
	VNodes int
	// ShardTimeout bounds each per-node leg request (default 5s).
	ShardTimeout time.Duration
	// RetryAfter is the hint on shed (503) responses (default 1s).
	RetryAfter time.Duration
	// ProbeInterval / ProbeTimeout drive the failure detector (defaults
	// 250ms / 1s). FailAfter is the consecutive-strike threshold that
	// marks a node down (default 2).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	FailAfter     int
	// MaxHints bounds the in-memory hinted-handoff buffer (default
	// 4096 hints); MaxRepairQueue bounds the read-repair queue (default
	// 256).
	MaxHints       int
	MaxRepairQueue int
	// MaxTileBytes bounds accepted PUT bodies (default 16 MiB, matching
	// storage.TileServer).
	MaxTileBytes int64
	// SweepInterval is the anti-entropy sweep cadence (default 30s;
	// negative disables background sweeping — SweepNow still works).
	SweepInterval time.Duration
	// TombstoneTTL is the minimum deletion-marker age before GC may
	// reclaim it (default 24h). It must exceed the hint-drain/repair
	// horizon — see the GC safety argument in DESIGN.md §11.
	TombstoneTTL time.Duration
	// SampleInterval is the observability-plane cadence: registry
	// sampling, fleet federation scrapes, and SLO evaluation all run on
	// this tick (default 5s; negative disables the whole plane —
	// /fleetz and /alertz answer 404).
	SampleInterval time.Duration
	// SampleHistory is the ring capacity of every time series, in ticks
	// (default 360 — half an hour at the default interval).
	SampleHistory int
	// MaxFleetNodes bounds the per-node series cardinality in the
	// federated view; nodes beyond it collapse into one reserved
	// "other" pseudo-node (default 16).
	MaxFleetNodes int
	// SLOFastWindow / SLOSlowWindow are the burn-rate windows (defaults
	// 5m / 1h, resolved by the SLO engine). SLOObjectives overrides the
	// shipped objective set when non-nil.
	SLOFastWindow time.Duration
	SLOSlowWindow time.Duration
	SLOObjectives []slo.Objective
	// EventLog, when set, is the shared journal the router emits
	// lifecycle events into (embedding processes pass the same journal
	// to ingest/resilience so /eventz is one cluster-wide timeline).
	// When nil and the plane is enabled, the router builds a private
	// journal over the full standard domain — durable at EventLogPath
	// if that is set, memory-only otherwise. EventLogCapacity bounds
	// the ring (default 1024).
	EventLog         *eventlog.Log
	EventLogPath     string
	EventLogCapacity int
	// NotifySinks, when non-empty, enables push alerting: every alert
	// transition fans out to each sink with retry, dedup, and flap
	// damping (NotifyMinHold, default 1m — see notify.Config.MinHold).
	NotifySinks   []notify.Sink
	NotifyMinHold time.Duration
	// IncidentWindow is the causal look-back for incident timelines
	// (default 2m — see incident.Config.Window).
	IncidentWindow time.Duration
	// Transport, when set, is used for all node requests — the chaos
	// tests inject per-host fault transports here.
	Transport http.RoundTripper
	// Registry receives the router's counters (default: a private
	// registry). Tracer receives request spans (default: a tracer with
	// Metrics on the same registry). Logger defaults to a no-op.
	Registry *obs.Registry
	Tracer   *obs.Tracer
	Logger   *slog.Logger
}

// replicasFor clamps the configured replication factor to the given
// membership size. Callers pass *current* membership, not the initial
// cfg.Nodes list: a cluster started below its target factor regains
// the full factor (and the quorums derived from it) as AddNode grows
// the ring.
func (c *Config) replicasFor(members int) int {
	r := c.Replicas
	if r <= 0 {
		r = 3
	}
	if r > members {
		r = members
	}
	return r
}

func (c *Config) readQuorumFor(replicas int) int {
	if c.ReadQuorum > 0 {
		return c.ReadQuorum
	}
	return replicas/2 + 1
}

func (c *Config) writeQuorumFor(replicas int) int {
	if c.WriteQuorum > 0 {
		return c.WriteQuorum
	}
	return replicas/2 + 1
}

func (c *Config) shardTimeout() time.Duration {
	if c.ShardTimeout > 0 {
		return c.ShardTimeout
	}
	return 5 * time.Second
}

func (c *Config) retryAfter() time.Duration {
	if c.RetryAfter > 0 {
		return c.RetryAfter
	}
	return time.Second
}

func (c *Config) probeInterval() time.Duration {
	if c.ProbeInterval > 0 {
		return c.ProbeInterval
	}
	return 250 * time.Millisecond
}

func (c *Config) probeTimeout() time.Duration {
	if c.ProbeTimeout > 0 {
		return c.ProbeTimeout
	}
	return time.Second
}

func (c *Config) failAfter() int {
	if c.FailAfter > 0 {
		return c.FailAfter
	}
	return 2
}

func (c *Config) maxTileBytes() int64 {
	if c.MaxTileBytes > 0 {
		return c.MaxTileBytes
	}
	return 16 << 20
}

func (c *Config) maxRepairQueue() int {
	if c.MaxRepairQueue > 0 {
		return c.MaxRepairQueue
	}
	return 256
}

func (c *Config) sweepInterval() time.Duration {
	if c.SweepInterval < 0 {
		return 0 // disabled
	}
	if c.SweepInterval == 0 {
		return 30 * time.Second
	}
	return c.SweepInterval
}

func (c *Config) tombstoneTTL() time.Duration {
	if c.TombstoneTTL > 0 {
		return c.TombstoneTTL
	}
	return 24 * time.Hour
}

// Router fronts a fleet of tile servers as one origin: it routes every
// tile key to its R ring owners, reads at quorum with background
// read-repair, replicates writes with hinted handoff for dead owners,
// and exports the same /statz /metricz /tracez surface as a single
// node. It implements http.Handler for the storage /v1 API plus the
// meta endpoints.
type Router struct {
	cfg    Config
	log    *slog.Logger
	tracer *obs.Tracer
	reg    *obs.Registry
	httpc  *http.Client
	stats  *stats
	hints  *hintBuffer

	mu      sync.RWMutex
	ring    *Ring
	members map[string]*member

	ledger *tombstoneLedger
	// sweepMu serialises anti-entropy rounds (ticker vs SweepNow); ae is
	// only touched under it.
	sweepMu sync.Mutex
	ae      *aeState

	// Observability plane (nil when disabled): per-request latency
	// histogram, registry sampler, fleet federation, SLO engine, and
	// the anti-entropy freshness gauge fed from lastSweep (unix ms).
	// obsMu serialises observability rounds (obsLoop ticker vs
	// ObserveNow) — the sampler is not safe for concurrent sampling.
	obsMu     sync.Mutex
	latency   *obs.Histogram
	sampler   *timeseries.Sampler
	fleet     *fleet
	sloEng    *slo.Engine
	aeAge     *obs.Gauge
	lastSweep atomic.Int64
	// Active plane (nil when disabled): the event journal (/eventz),
	// incident manager (/incidentz), and push notifier. ownJournal
	// marks a journal the router built itself and must close.
	journal    *eventlog.Log
	ownJournal bool
	incidents  *incident.Manager
	notifier   *notify.Notifier

	repairCh chan repairJob
	stop     chan struct{}
	// closeMu serialises goBG against Close so bg.Add never races
	// bg.Wait: once draining is set under the lock, no new background
	// goroutine can start.
	closeMu  sync.Mutex
	bg       sync.WaitGroup
	started  atomic.Bool
	draining atomic.Bool
}

// repairJob asks the repair worker to bring one replica up to the
// winner observed by a quorum read. (Sweep-found divergences are
// reconciled inline by the sweeper via syncKey, not queued here.)
type repairJob struct {
	m      *member
	key    storage.TileKey
	data   []byte
	sum    string
	clock  uint64
	tomb   bool   // payload is a tombstone marker, not tile bytes
	expect string // conditional-write precondition observed on the target
}

// NewRouter validates cfg and builds a stopped router; call Start to
// launch the failure detector and repair worker.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: no nodes")
	}
	names := make([]string, 0, len(cfg.Nodes))
	members := make(map[string]*member, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		if n.Name == "" || n.Base == "" {
			return nil, fmt.Errorf("cluster: node needs name and base: %+v", n)
		}
		if err := obs.ValidateLabelValue(n.Name); err != nil {
			return nil, fmt.Errorf("cluster: node name %q: %w", n.Name, err)
		}
		if _, dup := members[n.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		n.Base = strings.TrimRight(n.Base, "/")
		// Nodes start optimistically alive; the first probe round
		// corrects any that are already dead.
		members[n.Name] = &member{node: n, alive: true}
		names = append(names, n.Name)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.NewTracer(obs.TracerConfig{Metrics: reg})
	}
	rt := &Router{
		cfg:      cfg,
		log:      obs.OrNop(cfg.Logger),
		tracer:   tracer,
		reg:      reg,
		stats:    newStats(reg, names),
		hints:    newHintBuffer(cfg.MaxHints),
		ring:     NewRing(names, cfg.VNodes),
		members:  members,
		ledger:   newTombstoneLedger(),
		ae:       newAEState(),
		repairCh: make(chan repairJob, cfg.maxRepairQueue()),
		stop:     make(chan struct{}),
	}
	rt.httpc = &http.Client{Transport: cfg.Transport}
	rt.latency = reg.Histogram("cluster.router.latency_seconds", nil)
	if err := rt.buildObservability(); err != nil {
		return nil, err
	}
	return rt, nil
}

// Registry exposes the router's metric registry (for /metricz mounting
// or test assertions).
func (rt *Router) Registry() *obs.Registry { return rt.reg }

// Tracer exposes the router's tracer.
func (rt *Router) Tracer() *obs.Tracer { return rt.tracer }

// Stats reads the router counters plus live hint/drain state.
func (rt *Router) Stats() StatsSnapshot {
	s := rt.stats.snapshot()
	s.HintsPending = rt.hints.pending()
	s.TombstonesPending = rt.ledger.pending()
	s.Draining = rt.draining.Load()
	return s
}

// Start launches the failure detector, the repair worker, the
// anti-entropy sweeper, and a one-shot recovery scan that rebuilds the
// hint buffer from durable parked copies a previous router left on the
// nodes' disks.
func (rt *Router) Start() {
	if !rt.started.CompareAndSwap(false, true) {
		return
	}
	rt.bg.Add(2)
	go rt.probeLoop()
	go rt.repairLoop()
	if iv := rt.cfg.sweepInterval(); iv > 0 {
		rt.bg.Add(1)
		go rt.sweepLoop(iv)
	}
	if rt.sampler != nil {
		rt.bg.Add(1)
		go rt.obsLoop(rt.cfg.sampleInterval())
	}
	rt.goBG(rt.recoverDurableHints)
}

// Close stops background work and waits for in-flight drains, repairs,
// and read finishers. The router sheds new proxied requests while
// closing.
func (rt *Router) Close() {
	rt.closeMu.Lock()
	if !rt.draining.CompareAndSwap(false, true) {
		rt.closeMu.Unlock()
		return
	}
	rt.closeMu.Unlock()
	close(rt.stop)
	rt.bg.Wait()
	// Quiesce the push plane after background work stops emitting:
	// Close drains every sink queue, so the delivery ledger balances
	// with pending at zero.
	if rt.notifier != nil {
		rt.notifier.Close()
	}
	if rt.ownJournal {
		_ = rt.journal.Close()
	}
}

// goBG runs fn on a tracked background goroutine, refusing once Close
// has begun (Close waits for everything started before it).
func (rt *Router) goBG(fn func()) bool {
	rt.closeMu.Lock()
	if rt.draining.Load() {
		rt.closeMu.Unlock()
		return false
	}
	rt.bg.Add(1)
	rt.closeMu.Unlock()
	go func() {
		defer rt.bg.Done()
		fn()
	}()
	return true
}

// memberList snapshots the membership for lock-free iteration.
func (rt *Router) memberList() []*member {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]*member, 0, len(rt.members))
	for _, m := range rt.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].node.Name < out[j].node.Name })
	return out
}

// AddNode joins a node to the ring: the membership map gains a member
// and the ring is swapped whole, so in-flight owner lookups see either
// the old or the new circle, never a partial one. Keys the new node
// now owns converge via read-repair. Joining an existing name replaces
// its base URL.
func (rt *Router) AddNode(n Node) error {
	if n.Name == "" || n.Base == "" {
		return fmt.Errorf("cluster: node needs name and base: %+v", n)
	}
	if err := obs.ValidateLabelValue(n.Name); err != nil {
		return fmt.Errorf("cluster: node name %q: %w", n.Name, err)
	}
	n.Base = strings.TrimRight(n.Base, "/")
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.members[n.Name] = &member{node: n, alive: true}
	rt.ring = rt.ring.WithNode(n.Name)
	rt.event(eventlog.TypeNodeJoin, n.Name, n.Base, "")
	return nil
}

// RemoveNode leaves a node from the ring. Its pending hints stay
// buffered (they are dropped only by eviction) but will never drain.
func (rt *Router) RemoveNode(name string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	delete(rt.members, name)
	rt.ring = rt.ring.WithoutNode(name)
	rt.event(eventlog.TypeNodeLeave, name, "", "")
}

// Ring snapshots the current ring.
func (rt *Router) Ring() *Ring {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring
}

// replicas is the effective replication factor: the configured factor
// clamped to current membership under rt.mu.
func (rt *Router) replicas() int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.cfg.replicasFor(len(rt.members))
}

// readQuorum / writeQuorum derive quorums from the effective (current
// membership) replication factor unless explicitly configured.
func (rt *Router) readQuorum() int  { return rt.cfg.readQuorumFor(rt.replicas()) }
func (rt *Router) writeQuorum() int { return rt.cfg.writeQuorumFor(rt.replicas()) }

// ownersFor resolves a key's owner set to live member handles (dead
// members included — callers decide whether to skip or hint).
func (rt *Router) ownersFor(key storage.TileKey) []*member {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	names := rt.ring.Owners(key, rt.cfg.replicasFor(len(rt.members)))
	out := make([]*member, 0, len(names))
	for _, n := range names {
		if m := rt.members[n]; m != nil {
			out = append(out, m)
		}
	}
	return out
}

// fallbackFor finds the first live non-owner walking clockwise past a
// key's owner set — the node that holds durable hint copies for it.
func (rt *Router) fallbackFor(key storage.TileKey, owners []*member) *member {
	isOwner := make(map[string]bool, len(owners))
	for _, m := range owners {
		isOwner[m.node.Name] = true
	}
	rt.mu.RLock()
	ring, members := rt.ring, rt.members
	rt.mu.RUnlock()
	var fb *member
	ring.walk(key, func(node string) bool {
		if isOwner[node] {
			return true
		}
		if m := members[node]; m != nil && m.Alive() {
			fb = m
			return false
		}
		return true
	})
	return fb
}

// ---- HTTP surface ----------------------------------------------------

// ServeHTTP routes meta endpoints locally and proxies the /v1 tile API
// to the ring. Accounting invariant: every /v1 request increments
// Routed and exactly one of Served, Shed, Errored.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/healthz":
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
		return
	case "/readyz":
		if rt.draining.Load() {
			w.Header().Set("Retry-After", rt.retryAfterValue())
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = io.WriteString(w, "draining\n")
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ready\n")
		return
	case "/statz":
		rt.writeJSON(w, rt.Stats())
		return
	case "/clusterz":
		rt.writeJSON(w, rt.Status())
		return
	case "/metricz":
		obs.MetricsHandler(rt.reg).ServeHTTP(w, r)
		return
	case "/tracez":
		obs.TracezHandler(rt.tracer).ServeHTTP(w, r)
		return
	case "/fleetz":
		rt.handleFleetz(w, r)
		return
	case "/alertz":
		rt.handleAlertz(w, r)
		return
	case "/eventz":
		rt.handleEventz(w, r)
		return
	case "/incidentz":
		rt.handleIncidentz(w, r)
		return
	}
	if !strings.HasPrefix(r.URL.Path, "/v1/") {
		http.NotFound(w, r)
		return
	}

	rt.stats.routed.Inc()
	r, trace := obs.EnsureRequestTrace(r)
	w.Header().Set(obs.TraceHeader, trace)
	ctx := r.Context()
	if parent := obs.SanitizeTraceID(r.Header.Get(obs.SpanHeader)); parent != "" {
		ctx = obs.WithRemoteParent(ctx, parent)
	}
	ctx, span := rt.tracer.StartSpan(ctx, "router.request")
	span.SetAttr("method", r.Method)
	span.SetAttr("path", r.URL.Path)
	start := time.Now()
	defer func() {
		dur := time.Since(start)
		span.EndWith(dur)
		// Exemplars only for tail-sampled traces, so the stamped trace ID
		// is always resolvable on /tracez.
		rt.latency.ObserveWithExemplar(dur.Seconds(), span.SampledTraceID())
	}()
	r = r.WithContext(ctx)

	if rt.draining.Load() {
		span.Fail("draining")
		rt.shed(w, span, "router draining")
		return
	}

	parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/"), "/")
	switch {
	case len(parts) == 2 && parts[1] == "layers":
		if r.Method != http.MethodGet {
			rt.clientError(w, http.StatusMethodNotAllowed, "method not allowed")
			return
		}
		rt.handleLayers(w, r, span)
	case len(parts) == 3 && parts[1] == "tiles":
		if r.Method != http.MethodGet {
			rt.clientError(w, http.StatusMethodNotAllowed, "method not allowed")
			return
		}
		rt.handleList(w, r, span, parts[2])
	case len(parts) == 5 && parts[1] == "tiles":
		key, err := parseTileKey(parts[2], parts[3], parts[4])
		if err != nil {
			rt.clientError(w, http.StatusBadRequest, err.Error())
			return
		}
		if storage.IsInternalLayer(key.Layer) {
			// Handoff and tombstone layers are cluster-internal; clients
			// never address them through the router.
			rt.clientError(w, http.StatusNotFound, "tile not found")
			return
		}
		span.SetAttr("layer", key.Layer)
		switch r.Method {
		case http.MethodGet:
			rt.handleTileGet(w, r, span, key)
		case http.MethodPut:
			rt.handleTilePut(w, r, span, key)
		case http.MethodDelete:
			rt.handleTileDelete(w, r, span, key)
		default:
			rt.clientError(w, http.StatusMethodNotAllowed, "method not allowed")
		}
	default:
		rt.clientError(w, http.StatusNotFound, "not found")
	}
}

func parseTileKey(layer, txs, tys string) (storage.TileKey, error) {
	if layer == "" {
		return storage.TileKey{}, errors.New("empty layer")
	}
	tx, err := strconv.ParseInt(txs, 10, 32)
	if err != nil {
		return storage.TileKey{}, fmt.Errorf("bad tx: %w", err)
	}
	ty, err := strconv.ParseInt(tys, 10, 32)
	if err != nil {
		return storage.TileKey{}, fmt.Errorf("bad ty: %w", err)
	}
	return storage.TileKey{Layer: layer, TX: int32(tx), TY: int32(ty)}, nil
}

func (rt *Router) retryAfterValue() string {
	secs := int(rt.cfg.retryAfter().Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// shed refuses a request for lack of quorum: 503 + Retry-After,
// counted in Shed. Shed responses force-sample their trace so /tracez
// always has the evidence.
func (rt *Router) shed(w http.ResponseWriter, span *obs.Span, msg string) {
	span.ForceSample()
	rt.stats.shed.Inc()
	w.Header().Set("Retry-After", rt.retryAfterValue())
	rt.writeJSONErrorRaw(w, http.StatusServiceUnavailable, msg)
}

// clientError answers a malformed or unroutable request definitively
// (4xx), counted in Served — the router did its job.
func (rt *Router) clientError(w http.ResponseWriter, status int, msg string) {
	rt.stats.served.Inc()
	rt.writeJSONErrorRaw(w, status, msg)
}

// internalError counts a router-side failure.
func (rt *Router) internalError(w http.ResponseWriter, span *obs.Span, msg string) {
	span.Fail(msg)
	rt.stats.errored.Inc()
	rt.writeJSONErrorRaw(w, http.StatusInternalServerError, msg)
}

func (rt *Router) writeJSON(w http.ResponseWriter, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		rt.writeJSONErrorRaw(w, http.StatusInternalServerError, err.Error())
		return
	}
	data = append(data, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(storage.ChecksumHeader, storage.Checksum(data))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// writeJSONErrorRaw mirrors the tile-server error shape ({"error",
// "trace_id"}) so clients see one protocol whether they hit a node or
// the router.
func (rt *Router) writeJSONErrorRaw(w http.ResponseWriter, status int, msg string) {
	body := map[string]string{"error": msg}
	if trace := w.Header().Get(obs.TraceHeader); trace != "" {
		body["trace_id"] = trace
	}
	data, err := json.Marshal(body)
	if err != nil {
		data = []byte(`{"error":"internal error"}`)
	}
	data = append(data, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(data)
}

// ClusterStatus is the /clusterz document: membership health, ring
// shape, quorum parameters, and handoff state in one read.
type ClusterStatus struct {
	Replicas    int            `json:"replicas"`
	ReadQuorum  int            `json:"read_quorum"`
	WriteQuorum int            `json:"write_quorum"`
	VNodes      int            `json:"vnodes"`
	Members     []MemberStatus `json:"members"`
	HintsByNode map[string]int `json:"hints_by_node,omitempty"`
	// Tombstones is the pending-deletion ledger: markers written but not
	// yet garbage-collected, sorted by key.
	Tombstones []TombstoneStatus `json:"tombstones,omitempty"`
	Stats      StatsSnapshot     `json:"stats"`
}

// TombstoneStatus is one pending deletion marker in /clusterz.
type TombstoneStatus struct {
	Layer      string `json:"layer"`
	TX         int32  `json:"tx"`
	TY         int32  `json:"ty"`
	Clock      uint64 `json:"clock"`
	Created    uint64 `json:"created"`
	TTLSeconds uint64 `json:"ttl"`
}

// Status assembles the /clusterz document.
func (rt *Router) Status() ClusterStatus {
	ms := rt.memberList()
	out := ClusterStatus{
		Replicas:    rt.replicas(),
		ReadQuorum:  rt.readQuorum(),
		WriteQuorum: rt.writeQuorum(),
		VNodes:      rt.Ring().vnodes,
		Members:     make([]MemberStatus, 0, len(ms)),
		HintsByNode: rt.hints.pendingByTarget(),
		Tombstones:  rt.tombstoneStatus(),
		Stats:       rt.Stats(),
	}
	for _, m := range ms {
		out.Members = append(out.Members, m.status())
	}
	return out
}

func (rt *Router) tombstoneStatus() []TombstoneStatus {
	snap := rt.ledger.snapshot()
	out := make([]TombstoneStatus, 0, len(snap))
	for k, e := range snap {
		out = append(out, TombstoneStatus{
			Layer: k.Layer, TX: k.TX, TY: k.TY,
			Clock: e.Clock, Created: e.Created, TTLSeconds: e.TTLSeconds,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		if a.TX != b.TX {
			return a.TX < b.TX
		}
		return a.TY < b.TY
	})
	return out
}

// ---- shard legs ------------------------------------------------------

// legResult is one replica's answer to a read.
type legResult struct {
	m         *member
	ok        bool // definitive answer: found tile, tombstone, or authoritative miss
	found     bool
	tomb      bool // the replica holds a deletion marker; data is the marker bytes
	data      []byte
	sum       string
	clock     uint64
	integrity bool // reachable but served damaged bytes — repairable
	errMsg    string
}

// legExpectOf renders a leg's observed state as a conditional-write
// precondition: whatever mutation follows is accepted by the shard only
// if the state is still exactly this.
func legExpectOf(l *legResult) string {
	switch {
	case l.tomb:
		return storage.ReplicaState{Tomb: true, Clock: l.clock}.String()
	case l.found:
		return storage.ReplicaState{Found: true, Clock: l.clock, Sum: l.sum}.String()
	default:
		return "absent"
	}
}

// Semantic (non-error) write outcomes: the shard answered, ordered the
// write, and refused it deliberately. Neither strikes the failure
// detector nor counts as a shard error.
var (
	// errSuperseded is a 409: the write is ordered below the replica's
	// current state (a stale replay losing to a tombstone, or an
	// obsolete tombstone losing to a newer tile). The write is
	// accepted-and-immediately-superseded in LWW terms.
	errSuperseded = errors.New("cluster: write superseded by fresher state")
	// errPrecondition is a 412: the ExpectHeader precondition failed —
	// the replica's state moved between observation and write.
	errPrecondition = errors.New("cluster: write precondition failed")
)

func (rt *Router) tileURL(base string, key storage.TileKey) string {
	return fmt.Sprintf("%s/v1/tiles/%s/%d/%d", base, url.PathEscape(key.Layer), key.TX, key.TY)
}

// legContext detaches a shard leg from the client request: a read
// finisher keeps collecting answers for repair after the response is
// written, so legs must not die with the handler. Trace identity is
// carried over explicitly.
func (rt *Router) legContext(ctx context.Context) (context.Context, context.CancelFunc) {
	detached := obs.WithTraceID(context.Background(), obs.TraceID(ctx))
	return context.WithTimeout(detached, rt.cfg.shardTimeout())
}

// legHeaders stamps trace propagation headers on a shard request: the
// trace ID plus the leg's span ID, so the node-side server span nests
// under this exact leg in /tracez.
func legHeaders(req *http.Request, trace string, leg *obs.Span) {
	if trace != "" {
		req.Header.Set(obs.TraceHeader, trace)
	}
	if id := leg.IDHex(); id != "" {
		req.Header.Set(obs.SpanHeader, id)
	}
}

// shardGet reads one replica and classifies the answer. Transport
// errors strike the failure detector; damaged payloads (checksum
// mismatch, unreadable header) are flagged for repair.
func (rt *Router) shardGet(ctx context.Context, trace string, leg *obs.Span, m *member, key storage.TileKey) legResult {
	res := legResult{m: m}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rt.tileURL(m.node.Base, key), nil)
	if err != nil {
		res.errMsg = err.Error()
		return res
	}
	legHeaders(req, trace, leg)
	resp, err := rt.httpc.Do(req)
	if err != nil {
		rt.noteFailure(m, err.Error())
		rt.stats.shardErrors.With(m.node.Name).Inc()
		res.errMsg = err.Error()
		return res
	}
	defer func() { _ = resp.Body.Close() }()
	switch {
	case resp.StatusCode == http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.maxTileBytes()+1))
		if err != nil {
			rt.noteFailure(m, err.Error())
			rt.stats.shardErrors.With(m.node.Name).Inc()
			res.errMsg = err.Error()
			return res
		}
		sum := storage.Checksum(data)
		if want := resp.Header.Get(storage.ChecksumHeader); want != "" && want != sum {
			rt.stats.integrityFailures.Inc()
			res.integrity = true
			res.errMsg = "checksum mismatch"
			return res
		}
		clock, err := storage.PeekClock(data)
		if err != nil {
			if ts, derr := storage.DecodeTombstone(data); derr == nil {
				// A parked deletion marker read back from a hint layer
				// (hint layers store payloads raw).
				res.ok, res.tomb, res.data, res.sum, res.clock = true, true, data, sum, ts.Clock
				return res
			}
			rt.stats.integrityFailures.Inc()
			res.integrity = true
			res.errMsg = "unreadable tile: " + err.Error()
			return res
		}
		res.ok, res.found, res.data, res.sum, res.clock = true, true, data, sum, clock
		return res
	case resp.StatusCode == http.StatusNotFound:
		if resp.Header.Get(storage.TombstoneHeader) != "" {
			// Deleted, not merely absent: the body carries the marker.
			data, err := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.maxTileBytes()+1))
			if err == nil {
				sum := storage.Checksum(data)
				want := resp.Header.Get(storage.ChecksumHeader)
				if want == "" || want == sum {
					if ts, derr := storage.DecodeTombstone(data); derr == nil {
						res.ok, res.tomb, res.data, res.sum, res.clock = true, true, data, sum, ts.Clock
						return res
					}
				}
			}
			rt.stats.integrityFailures.Inc()
			res.integrity = true
			res.errMsg = "unreadable tombstone"
			return res
		}
		res.ok = true // an authoritative miss is a valid quorum answer
		return res
	default:
		rt.stats.shardErrors.With(m.node.Name).Inc()
		res.errMsg = "status " + resp.Status
		return res
	}
}

// shardPut writes one replica (2xx is success). A non-empty expect is
// sent as the conditional-write precondition; 412 and 409 come back as
// errPrecondition/errSuperseded — semantic outcomes the shard decided
// deliberately, not shard failures.
func (rt *Router) shardPut(ctx context.Context, trace string, leg *obs.Span, m *member, key storage.TileKey, data []byte, sum, expect string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, rt.tileURL(m.node.Base, key), bytes.NewReader(data))
	if err != nil {
		return err
	}
	legHeaders(req, trace, leg)
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(storage.ChecksumHeader, sum)
	if expect != "" {
		req.Header.Set(storage.ExpectHeader, expect)
	}
	resp, err := rt.httpc.Do(req)
	if err != nil {
		rt.noteFailure(m, err.Error())
		rt.stats.shardErrors.With(m.node.Name).Inc()
		return err
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	_ = resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusConflict:
		return errSuperseded
	case resp.StatusCode == http.StatusPreconditionFailed:
		return errPrecondition
	case resp.StatusCode < 200 || resp.StatusCode >= 300:
		rt.stats.shardErrors.With(m.node.Name).Inc()
		return errors.New("status " + resp.Status)
	}
	return nil
}

// shardDelete deletes one replica; a 404 counts as success (already
// gone). A non-empty expect makes the delete conditional (412 =>
// errPrecondition) — tombstone GC uses this to reclaim exactly the
// marker it observed.
func (rt *Router) shardDelete(ctx context.Context, trace string, leg *obs.Span, m *member, key storage.TileKey, expect string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, rt.tileURL(m.node.Base, key), nil)
	if err != nil {
		return err
	}
	legHeaders(req, trace, leg)
	if expect != "" {
		req.Header.Set(storage.ExpectHeader, expect)
	}
	resp, err := rt.httpc.Do(req)
	if err != nil {
		rt.noteFailure(m, err.Error())
		rt.stats.shardErrors.With(m.node.Name).Inc()
		return err
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	_ = resp.Body.Close()
	if resp.StatusCode == http.StatusPreconditionFailed {
		return errPrecondition
	}
	if resp.StatusCode != http.StatusNotFound && (resp.StatusCode < 200 || resp.StatusCode >= 300) {
		rt.stats.shardErrors.With(m.node.Name).Inc()
		return errors.New("status " + resp.Status)
	}
	return nil
}

// The cluster's total order over replica states is
// storage.FresherState: clock first, tombstone beats live on a tie,
// payload bytes as final tiebreak. It is deterministic, so every
// quorum read, repair, and sweep picks the same winner and replicas
// converge byte-identical — including agreeing on deletions.

// ---- read path -------------------------------------------------------

func (rt *Router) handleTileGet(w http.ResponseWriter, r *http.Request, span *obs.Span, key storage.TileKey) {
	rt.stats.reads.Inc()
	owners := rt.ownersFor(key)
	if len(owners) == 0 {
		rt.internalError(w, span, "no owners for key")
		return
	}
	trace := obs.TraceID(r.Context())
	need := rt.readQuorum()
	if need > len(owners) {
		need = len(owners)
	}
	span.SetAttrInt("owners", int64(len(owners)))

	results := make(chan legResult, len(owners))
	launched := 0
	for _, m := range owners {
		if !m.Alive() {
			// A known-dead owner cannot contribute to quorum; fail its
			// leg instantly instead of burning ShardTimeout on it.
			results <- legResult{m: m, errMsg: "node down"}
			launched++
			continue
		}
		// Child spans are started sequentially here (the parent span is
		// goroutine-owned); each leg goroutine then owns its child.
		leg := span.StartChild("shard.read")
		leg.SetAttr("node", m.node.Name)
		rt.stats.shardRouted.With(m.node.Name).Inc()
		launched++
		go func(m *member, leg *obs.Span) {
			ctx, cancel := rt.legContext(r.Context())
			defer cancel()
			res := rt.shardGet(ctx, trace, leg, m, key)
			if res.errMsg != "" {
				leg.Fail(res.errMsg)
			}
			leg.End()
			results <- res
		}(m, leg)
	}

	var all []legResult
	answers := 0
	var winner *legResult
	responded := false
	for len(all) < launched {
		res := <-results
		all = append(all, res)
		if res.ok {
			answers++
			if (res.found || res.tomb) && (winner == nil ||
				storage.FresherState(res.tomb, res.clock, res.data, winner.tomb, winner.clock, winner.data)) {
				cp := res
				winner = &cp
			}
		}
		if !responded && answers >= need {
			responded = true
			if winner != nil && winner.found {
				w.Header().Set("Content-Type", "application/octet-stream")
				w.Header().Set(storage.ChecksumHeader, winner.sum)
				_, _ = w.Write(winner.data)
			} else {
				// Absent and tombstoned both read as 404 to clients; the
				// marker is cluster machinery, not payload.
				rt.writeJSONErrorRaw(w, http.StatusNotFound, "tile not found")
			}
			rt.stats.served.Inc()
			// Remaining legs finish in the background purely to feed
			// read-repair; the client is already answered.
			remaining := launched - len(all)
			if remaining > 0 {
				snapshot := make([]legResult, len(all))
				copy(snapshot, all)
				if rt.goBG(func() { rt.finishRead(key, results, snapshot, remaining) }) {
					return
				}
			}
			break
		}
	}
	if !responded {
		rt.stats.quorumFailures.Inc()
		span.Fail("read quorum failed")
		rt.shed(w, span, fmt.Sprintf("read quorum failed: %d/%d answers", answers, need))
	}
	rt.scheduleRepairs(key, all)
}

// finishRead drains the leftover legs of an already-answered read and
// feeds the full result set to read-repair, using the freshest replica
// seen anywhere (which may be newer than the one served).
func (rt *Router) finishRead(key storage.TileKey, results chan legResult, all []legResult, remaining int) {
	for i := 0; i < remaining; i++ {
		select {
		case res := <-results:
			all = append(all, res)
		case <-rt.stop:
			return
		}
	}
	rt.scheduleRepairs(key, all)
}

// scheduleRepairs compares every leg against the winner and queues a
// repair for each stale, missing, or damaged replica that is still
// reachable. Unreachable replicas are the hinted-handoff path's
// problem, not read-repair's.
func (rt *Router) scheduleRepairs(key storage.TileKey, legs []legResult) {
	var winner *legResult
	for i := range legs {
		l := &legs[i]
		if (l.found || l.tomb) && (winner == nil ||
			storage.FresherState(l.tomb, l.clock, l.data, winner.tomb, winner.clock, winner.data)) {
			winner = l
		}
	}
	if winner == nil {
		return
	}
	for i := range legs {
		l := &legs[i]
		if l.m == winner.m {
			continue
		}
		stale := false
		switch {
		case l.integrity:
			stale = true // damaged bytes: overwrite with the winner
		case !l.ok:
			continue // unreachable: hints cover it
		case !l.found && !l.tomb:
			// Absent — including absent where the winner is a tombstone:
			// markers propagate to every owner so absences converge too,
			// and GC reclaims them only once all owners hold one.
			stale = true
			rt.stats.staleReads.Inc()
		case l.tomb != winner.tomb || !bytes.Equal(l.data, winner.data):
			stale = true
			rt.stats.staleReads.Inc()
		}
		if !stale {
			continue
		}
		job := repairJob{
			m: l.m, key: key, data: winner.data, sum: winner.sum,
			clock: winner.clock, tomb: winner.tomb, expect: legExpectOf(l),
		}
		if l.integrity {
			// A damaged replica's true state is unknowable; overwrite it.
			job.expect = ""
		}
		select {
		case rt.repairCh <- job:
			rt.stats.repairsScheduled.Inc()
		default:
			rt.stats.repairsDropped.Inc()
		}
	}
}

// repairLoop is the read-repair worker: it re-checks the target's
// current version (another repair or a direct write may have landed
// first) and writes the winner only if the target is still behind.
func (rt *Router) repairLoop() {
	defer rt.bg.Done()
	for {
		select {
		case <-rt.stop:
			return
		case job := <-rt.repairCh:
			rt.repair(job)
		}
	}
}

func (rt *Router) repair(job repairJob) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.shardTimeout())
	defer cancel()
	_, span := rt.tracer.StartSpan(ctx, "cluster.repair")
	span.SetAttr("node", job.m.node.Name)
	span.SetAttr("layer", job.key.Layer)
	defer span.End()
	cur := rt.shardGet(ctx, span.TraceID(), span, job.m, job.key)
	if (cur.found || cur.tomb) &&
		!storage.FresherState(job.tomb, job.clock, job.data, cur.tomb, cur.clock, cur.data) {
		rt.stats.repairsSkipped.Inc()
		return
	}
	if !cur.ok && !cur.integrity {
		// Target unreachable — the hint path owns convergence now.
		rt.stats.repairsSkipped.Inc()
		span.Fail("target unreachable")
		return
	}
	// The write is conditional on the state just re-read: if anything
	// lands on the replica between this check and the PUT, the shard
	// answers 412 and the repair steps aside instead of overwriting the
	// fresher write — the read-then-overwrite race is closed at the
	// shard, not by hoping the queue is fast.
	expect := ""
	if !cur.integrity {
		expect = legExpectOf(&cur)
	}
	if err := rt.shardPut(ctx, span.TraceID(), span, job.m, job.key, job.data, job.sum, expect); err != nil {
		rt.stats.repairsSkipped.Inc()
		if !errors.Is(err, errPrecondition) && !errors.Is(err, errSuperseded) {
			span.Fail(err.Error())
		}
		return
	}
	rt.stats.repairsDone.Inc()
	rt.stats.shardRepairs.With(job.m.node.Name).Inc()
}

// ---- write path ------------------------------------------------------

func (rt *Router) handleTilePut(w http.ResponseWriter, r *http.Request, span *obs.Span, key storage.TileKey) {
	rt.stats.writes.Inc()
	limit := rt.cfg.maxTileBytes()
	data, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		rt.clientError(w, http.StatusBadRequest, err.Error())
		return
	}
	if int64(len(data)) > limit {
		rt.clientError(w, http.StatusRequestEntityTooLarge, "tile too large")
		return
	}
	sum := storage.Checksum(data)
	if want := r.Header.Get(storage.ChecksumHeader); want != "" && want != sum {
		w.Header().Set(storage.TransientHeader, "checksum-mismatch")
		rt.clientError(w, http.StatusBadRequest,
			fmt.Sprintf("checksum mismatch: got %s want %s", sum, want))
		return
	}
	clock, err := storage.PeekClock(data)
	if err != nil {
		// The router refuses what every node would refuse, without
		// burning R legs on it.
		rt.clientError(w, http.StatusUnprocessableEntity, "invalid tile: "+err.Error())
		return
	}

	owners := rt.ownersFor(key)
	if len(owners) == 0 {
		rt.internalError(w, span, "no owners for key")
		return
	}
	trace := obs.TraceID(r.Context())
	need := rt.writeQuorum()
	if need > len(owners) {
		need = len(owners)
	}

	type putOutcome struct {
		m   *member
		err error
	}
	results := make(chan putOutcome, len(owners))
	inflight := 0
	var toHint []*member
	for _, m := range owners {
		if !m.Alive() {
			toHint = append(toHint, m)
			continue
		}
		leg := span.StartChild("shard.write")
		leg.SetAttr("node", m.node.Name)
		rt.stats.shardRouted.With(m.node.Name).Inc()
		inflight++
		go func(m *member, leg *obs.Span) {
			ctx, cancel := rt.legContext(r.Context())
			defer cancel()
			err := rt.shardPut(ctx, trace, leg, m, key, data, sum, "")
			if err != nil {
				leg.Fail(err.Error())
			}
			leg.End()
			results <- putOutcome{m: m, err: err}
		}(m, leg)
	}
	acked := 0
	for i := 0; i < inflight; i++ {
		out := <-results
		// errSuperseded acks too: the shard ordered the write below a
		// tombstone it holds — accepted-and-immediately-superseded is a
		// completed write under last-writer-wins, not a failure.
		if out.err == nil || errors.Is(out.err, errSuperseded) {
			acked++
		} else {
			toHint = append(toHint, out.m)
		}
	}
	hinted := 0
	for _, m := range toHint {
		h := &hint{Target: m.node.Name, Key: key, Data: data, Clock: clock, Sum: sum}
		if rt.queueHint(r.Context(), trace, span, h, owners) {
			hinted++
		}
	}
	span.SetAttrInt("acked", int64(acked))
	span.SetAttrInt("hinted", int64(hinted))
	// Sloppy quorum: a durably parked hint is a promise the write will
	// reach its owner, so it counts toward the write quorum — this is
	// what keeps writes available while a replica is dead.
	if acked+hinted < need {
		rt.stats.quorumFailures.Inc()
		span.Fail("write quorum failed")
		rt.shed(w, span, fmt.Sprintf("write quorum failed: %d acks + %d hints < %d", acked, hinted, need))
		return
	}
	rt.stats.served.Inc()
	w.WriteHeader(http.StatusNoContent)
}

// handleTileDelete makes a delete as durable as a write: instead of
// issuing bare DELETEs (which a dead owner would simply miss), the
// router writes a tombstone marker to every owner. The marker's clock
// dominates every version observable on live owners, so replays of
// erased writes lose to it; dead owners get durable tombstone hints
// parked on a fallback node's disk, so the delete survives even a
// router crash while the owner is down.
func (rt *Router) handleTileDelete(w http.ResponseWriter, r *http.Request, span *obs.Span, key storage.TileKey) {
	rt.stats.writes.Inc()
	owners := rt.ownersFor(key)
	if len(owners) == 0 {
		rt.internalError(w, span, "no owners for key")
		return
	}
	trace := obs.TraceID(r.Context())
	need := rt.writeQuorum()
	if need > len(owners) {
		need = len(owners)
	}

	// Phase 1: observe the highest clock among reachable owners, so the
	// marker is stamped above everything the delete must erase.
	clockCh := make(chan legResult, len(owners))
	probes := 0
	for _, m := range owners {
		if !m.Alive() {
			continue
		}
		leg := span.StartChild("shard.read")
		leg.SetAttr("node", m.node.Name)
		probes++
		go func(m *member, leg *obs.Span) {
			ctx, cancel := rt.legContext(r.Context())
			defer cancel()
			res := rt.shardGet(ctx, trace, leg, m, key)
			if res.errMsg != "" {
				leg.Fail(res.errMsg)
			}
			leg.End()
			clockCh <- res
		}(m, leg)
	}
	var maxClock uint64
	okProbes := 0
	for i := 0; i < probes; i++ {
		res := <-clockCh
		if !res.ok {
			continue
		}
		okProbes++
		if (res.found || res.tomb) && res.clock > maxClock {
			maxClock = res.clock
		}
	}
	// The marker's clock is only trustworthy if a read quorum answered
	// definitively: with fewer, the stamp could land below a version an
	// unreachable owner holds, and the delete would ack 204 yet erase
	// nothing. Shed instead — the client retries when owners recover.
	probeNeed := rt.readQuorum()
	if probeNeed > len(owners) {
		probeNeed = len(owners)
	}
	if okProbes < probeNeed {
		rt.stats.quorumFailures.Inc()
		span.Fail("delete probe quorum failed")
		rt.shed(w, span, fmt.Sprintf("delete probe quorum failed: %d definitive answers from %d probes, need %d",
			okProbes, probes, probeNeed))
		return
	}

	ts := storage.Tombstone{
		Layer: key.Layer, TX: key.TX, TY: key.TY,
		Clock:      maxClock + 1,
		Created:    uint64(time.Now().Unix()),
		TTLSeconds: uint64(rt.cfg.tombstoneTTL() / time.Second),
	}
	// Built once: every owner receives byte-identical marker bytes.
	marker := storage.EncodeTombstone(ts)
	sum := storage.Checksum(marker)

	// Phase 2: replicate the marker exactly like a write, with sloppy
	// quorum and durable hints for unreachable owners.
	type delOutcome struct {
		m   *member
		err error
	}
	results := make(chan delOutcome, len(owners))
	inflight := 0
	var toHint []*member
	for _, m := range owners {
		if !m.Alive() {
			toHint = append(toHint, m)
			continue
		}
		leg := span.StartChild("shard.write")
		leg.SetAttr("node", m.node.Name)
		rt.stats.shardRouted.With(m.node.Name).Inc()
		inflight++
		go func(m *member, leg *obs.Span) {
			ctx, cancel := rt.legContext(r.Context())
			defer cancel()
			err := rt.shardPut(ctx, trace, leg, m, key, marker, sum, "")
			if err != nil {
				leg.Fail(err.Error())
			}
			leg.End()
			results <- delOutcome{m: m, err: err}
		}(m, leg)
	}
	acked := 0
	for i := 0; i < inflight; i++ {
		out := <-results
		if out.err == nil || errors.Is(out.err, errSuperseded) {
			// 409 means a write newer than phase 1 observed landed in
			// between; the delete is ordered before it and erased nothing
			// — still a completed delete under last-writer-wins.
			acked++
		} else {
			toHint = append(toHint, out.m)
		}
	}
	hinted := 0
	for _, m := range toHint {
		h := &hint{Target: m.node.Name, Key: key, Data: marker, Tomb: true, Clock: ts.Clock, Sum: sum}
		if rt.queueHint(r.Context(), trace, span, h, owners) {
			hinted++
		}
	}
	if acked+hinted < need {
		rt.stats.quorumFailures.Inc()
		span.Fail("delete quorum failed")
		rt.shed(w, span, fmt.Sprintf("delete quorum failed: %d acks + %d hints < %d", acked, hinted, need))
		return
	}
	if rt.ledger.record(key, ledgerEntry{Clock: ts.Clock, Created: ts.Created, TTLSeconds: ts.TTLSeconds}) {
		rt.stats.tombstonesWritten.Inc()
	}
	rt.stats.served.Inc()
	w.WriteHeader(http.StatusNoContent)
}

// ---- hinted handoff --------------------------------------------------

// queueHint parks a write its owner missed: indexed in the router's
// bounded buffer, plus (for PUT hints) a durable copy on the first live
// fallback node under a hint-- layer. Returns false when the buffer is
// full — that leg is then simply failed, never silently dropped.
func (rt *Router) queueHint(ctx context.Context, trace string, span *obs.Span, h *hint, owners []*member) bool {
	if h.Data != nil {
		if fb := rt.fallbackFor(h.Key, owners); fb != nil {
			hk := storage.TileKey{Layer: hintLayer(h.Target, h.Key.Layer), TX: h.Key.TX, TY: h.Key.TY}
			leg := span.StartChild("shard.hint")
			leg.SetAttr("node", fb.node.Name)
			leg.SetAttr("target", h.Target)
			legCtx, cancel := rt.legContext(ctx)
			err := rt.shardPut(legCtx, trace, leg, fb, hk, h.Data, h.Sum, "")
			cancel()
			if err != nil {
				leg.Fail(err.Error())
			} else {
				h.Fallback = fb.node.Name
			}
			leg.End()
		}
	}
	switch rt.hints.add(h) {
	case hintAdded:
		rt.stats.hintsQueued.Inc()
	case hintReplaced:
		// The superseded hint will never replay — its write is subsumed
		// by this newer one. Counted so queued == drained + superseded +
		// dropped + pending stays exact.
		rt.stats.hintsQueued.Inc()
		rt.stats.hintsSuperseded.Inc()
	case hintFull:
		rt.stats.hintsDropped.Inc()
		return false
	}
	rt.stats.shardHinted.With(h.Target).Inc()
	return true
}

// startDrainHints replays everything a recovered node missed. One
// drain per target at a time; the probe loop re-triggers if hints
// remain (drain aborted by a re-kill) or arrive later.
func (rt *Router) startDrainHints(m *member) {
	if !m.beginDrain() {
		return
	}
	if !rt.goBG(func() {
		defer m.endDrain()
		rt.drainHints(m)
	}) {
		m.endDrain()
	}
}

func (rt *Router) drainHints(m *member) {
	batch := rt.hints.take(m.node.Name)
	if len(batch) == 0 {
		return
	}
	// Deterministic replay order for debuggability.
	sort.Slice(batch, func(i, j int) bool {
		a, b := batch[i].Key, batch[j].Key
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		if a.TX != b.TX {
			return a.TX < b.TX
		}
		return a.TY < b.TY
	})
	rt.log.Warn("draining hints", "node", m.node.Name, "count", len(batch))
	for i, h := range batch {
		select {
		case <-rt.stop:
			rt.restoreHints(batch[i:])
			return
		default:
		}
		if err := rt.replayHint(m, h); err != nil {
			// Target likely died again: put the rest back and let the
			// next up-transition resume.
			rt.log.Warn("hint replay failed", "node", m.node.Name, "error", err.Error())
			rt.restoreHints(batch[i:])
			return
		}
		rt.stats.hintsDrained.Inc()
		rt.stats.shardDrained.With(m.node.Name).Inc()
	}
	rt.log.Warn("hints drained", "node", m.node.Name, "count", len(batch))
	rt.event(eventlog.TypeHintDrain, m.node.Name, fmt.Sprintf("%d hints replayed", len(batch)), "")
}

// replayHint delivers one parked write to its recovered owner, unless
// the owner already has something fresher (a read-repair or a direct
// write got there first). On success the durable fallback copy is
// deleted best-effort.
func (rt *Router) replayHint(m *member, h *hint) error {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.shardTimeout())
	defer cancel()
	_, span := rt.tracer.StartSpan(ctx, "cluster.handoff")
	span.SetAttr("node", m.node.Name)
	span.SetAttr("layer", h.Key.Layer)
	defer span.End()
	trace := span.TraceID()
	if h.Data == nil {
		// Legacy memory-only delete hint (pre-tombstone); replay as a bare
		// delete since there is no marker to deliver.
		if err := rt.shardDelete(ctx, trace, span, m, h.Key, ""); err != nil {
			span.Fail(err.Error())
			return err
		}
		return nil
	}
	if h.Tomb {
		// Tombstone markers carry their own ordering: the shard accepts,
		// no-ops (older than existing marker), or rejects with 409 (a
		// fresher live tile landed) — all of which complete the hint.
		if err := rt.shardPut(ctx, trace, span, m, h.Key, h.Data, h.Sum, ""); err != nil && !errors.Is(err, errSuperseded) {
			span.Fail(err.Error())
			return err
		}
	} else {
		cur := rt.shardGet(ctx, trace, span, m, h.Key)
		if !cur.ok && !cur.integrity {
			span.Fail(cur.errMsg)
			return errors.New(cur.errMsg)
		}
		if (!cur.found && !cur.tomb) || storage.FresherState(false, h.Clock, h.Data, cur.tomb, cur.clock, cur.data) {
			if err := rt.shardPut(ctx, trace, span, m, h.Key, h.Data, h.Sum, ""); err != nil && !errors.Is(err, errSuperseded) {
				span.Fail(err.Error())
				return err
			}
		}
	}
	if h.Fallback != "" {
		rt.mu.RLock()
		fb := rt.members[h.Fallback]
		rt.mu.RUnlock()
		if fb != nil {
			hk := storage.TileKey{Layer: hintLayer(h.Target, h.Key.Layer), TX: h.Key.TX, TY: h.Key.TY}
			_ = rt.shardDelete(ctx, trace, span, fb, hk, "")
		}
	}
	return nil
}

// restoreHints puts an unfinished drain batch back without recounting
// it as queued; a hint that raced a newer write for the same key is
// dropped as superseded.
func (rt *Router) restoreHints(batch []*hint) {
	for _, h := range batch {
		switch rt.hints.restore(h) {
		case hintAdded:
		case hintReplaced:
			rt.stats.hintsSuperseded.Inc()
		case hintFull:
			rt.stats.hintsDropped.Inc()
		}
	}
}

// recoverDurableHints rebuilds the in-memory hint buffer from payloads
// parked on fallback nodes' disks under hint-- layers. A fresh router
// over the same nodes (crash restart, failover) runs this once on
// Start, so parked writes — and parked deletes — survive the router
// process. Unreachable fallbacks are skipped; the sweeper converges
// whatever recovery misses.
func (rt *Router) recoverDurableHints() {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.shardTimeout()*4)
	defer cancel()
	_, span := rt.tracer.StartSpan(ctx, "cluster.hint_recovery")
	defer span.End()
	trace := span.TraceID()
	recovered := 0
	type entry struct {
		TX int32 `json:"tx"`
		TY int32 `json:"ty"`
	}
	for _, fb := range rt.memberList() {
		if !fb.Alive() {
			continue
		}
		var layers []string
		leg := span.StartChild("shard.layers")
		leg.SetAttr("node", fb.node.Name)
		lctx, lcancel := rt.legContext(ctx)
		err := rt.shardJSON(lctx, trace, leg, fb, "/v1/layers", &layers)
		lcancel()
		if err != nil {
			leg.Fail(err.Error())
		}
		leg.End()
		if err != nil {
			continue
		}
		for _, hl := range layers {
			target, origLayer, ok := parseHintLayer(hl)
			if !ok {
				continue
			}
			var keys []entry
			leg := span.StartChild("shard.list")
			leg.SetAttr("node", fb.node.Name)
			lctx, lcancel := rt.legContext(ctx)
			err := rt.shardJSON(lctx, trace, leg, fb, "/v1/tiles/"+url.PathEscape(hl), &keys)
			lcancel()
			if err != nil {
				leg.Fail(err.Error())
			}
			leg.End()
			if err != nil {
				continue
			}
			for _, e := range keys {
				hk := storage.TileKey{Layer: hl, TX: e.TX, TY: e.TY}
				leg := span.StartChild("shard.read")
				leg.SetAttr("node", fb.node.Name)
				lctx, lcancel := rt.legContext(ctx)
				res := rt.shardGet(lctx, trace, leg, fb, hk)
				lcancel()
				if res.errMsg != "" {
					leg.Fail(res.errMsg)
				}
				leg.End()
				if !res.ok || (!res.found && !res.tomb) {
					continue
				}
				h := &hint{
					Target:   target,
					Fallback: fb.node.Name,
					Key:      storage.TileKey{Layer: origLayer, TX: e.TX, TY: e.TY},
					Data:     res.data,
					Tomb:     res.tomb,
					Clock:    res.clock,
					Sum:      res.sum,
				}
				if rt.hints.restore(h) == hintAdded {
					rt.stats.hintsQueued.Inc()
					rt.stats.hintsRecovered.Inc()
					rt.stats.shardHinted.With(target).Inc()
					recovered++
				}
			}
		}
	}
	if recovered > 0 {
		rt.log.Warn("recovered durable hints", "count", recovered)
	}
}

// ---- merged listings -------------------------------------------------

// handleLayers merges /v1/layers across all live nodes, hiding
// cluster-internal hint layers. One reachable node suffices; zero is a
// shed.
func (rt *Router) handleLayers(w http.ResponseWriter, r *http.Request, span *obs.Span) {
	rt.stats.reads.Inc()
	trace := obs.TraceID(r.Context())
	type layersOut struct {
		layers []string
		err    error
	}
	ms := rt.memberList()
	results := make(chan layersOut, len(ms))
	inflight := 0
	for _, m := range ms {
		if !m.Alive() {
			continue
		}
		leg := span.StartChild("shard.layers")
		leg.SetAttr("node", m.node.Name)
		inflight++
		go func(m *member, leg *obs.Span) {
			ctx, cancel := rt.legContext(r.Context())
			defer cancel()
			var out []string
			err := rt.shardJSON(ctx, trace, leg, m, "/v1/layers", &out)
			if err != nil {
				leg.Fail(err.Error())
			}
			leg.End()
			results <- layersOut{layers: out, err: err}
		}(m, leg)
	}
	seen := map[string]bool{}
	okCount := 0
	for i := 0; i < inflight; i++ {
		res := <-results
		if res.err != nil {
			continue
		}
		okCount++
		for _, l := range res.layers {
			if !storage.IsInternalLayer(l) {
				seen[l] = true
			}
		}
	}
	if okCount == 0 {
		span.Fail("no node answered layers")
		rt.shed(w, span, "no node reachable")
		return
	}
	merged := make([]string, 0, len(seen))
	for l := range seen {
		merged = append(merged, l)
	}
	sort.Strings(merged)
	rt.stats.served.Inc()
	rt.writeJSON(w, merged)
}

// handleList merges a layer's tile listing across all live nodes.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request, span *obs.Span, layer string) {
	rt.stats.reads.Inc()
	if storage.IsInternalLayer(layer) {
		rt.clientError(w, http.StatusNotFound, "not found")
		return
	}
	trace := obs.TraceID(r.Context())
	type entry struct {
		TX int32 `json:"tx"`
		TY int32 `json:"ty"`
	}
	type listOut struct {
		keys []entry
		err  error
	}
	ms := rt.memberList()
	results := make(chan listOut, len(ms))
	inflight := 0
	for _, m := range ms {
		if !m.Alive() {
			continue
		}
		leg := span.StartChild("shard.list")
		leg.SetAttr("node", m.node.Name)
		inflight++
		go func(m *member, leg *obs.Span) {
			ctx, cancel := rt.legContext(r.Context())
			defer cancel()
			var out []entry
			err := rt.shardJSON(ctx, trace, leg, m, "/v1/tiles/"+url.PathEscape(layer), &out)
			if err != nil {
				leg.Fail(err.Error())
			}
			leg.End()
			results <- listOut{keys: out, err: err}
		}(m, leg)
	}
	seen := map[entry]bool{}
	okCount := 0
	for i := 0; i < inflight; i++ {
		res := <-results
		if res.err != nil {
			continue
		}
		okCount++
		for _, e := range res.keys {
			seen[e] = true
		}
	}
	if okCount == 0 {
		span.Fail("no node answered list")
		rt.shed(w, span, "no node reachable")
		return
	}
	merged := make([]entry, 0, len(seen))
	for e := range seen {
		merged = append(merged, e)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].TX != merged[j].TX {
			return merged[i].TX < merged[j].TX
		}
		return merged[i].TY < merged[j].TY
	})
	rt.stats.served.Inc()
	rt.writeJSON(w, merged)
}

// shardJSON fetches one node's JSON metadata endpoint.
func (rt *Router) shardJSON(ctx context.Context, trace string, leg *obs.Span, m *member, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.node.Base+path, nil)
	if err != nil {
		return err
	}
	legHeaders(req, trace, leg)
	resp, err := rt.httpc.Do(req)
	if err != nil {
		rt.noteFailure(m, err.Error())
		rt.stats.shardErrors.With(m.node.Name).Inc()
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		rt.stats.shardErrors.With(m.node.Name).Inc()
		return errors.New("status " + resp.Status)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, rt.cfg.maxTileBytes())).Decode(v)
}
