package cluster

import "hdmaps/internal/obs"

// stats is the router's accounting, backed by the router's obs
// registry so /statz and /metricz read the same atomic cells. The
// invariant the cluster soak enforces: every proxied request is
// counted in Routed and leaves through exactly one of Served, Shed, or
// Errored.
type stats struct {
	routed  *obs.Counter
	served  *obs.Counter
	shed    *obs.Counter
	errored *obs.Counter

	reads  *obs.Counter
	writes *obs.Counter

	quorumFailures    *obs.Counter
	integrityFailures *obs.Counter
	staleReads        *obs.Counter

	repairsScheduled *obs.Counter
	repairsDone      *obs.Counter
	repairsSkipped   *obs.Counter
	repairsDropped   *obs.Counter

	hintsQueued     *obs.Counter
	hintsDrained    *obs.Counter
	hintsSuperseded *obs.Counter
	hintsDropped    *obs.Counter
	hintsRecovered  *obs.Counter

	tombstonesWritten   *obs.Counter
	tombstonesReclaimed *obs.Counter

	aeRounds          *obs.Counter
	aeRangesDiffed    *obs.Counter
	aeRangeMismatches *obs.Counter
	aeKeysSynced      *obs.Counter
	aeRepairsDone     *obs.Counter
	aeRepairsSkipped  *obs.Counter

	// Per-shard families, labelled by node name (an enumerated domain:
	// the membership list fixed at construction, so cardinality is
	// bounded by construction; unknown nodes collapse into "other").
	shardRouted  *obs.CounterVec
	shardErrors  *obs.CounterVec
	shardRepairs *obs.CounterVec
	shardHinted  *obs.CounterVec
	shardDrained *obs.CounterVec
}

func newStats(reg *obs.Registry, nodeNames []string) *stats {
	return &stats{
		routed:  reg.Counter("cluster.router.routed"),
		served:  reg.Counter("cluster.router.served"),
		shed:    reg.Counter("cluster.router.shed"),
		errored: reg.Counter("cluster.router.errored"),

		reads:  reg.Counter("cluster.router.reads"),
		writes: reg.Counter("cluster.router.writes"),

		quorumFailures:    reg.Counter("cluster.read.quorum_failures"),
		integrityFailures: reg.Counter("cluster.read.integrity_failures"),
		staleReads:        reg.Counter("cluster.read.stale_replicas"),

		repairsScheduled: reg.Counter("cluster.repair.scheduled"),
		repairsDone:      reg.Counter("cluster.repair.done"),
		repairsSkipped:   reg.Counter("cluster.repair.skipped"),
		repairsDropped:   reg.Counter("cluster.repair.dropped"),

		hintsQueued:     reg.Counter("cluster.hint.queued"),
		hintsDrained:    reg.Counter("cluster.hint.drained"),
		hintsSuperseded: reg.Counter("cluster.hint.superseded"),
		hintsDropped:    reg.Counter("cluster.hint.dropped"),
		hintsRecovered:  reg.Counter("cluster.hint.recovered"),

		tombstonesWritten:   reg.Counter("cluster.tombstone.written"),
		tombstonesReclaimed: reg.Counter("cluster.tombstone.reclaimed"),

		aeRounds:          reg.Counter("cluster.antientropy.rounds"),
		aeRangesDiffed:    reg.Counter("cluster.antientropy.ranges_diffed"),
		aeRangeMismatches: reg.Counter("cluster.antientropy.range_mismatches"),
		aeKeysSynced:      reg.Counter("cluster.antientropy.keys_synced"),
		aeRepairsDone:     reg.Counter("cluster.antientropy.repairs_done"),
		aeRepairsSkipped:  reg.Counter("cluster.antientropy.repairs_skipped"),

		shardRouted:  reg.CounterVec("cluster.shard.routed", nodeNames),
		shardErrors:  reg.CounterVec("cluster.shard.errors", nodeNames),
		shardRepairs: reg.CounterVec("cluster.shard.repaired", nodeNames),
		shardHinted:  reg.CounterVec("cluster.shard.hinted", nodeNames),
		shardDrained: reg.CounterVec("cluster.shard.handoff_drained", nodeNames),
	}
}

// StatsSnapshot is one consistent-enough read of the router counters —
// what /statz serves. The accounting invariant Routed == Served +
// Shed + Errored holds exactly at quiescence.
type StatsSnapshot struct {
	// Routed counts every proxied /v1 request entering the router
	// (meta endpoints excluded).
	Routed uint64 `json:"routed"`
	// Served counts requests answered definitively: tile bytes, a
	// merged listing, a 404, or a client-error rejection.
	Served uint64 `json:"served"`
	// Shed counts requests refused for lack of quorum (503 +
	// Retry-After): too few live replicas answered in time.
	Shed uint64 `json:"shed"`
	// Errored counts requests that failed inside the router.
	Errored uint64 `json:"errored"`
	// Reads / Writes split Routed by direction (GETs vs PUT/DELETE).
	Reads  uint64 `json:"reads"`
	Writes uint64 `json:"writes"`
	// QuorumFailures counts reads that could not assemble a read
	// quorum (the Shed reads).
	QuorumFailures uint64 `json:"quorum_failures"`
	// IntegrityFailures counts replica responses rejected for checksum
	// mismatch or an unreadable tile header.
	IntegrityFailures uint64 `json:"integrity_failures"`
	// StaleReplicas counts replica responses observed older than the
	// quorum winner — each schedules a read-repair.
	StaleReplicas uint64 `json:"stale_replicas"`
	// RepairsScheduled/Done/Skipped/Dropped account the read-repair
	// queue: scheduled == done + skipped once quiescent, dropped
	// counts repairs refused because the queue was full.
	RepairsScheduled uint64 `json:"repairs_scheduled"`
	RepairsDone      uint64 `json:"repairs_done"`
	RepairsSkipped   uint64 `json:"repairs_skipped"`
	RepairsDropped   uint64 `json:"repairs_dropped"`
	// HintsQueued/Drained/Superseded/Dropped account hinted handoff:
	// queued == drained + superseded + dropped + pending at all times
	// (superseded hints were overwritten by a newer write for the same
	// target and key before replay), so once every dead owner has
	// recovered and replayed, pending == 0 and the books balance.
	HintsQueued     uint64 `json:"hints_queued"`
	HintsDrained    uint64 `json:"hints_drained"`
	HintsSuperseded uint64 `json:"hints_superseded"`
	HintsDropped    uint64 `json:"hints_dropped"`
	// HintsRecovered counts hints rebuilt from durable parked copies by
	// a restarted router (each is also counted in HintsQueued, so the
	// hint ledger stays balanced across a crash).
	HintsRecovered uint64 `json:"hints_recovered"`
	// HintsPending is the live count of unreplayed hints.
	HintsPending int `json:"hints_pending"`
	// TombstonesWritten/Reclaimed/Pending account the delete ledger:
	// written == reclaimed + pending (set-cardinality semantics — a key
	// deleted twice before GC counts once).
	TombstonesWritten   uint64 `json:"tombstones_written"`
	TombstonesReclaimed uint64 `json:"tombstones_reclaimed"`
	TombstonesPending   int    `json:"tombstones_pending"`
	// Anti-entropy sweep accounting: Rounds completed; RangesDiffed
	// digest buckets compared; RangeMismatches buckets whose leaf tuples
	// had to be fetched; KeysSynced divergent keys reconciled inline by
	// the sweep; AERepairsDone/Skipped the per-replica outcomes (skipped
	// = the conditional write lost a race to a concurrent fresher write,
	// the target was unreachable, or the divergence had already healed).
	AERounds          uint64 `json:"antientropy_rounds"`
	AERangesDiffed    uint64 `json:"antientropy_ranges_diffed"`
	AERangeMismatches uint64 `json:"antientropy_range_mismatches"`
	AEKeysSynced      uint64 `json:"antientropy_keys_synced"`
	AERepairsDone     uint64 `json:"antientropy_repairs_done"`
	AERepairsSkipped  uint64 `json:"antientropy_repairs_skipped"`
	// Draining reports whether the router has begun graceful drain.
	Draining bool `json:"draining"`
}

func (s *stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Routed:            s.routed.Value(),
		Served:            s.served.Value(),
		Shed:              s.shed.Value(),
		Errored:           s.errored.Value(),
		Reads:             s.reads.Value(),
		Writes:            s.writes.Value(),
		QuorumFailures:    s.quorumFailures.Value(),
		IntegrityFailures: s.integrityFailures.Value(),
		StaleReplicas:     s.staleReads.Value(),
		RepairsScheduled:  s.repairsScheduled.Value(),
		RepairsDone:       s.repairsDone.Value(),
		RepairsSkipped:    s.repairsSkipped.Value(),
		RepairsDropped:    s.repairsDropped.Value(),
		HintsQueued:       s.hintsQueued.Value(),
		HintsDrained:      s.hintsDrained.Value(),
		HintsSuperseded:   s.hintsSuperseded.Value(),
		HintsDropped:      s.hintsDropped.Value(),
		HintsRecovered:    s.hintsRecovered.Value(),

		TombstonesWritten:   s.tombstonesWritten.Value(),
		TombstonesReclaimed: s.tombstonesReclaimed.Value(),

		AERounds:          s.aeRounds.Value(),
		AERangesDiffed:    s.aeRangesDiffed.Value(),
		AERangeMismatches: s.aeRangeMismatches.Value(),
		AEKeysSynced:      s.aeKeysSynced.Value(),
		AERepairsDone:     s.aeRepairsDone.Value(),
		AERepairsSkipped:  s.aeRepairsSkipped.Value(),
	}
}
