package cluster

import (
	"fmt"
	"reflect"
	"testing"

	"hdmaps/internal/storage"
)

func testKeys(n int) []storage.TileKey {
	layers := []string{"base", "crowd_signs", "lidar"}
	out := make([]storage.TileKey, 0, n)
	for i := 0; len(out) < n; i++ {
		out = append(out, storage.TileKey{
			Layer: layers[i%len(layers)],
			TX:    int32(i % 97),
			TY:    int32(i / 97),
		})
	}
	return out
}

func nodeNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node%d", i)
	}
	return out
}

// The ring must be a pure function of membership: two rings built from
// the same nodes (in any order) route every key identically. A router
// restart or a peer building its own ring must agree on ownership.
func TestRingDeterministic(t *testing.T) {
	nodes := nodeNames(7)
	a := NewRing(nodes, 0)
	reversed := make([]string, len(nodes))
	for i, n := range nodes {
		reversed[len(nodes)-1-i] = n
	}
	b := NewRing(reversed, 0)
	for _, key := range testKeys(2000) {
		oa := a.Owners(key, 3)
		ob := b.Owners(key, 3)
		if !reflect.DeepEqual(oa, ob) {
			t.Fatalf("owner disagreement for %v: %v vs %v", key, oa, ob)
		}
	}
}

// Owners must return n distinct nodes with a stable primary.
func TestRingOwnersDistinct(t *testing.T) {
	r := NewRing(nodeNames(5), 0)
	for _, key := range testKeys(500) {
		owners := r.Owners(key, 3)
		if len(owners) != 3 {
			t.Fatalf("want 3 owners, got %v", owners)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate owner %q in %v", o, owners)
			}
			seen[o] = true
		}
	}
	// Asking for more replicas than members returns all members.
	if got := r.Owners(storage.TileKey{Layer: "base"}, 9); len(got) != 5 {
		t.Fatalf("overask: want all 5 members, got %v", got)
	}
}

// Primary-ownership load must stay balanced across nodes: with
// DefaultVNodes virtual nodes, no node should own more than ~2x or
// less than ~1/2 of the fair share of a large keyset.
func TestRingBalance(t *testing.T) {
	const nodes, keys = 8, 20000
	r := NewRing(nodeNames(nodes), 0)
	counts := map[string]int{}
	for _, key := range testKeys(keys) {
		counts[r.Owners(key, 1)[0]]++
	}
	fair := float64(keys) / float64(nodes)
	for node, c := range counts {
		ratio := float64(c) / fair
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("node %s owns %d keys (%.2fx fair share %v)", node, c, ratio, fair)
		}
	}
	if len(counts) != nodes {
		t.Errorf("only %d/%d nodes own any keys", len(counts), nodes)
	}
}

// Adding one node must move only ~K/N of the primary assignments —
// the whole point of consistent hashing. A naive mod-N hash would move
// ~(N-1)/N of them.
func TestRingJoinBoundedMovement(t *testing.T) {
	const keys = 20000
	base := NewRing(nodeNames(8), 0)
	grown := base.WithNode("node8")
	moved := 0
	for _, key := range testKeys(keys) {
		if base.Owners(key, 1)[0] != grown.Owners(key, 1)[0] {
			moved++
		}
	}
	// Fair share for the 9th node is 1/9 ≈ 11%; allow 2x for vnode
	// placement variance.
	if frac := float64(moved) / keys; frac > 2.0/9.0 {
		t.Errorf("join moved %.1f%% of keys, want <= %.1f%%", frac*100, 100*2.0/9.0)
	}
	// Every moved key must have moved TO the new node, never between
	// old nodes.
	for _, key := range testKeys(keys) {
		o, n := base.Owners(key, 1)[0], grown.Owners(key, 1)[0]
		if o != n && n != "node8" {
			t.Fatalf("key %v moved %s -> %s, not to the joining node", key, o, n)
		}
	}
}

// Removing a node must relocate exactly the keys it owned: every other
// key keeps its primary.
func TestRingLeaveExactMovement(t *testing.T) {
	const keys = 20000
	base := NewRing(nodeNames(8), 0)
	shrunk := base.WithoutNode("node3")
	for _, key := range testKeys(keys) {
		o := base.Owners(key, 1)[0]
		n := shrunk.Owners(key, 1)[0]
		if o == "node3" {
			if n == "node3" {
				t.Fatalf("key %v still owned by removed node", key)
			}
		} else if o != n {
			t.Fatalf("key %v moved %s -> %s though its owner stayed", key, o, n)
		}
	}
}

// WithNode / WithoutNode must not mutate the receiver, and a
// join+leave round trip must restore the original routing.
func TestRingImmutableRoundTrip(t *testing.T) {
	base := NewRing(nodeNames(5), 0)
	before := map[string]string{}
	ks := testKeys(1000)
	for _, key := range ks {
		before[key.Layer+fmt.Sprint(key.TX, key.TY)] = base.Owners(key, 1)[0]
	}
	rt := base.WithNode("extra").WithoutNode("extra")
	for _, key := range ks {
		if got := base.Owners(key, 1)[0]; got != before[key.Layer+fmt.Sprint(key.TX, key.TY)] {
			t.Fatalf("receiver mutated: key %v now %s", key, got)
		}
		if got := rt.Owners(key, 1)[0]; got != before[key.Layer+fmt.Sprint(key.TX, key.TY)] {
			t.Fatalf("round trip changed routing for %v: %s", key, got)
		}
	}
	if base.Len() != 5 || len(base.Nodes()) != 5 {
		t.Fatalf("receiver membership mutated: %v", base.Nodes())
	}
}

// Replica sets (not just primaries) must also move boundedly on join:
// a key's owner set changes by at most one node when one node joins.
func TestRingJoinReplicaSetStability(t *testing.T) {
	base := NewRing(nodeNames(8), 0)
	grown := base.WithNode("node8")
	for _, key := range testKeys(5000) {
		o := base.Owners(key, 3)
		n := grown.Owners(key, 3)
		om := map[string]bool{}
		for _, x := range o {
			om[x] = true
		}
		lost := 0
		for _, x := range n {
			if !om[x] {
				lost++
			}
		}
		if lost > 1 {
			t.Fatalf("key %v owner set changed by %d nodes on single join: %v -> %v", key, lost, o, n)
		}
	}
}

func TestHintLayerNames(t *testing.T) {
	hl := hintLayer("node2", "base")
	if hl != "hint--node2--base" {
		t.Fatalf("hintLayer: %q", hl)
	}
	target, layer, ok := parseHintLayer(hl)
	if !ok || target != "node2" || layer != "base" {
		t.Fatalf("parseHintLayer(%q) = %q %q %v", hl, target, layer, ok)
	}
	if !isHintLayer(hl) {
		t.Fatal("isHintLayer false for hint layer")
	}
	for _, plain := range []string{"base", "hint--", "hint--x", "hint--x--", "hintx--y--z"} {
		if isHintLayer(plain) {
			t.Fatalf("isHintLayer(%q) = true", plain)
		}
	}
	// Layer names containing the separator still round-trip on target
	// (the first separator wins).
	target, layer, ok = parseHintLayer(hintLayer("n1", "weird--layer"))
	if !ok || target != "n1" || layer != "weird--layer" {
		t.Fatalf("nested separator: %q %q %v", target, layer, ok)
	}
}
