package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"

	"hdmaps/internal/obs/eventlog"
)

// member is the router's view of one node: its identity plus the
// failure detector's state. A node is marked down after FailAfter
// consecutive strikes (failed probes or in-band transport errors) and
// up again on the first successful probe — the up transition is what
// triggers hinted-handoff drain.
type member struct {
	node Node

	mu        sync.Mutex
	alive     bool
	strikes   int
	lastErr   string
	lastProbe time.Time
	// draining guards against overlapping hint drains for this target.
	draining bool
}

// Alive reports whether the failure detector currently believes the
// node is reachable.
func (m *member) Alive() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.alive
}

// strike records one failure; after threshold consecutive strikes the
// node is marked down. Returns true on the down transition.
func (m *member) strike(threshold int, errMsg string) (wentDown bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.strikes++
	m.lastErr = errMsg
	if m.alive && m.strikes >= threshold {
		m.alive = false
		return true
	}
	return false
}

// markUp clears the strike count; returns true on the up transition.
func (m *member) markUp() (wentUp bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.strikes = 0
	m.lastErr = ""
	if !m.alive {
		m.alive = true
		return true
	}
	return false
}

// beginDrain claims the drain slot for this target; false when a drain
// is already running.
func (m *member) beginDrain() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return false
	}
	m.draining = true
	return true
}

func (m *member) endDrain() {
	m.mu.Lock()
	m.draining = false
	m.mu.Unlock()
}

// MemberStatus is one node's health as reported on /clusterz.
type MemberStatus struct {
	Name      string    `json:"name"`
	Base      string    `json:"base"`
	Alive     bool      `json:"alive"`
	Strikes   int       `json:"strikes"`
	LastError string    `json:"last_error,omitempty"`
	LastProbe time.Time `json:"last_probe,omitempty"`
}

func (m *member) status() MemberStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemberStatus{
		Name:      m.node.Name,
		Base:      m.node.Base,
		Alive:     m.alive,
		Strikes:   m.strikes,
		LastError: m.lastErr,
		LastProbe: m.lastProbe,
	}
}

// probe checks one node's /healthz. It feeds the same strike/markUp
// state machine as in-band failures, so a node that answers probes but
// refuses traffic still goes down after FailAfter in-band strikes.
func (rt *Router) probe(m *member) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.probeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.node.Base+"/healthz", nil)
	if err != nil {
		rt.noteFailure(m, err.Error())
		return
	}
	resp, err := rt.httpc.Do(req)
	m.mu.Lock()
	m.lastProbe = time.Now()
	m.mu.Unlock()
	if err != nil {
		rt.noteFailure(m, err.Error())
		return
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		rt.noteFailure(m, "healthz "+resp.Status)
		return
	}
	rt.noteSuccess(m)
}

// probeLoop is the router's failure detector: every ProbeInterval it
// probes all members concurrently, and re-triggers hint drain for any
// live node that still has parked writes (a drain interrupted by a
// flap resumes here).
func (rt *Router) probeLoop() {
	defer rt.bg.Done()
	t := time.NewTicker(rt.cfg.probeInterval())
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
		}
		ms := rt.memberList()
		var wg sync.WaitGroup
		for _, m := range ms {
			wg.Add(1)
			go func(m *member) {
				defer wg.Done()
				rt.probe(m)
			}(m)
		}
		wg.Wait()
		for _, m := range ms {
			if m.Alive() && rt.hints.pendingFor(m.node.Name) > 0 {
				rt.startDrainHints(m)
			}
		}
	}
}

// noteFailure records an in-band or probe failure against a node.
func (rt *Router) noteFailure(m *member, errMsg string) {
	if m.strike(rt.cfg.failAfter(), errMsg) {
		rt.log.Warn("node down", "node", m.node.Name, "error", errMsg)
		rt.event(eventlog.TypeNodeDead, m.node.Name, errMsg, "")
	}
}

// noteSuccess records a successful probe; an up transition kicks off
// hinted-handoff drain for everything the node missed while dead.
func (rt *Router) noteSuccess(m *member) {
	if m.markUp() {
		rt.log.Warn("node up", "node", m.node.Name)
		rt.event(eventlog.TypeNodeRevived, m.node.Name, "", "")
		rt.startDrainHints(m)
	}
}
