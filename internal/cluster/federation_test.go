package cluster

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hdmaps/internal/obs"
	"hdmaps/internal/obs/slo"
)

// fakeMetricsNode is a shard stand-in serving a mutable /metricz
// snapshot. Setting truncate makes the next scrapes return a half-
// written body — a node dying between accept and flush.
type fakeMetricsNode struct {
	mu       sync.Mutex
	snap     obs.RegistrySnapshot
	truncate bool
	scrapes  int
}

func (f *fakeMetricsNode) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch r.URL.Path {
	case "/metricz":
		f.scrapes++
		if f.truncate {
			_, _ = w.Write([]byte(`{"counters":{"resilience.http.submitted":`))
			return
		}
		_ = json.NewEncoder(w).Encode(f.snap)
	case "/healthz":
		w.WriteHeader(http.StatusOK)
	default:
		http.NotFound(w, r)
	}
}

func (f *fakeMetricsNode) setCounter(name string, v uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.snap.Counters == nil {
		f.snap.Counters = map[string]uint64{}
	}
	f.snap.Counters[name] = v
}

func (f *fakeMetricsNode) setHistP99(name string, count uint64, p99 float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.snap.Histograms == nil {
		f.snap.Histograms = map[string]obs.HistogramSnapshot{}
	}
	f.snap.Histograms[name] = obs.HistogramSnapshot{Count: count, P99: p99}
}

func (f *fakeMetricsNode) setTruncate(v bool) {
	f.mu.Lock()
	f.truncate = v
	f.mu.Unlock()
}

// fedRouter builds an unstarted router over n fake metric nodes so
// tests drive scrape rounds deterministically via scrapeRound.
func fedRouter(t *testing.T, n int, cfg Config) (*Router, []*fakeMetricsNode) {
	t.Helper()
	fakes := make([]*fakeMetricsNode, n)
	for i := range fakes {
		fakes[i] = &fakeMetricsNode{}
		srv := httptest.NewServer(fakes[i])
		t.Cleanup(srv.Close)
		cfg.Nodes = append(cfg.Nodes, Node{Name: fmt.Sprintf("n%d", i+1), Base: srv.URL})
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	if rt.fleet == nil {
		t.Fatal("observability plane not built")
	}
	return rt, fakes
}

func lastOf(t *testing.T, fn *fleetNode, name string) float64 {
	t.Helper()
	v, ok := fn.store.Last(name)
	if !ok {
		t.Fatalf("series %s: no valid sample", name)
	}
	return v
}

func TestFederationScrapeRates(t *testing.T) {
	rt, fakes := fedRouter(t, 2, Config{})
	t0 := time.Unix(100000, 0)

	fakes[0].setCounter("resilience.http.submitted", 100)
	fakes[1].setCounter("resilience.http.submitted", 40)
	rt.fleet.scrapeRound(t0)

	// First sight is a baseline: no uptime replayed as a spike.
	fn1 := rt.fleet.nodeFor("n1")
	if got := lastOf(t, fn1, "resilience.http.submitted"); got != 0 {
		t.Fatalf("baseline rate = %v, want 0", got)
	}

	fakes[0].setCounter("resilience.http.submitted", 150)
	fakes[1].setCounter("resilience.http.submitted", 45)
	rt.fleet.scrapeRound(t0.Add(time.Second))
	if got := lastOf(t, fn1, "resilience.http.submitted"); math.Abs(got-50) > 1e-9 {
		t.Fatalf("n1 rate = %v, want 50/s", got)
	}
	fn2 := rt.fleet.nodeFor("n2")
	if got := lastOf(t, fn2, "resilience.http.submitted"); math.Abs(got-5) > 1e-9 {
		t.Fatalf("n2 rate = %v, want 5/s", got)
	}
	fn1.mu.Lock()
	defer fn1.mu.Unlock()
	if fn1.stale || fn1.scrapes != 2 || fn1.failures != 0 {
		t.Fatalf("n1 state: stale=%v scrapes=%d failures=%d", fn1.stale, fn1.scrapes, fn1.failures)
	}
}

func TestFederationDiesMidScrapeNoPartialMerge(t *testing.T) {
	rt, fakes := fedRouter(t, 1, Config{})
	t0 := time.Unix(100000, 0)
	fn := rt.fleet.nodeFor("n1")

	fakes[0].setCounter("resilience.http.submitted", 100)
	rt.fleet.scrapeRound(t0)
	fakes[0].setCounter("resilience.http.submitted", 130)
	rt.fleet.scrapeRound(t0.Add(time.Second))
	ticksBefore := fn.store.Ticks()
	rateBefore := lastOf(t, fn, "resilience.http.submitted")

	// The node now dies mid-body: the scrape decodes to an error and the
	// round must commit nothing for this node.
	fakes[0].setTruncate(true)
	rt.fleet.scrapeRound(t0.Add(2 * time.Second))

	if got := fn.store.Ticks(); got != ticksBefore {
		t.Fatalf("store ticked on a failed scrape: %d -> %d", ticksBefore, got)
	}
	if got := lastOf(t, fn, "resilience.http.submitted"); got != rateBefore {
		t.Fatalf("partial merge leaked: rate %v, want last committed %v", got, rateBefore)
	}
	fn.mu.Lock()
	stale, lastErr, failures := fn.stale, fn.lastErr, fn.failures
	fn.mu.Unlock()
	if !stale || failures != 1 || lastErr == "" {
		t.Fatalf("failed scrape: stale=%v failures=%d lastErr=%q", stale, failures, lastErr)
	}

	// And the /fleetz document says so explicitly.
	doc := rt.FleetStatus(0)
	var ns *FleetNodeStatus
	for i := range doc.Nodes {
		if doc.Nodes[i].Name == "n1" {
			ns = &doc.Nodes[i]
		}
	}
	if ns == nil || !ns.Stale || ns.LastError == "" {
		t.Fatalf("fleetz node: %+v, want stale with error", ns)
	}
}

func TestFederationDeadNodeSkippedNotScraped(t *testing.T) {
	rt, fakes := fedRouter(t, 1, Config{})
	t0 := time.Unix(100000, 0)
	fakes[0].setCounter("resilience.http.submitted", 10)
	rt.fleet.scrapeRound(t0)

	// The failure detector condemns the node: federation must not burn a
	// scrape timeout on the corpse.
	rt.mu.RLock()
	m := rt.members["n1"]
	rt.mu.RUnlock()
	m.mu.Lock()
	m.alive = false
	m.mu.Unlock()

	fakes[0].mu.Lock()
	scrapesBefore := fakes[0].scrapes
	fakes[0].mu.Unlock()
	rt.fleet.scrapeRound(t0.Add(time.Second))
	fakes[0].mu.Lock()
	scrapesAfter := fakes[0].scrapes
	fakes[0].mu.Unlock()
	if scrapesAfter != scrapesBefore {
		t.Fatalf("dead node was scraped anyway (%d -> %d)", scrapesBefore, scrapesAfter)
	}
	fn := rt.fleet.nodeFor("n1")
	fn.mu.Lock()
	defer fn.mu.Unlock()
	if !fn.stale || fn.lastErr != "node down" {
		t.Fatalf("dead node state: stale=%v lastErr=%q", fn.stale, fn.lastErr)
	}
}

func TestFederationReviveSameNameNoDoubleCount(t *testing.T) {
	rt, fakes := fedRouter(t, 1, Config{})
	t0 := time.Unix(100000, 0)
	fn := rt.fleet.nodeFor("n1")

	fakes[0].setCounter("resilience.http.submitted", 100)
	rt.fleet.scrapeRound(t0)
	fakes[0].setCounter("resilience.http.submitted", 150)
	rt.fleet.scrapeRound(t0.Add(time.Second))
	if got := lastOf(t, fn, "resilience.http.submitted"); math.Abs(got-50) > 1e-9 {
		t.Fatalf("pre-restart rate = %v, want 50/s", got)
	}

	// Restart under the same name: totals drop to the post-boot value.
	// The delta clamps to the new total — the ring continues, and the
	// 150 requests already federated are not re-counted.
	fakes[0].setCounter("resilience.http.submitted", 30)
	rt.fleet.scrapeRound(t0.Add(2 * time.Second))
	if got := lastOf(t, fn, "resilience.http.submitted"); math.Abs(got-30) > 1e-9 {
		t.Fatalf("post-restart rate = %v, want clamp to 30/s", got)
	}
	if got := fn.store.Ticks(); got != 3 {
		t.Fatalf("ticks = %d, want a continuous ring of 3", got)
	}
	fn.mu.Lock()
	defer fn.mu.Unlock()
	if fn.stale {
		t.Fatal("revived node still marked stale")
	}
}

func TestFederationCardinalityOverflow(t *testing.T) {
	rt, fakes := fedRouter(t, 3, Config{MaxFleetNodes: 1})
	t0 := time.Unix(100000, 0)

	for i, f := range fakes {
		f.setCounter("resilience.http.submitted", uint64(100*(i+1)))
		f.setHistP99("resilience.http.latency_seconds", 10, float64(i+1)*0.1)
	}
	rt.fleet.scrapeRound(t0)
	for i, f := range fakes {
		f.setCounter("resilience.http.submitted", uint64(100*(i+1))+uint64(10*(i+1)))
		f.setHistP99("resilience.http.latency_seconds", 20, float64(i+1)*0.1)
	}
	rt.fleet.scrapeRound(t0.Add(time.Second))

	// n1 owns a store; n2 and n3 collapsed into the shared reserved
	// series: rates sum (20+30), quantiles keep the fleet-worst (0.3).
	fn2, fn3 := rt.fleet.nodeFor("n2"), rt.fleet.nodeFor("n3")
	if !fn2.shared || !fn3.shared {
		t.Fatalf("overflow members not shared: n2=%v n3=%v", fn2.shared, fn3.shared)
	}
	if fn2.store != fn3.store {
		t.Fatal("overflow members hold different stores")
	}
	if rt.fleet.nodeFor("n1").shared {
		t.Fatal("first member should own its store")
	}
	if got := lastOf(t, fn2, "resilience.http.submitted"); math.Abs(got-50) > 1e-9 {
		t.Fatalf("shared rate = %v, want 20+30", got)
	}
	if got := lastOf(t, fn2, "resilience.http.latency_seconds.p99"); math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("shared p99 = %v, want fleet-worst 0.3", got)
	}
	// The shared store ticks once per round, not once per member.
	if got := fn2.store.Ticks(); got != 2 {
		t.Fatalf("shared ticks = %d, want 2", got)
	}

	doc := rt.FleetStatus(0)
	byName := map[string]FleetNodeStatus{}
	for _, ns := range doc.Nodes {
		byName[ns.Name] = ns
	}
	if ns := byName["n2"]; ns.Role != "overflow" || ns.CollapsedInto != fleetOtherNode {
		t.Fatalf("n2 fleetz entry: %+v", ns)
	}
	other, ok := byName[fleetOtherNode]
	if !ok {
		t.Fatalf("no %q pseudo-node in fleetz: %+v", fleetOtherNode, doc.Nodes)
	}
	if math.Abs(other.Summary.QPS-50) > 1e-9 {
		t.Fatalf("other QPS = %v, want summed 50", other.Summary.QPS)
	}
	if len(other.Series) == 0 {
		t.Fatal("other pseudo-node carries no series")
	}
}

func TestFleetzAlertzEndpoints(t *testing.T) {
	rt, fakes := fedRouter(t, 1, Config{})
	fakes[0].setCounter("resilience.http.submitted", 5)
	rt.ObserveNow(time.Unix(100000, 0))
	rt.ObserveNow(time.Unix(100001, 0))

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("GET", "/fleetz?points=5", nil))
	if rec.Code != 200 {
		t.Fatalf("fleetz status %d: %s", rec.Code, rec.Body.String())
	}
	var doc FleetStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Nodes) != 2 || doc.Nodes[0].Role != "router" || doc.Nodes[1].Name != "n1" {
		t.Fatalf("fleetz nodes: %+v", doc.Nodes)
	}
	if doc.Nodes[0].Scrapes != 2 {
		t.Fatalf("router samples = %d, want 2", doc.Nodes[0].Scrapes)
	}
	found := false
	for _, ss := range doc.Nodes[0].Series {
		if ss.Name == "cluster.router.routed" {
			found = true
		}
	}
	if !found {
		t.Fatal("router series missing cluster.router.routed")
	}

	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("GET", "/alertz", nil))
	if rec.Code != 200 {
		t.Fatalf("alertz status %d", rec.Code)
	}
	var alerts slo.Status
	if err := json.Unmarshal(rec.Body.Bytes(), &alerts); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, a := range alerts.Alerts {
		names[a.Name] = true
	}
	for _, want := range []string{"slo.read.availability", "slo.read.latency_p99", "slo.read.quorum", "slo.ingest.gate_pass", "slo.sweep.cadence"} {
		if !names[want] {
			t.Fatalf("shipped objective %s missing from alertz: %v", want, names)
		}
	}

	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("GET", "/fleetz?points=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("bad points: status %d, want 400", rec.Code)
	}
}

func TestObservabilityPlaneDisabled(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	rt, err := NewRouter(Config{
		Nodes:          []Node{{Name: "n1", Base: srv.URL}},
		SampleInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.sampler != nil || rt.fleet != nil || rt.sloEng != nil {
		t.Fatal("negative SampleInterval should disable the plane")
	}
	for _, path := range []string{"/fleetz", "/alertz"} {
		rec := httptest.NewRecorder()
		rt.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 404 {
			t.Fatalf("%s: status %d, want 404 when disabled", path, rec.Code)
		}
	}
	if rt.FleetStatus(0) != nil || rt.SLOAlerts() != nil {
		t.Fatal("disabled plane should report nil status")
	}
}

// TestSLOAlertLifecycle drives the router's own serving loop through a
// fault: healthy traffic holds ok, killing every shard sheds reads
// until the availability SLO goes critical (with a resolvable exemplar
// trace), and reviving the shards clears it.
func TestSLOAlertLifecycle(t *testing.T) {
	rt, _ := fedRouter(t, 3, Config{
		SampleInterval: time.Second, // driven manually via ObserveNow
		SLOFastWindow:  5 * time.Second,
		SLOSlowWindow:  20 * time.Second,
	})
	now := time.Unix(200000, 0)
	get := func() int {
		rec := httptest.NewRecorder()
		rt.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/tiles/lanes/1/2", nil))
		return rec.Code
	}
	alertFor := func(name string) slo.Alert {
		for _, a := range rt.SLOAlerts() {
			if a.Name == name {
				return a
			}
		}
		t.Fatalf("no alert %s", name)
		return slo.Alert{}
	}

	// Healthy: the fakes 404 every tile read — an authoritative miss is
	// a served answer, not an error.
	for i := 0; i < 25; i++ {
		for j := 0; j < 4; j++ {
			if code := get(); code != 404 {
				t.Fatalf("healthy read: status %d, want 404", code)
			}
		}
		now = now.Add(time.Second)
		rt.ObserveNow(now)
	}
	if a := alertFor("slo.read.availability"); a.State != "ok" {
		t.Fatalf("healthy: %+v, want ok", a)
	}

	// Fault: every shard dies. Reads fail their quorum and shed.
	for _, m := range rt.memberList() {
		m.mu.Lock()
		m.alive = false
		m.mu.Unlock()
	}
	for i := 0; i < 25; i++ {
		for j := 0; j < 4; j++ {
			if code := get(); code != 503 {
				t.Fatalf("faulted read: status %d, want 503", code)
			}
		}
		now = now.Add(time.Second)
		rt.ObserveNow(now)
	}
	crit := alertFor("slo.read.availability")
	if crit.State != "critical" {
		t.Fatalf("fault: %+v, want critical", crit)
	}
	if crit.ExemplarTraceID == "" {
		t.Fatal("critical alert carries no exemplar trace ID")
	}
	// The exemplar must resolve on /tracez — shed responses force-sample
	// their trace precisely so this lookup never dangles.
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez?trace="+crit.ExemplarTraceID, nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), crit.ExemplarTraceID) {
		t.Fatalf("exemplar %s not resolvable on /tracez: status %d", crit.ExemplarTraceID, rec.Code)
	}

	// Lift the fault: both windows drain and the alert clears.
	for _, m := range rt.memberList() {
		m.mu.Lock()
		m.alive = true
		m.strikes = 0
		m.mu.Unlock()
	}
	for i := 0; i < 60; i++ {
		for j := 0; j < 4; j++ {
			get()
		}
		now = now.Add(time.Second)
		rt.ObserveNow(now)
	}
	cleared := alertFor("slo.read.availability")
	if cleared.State != "ok" {
		t.Fatalf("recovered: %+v, want ok", cleared)
	}
	if cleared.Transitions < 2 {
		t.Fatalf("transitions = %d, want >= 2 (ok->critical->ok)", cleared.Transitions)
	}
}
