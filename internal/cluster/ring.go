// Package cluster turns N single-process tile servers into one
// sharded, replicated serving fleet: a consistent-hash ring with
// virtual nodes maps every TileKey to an owner set of R replicas, a
// router fans reads out to the owners with a read quorum and repairs
// stale replicas in the background, and writes that cannot reach a
// down owner are parked as hints on a fallback node and drained back
// when the owner recovers. This is the "industrial scale" spatial
// partitioning of Divide and Conquer (arXiv 2407.18703) applied to
// serving rather than generation: individual nodes may die mid-load
// and the cluster keeps answering tile reads at quorum.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"

	"hdmaps/internal/storage"
)

// DefaultVNodes is the virtual-node count per physical node. 128
// points per node keeps the load imbalance across nodes within a few
// tens of percent (pinned by the ring property tests) while Add/Remove
// stays O(V log V).
const DefaultVNodes = 128

// mix64 is the splitmix64 finalizer. FNV-1a alone distributes short,
// similar strings ("node0#1", "node0#2") unevenly around a 64-bit
// circle; the finalizer's avalanche spreads the vnode points enough
// for the balance bounds the ring tests pin.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring over named nodes. It is immutable
// after construction from the router's point of view: the router
// swaps whole rings on membership change, so Owners never sees a
// half-updated circle. Methods on Ring itself are not synchronized.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	nodes  []string    // sorted member names
}

// hashString is FNV-1a over s — stable across processes (the ring must
// agree between a router restart and its peers; maphash would not).
func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return mix64(h.Sum64())
}

// keyHash places a tile key on the circle. Layer and both coordinates
// join the hash so layers shard independently — one layer's hot city
// centre does not pin the same nodes as every other layer's.
func keyHash(key storage.TileKey) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key.Layer))
	var buf [17]byte
	buf[0] = '/'
	b := strconv.AppendInt(buf[:1], int64(key.TX), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(key.TY), 10)
	_, _ = h.Write(b)
	return mix64(h.Sum64())
}

// NewRing builds a ring of the given nodes with vnodes virtual nodes
// each (DefaultVNodes when <= 0). Node names must be unique.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes}
	for _, n := range nodes {
		r.insert(n)
	}
	return r
}

// insert adds one node's virtual points, keeping the circle sorted.
func (r *Ring) insert(node string) {
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			hash: hashString(node + "#" + strconv.Itoa(i)),
			node: node,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	r.nodes = append(r.nodes, node)
	sort.Strings(r.nodes)
}

// Nodes returns the sorted member names.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Len reports the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// WithNode returns a new ring with node added (r unchanged). Adding an
// existing member returns an identical copy.
func (r *Ring) WithNode(node string) *Ring {
	nodes := r.Nodes()
	for _, n := range nodes {
		if n == node {
			return NewRing(nodes, r.vnodes)
		}
	}
	return NewRing(append(nodes, node), r.vnodes)
}

// WithoutNode returns a new ring with node removed (r unchanged).
func (r *Ring) WithoutNode(node string) *Ring {
	nodes := make([]string, 0, len(r.nodes))
	for _, n := range r.nodes {
		if n != node {
			nodes = append(nodes, n)
		}
	}
	return NewRing(nodes, r.vnodes)
}

// Owners returns the n distinct nodes owning key, walking clockwise
// from the key's position — the replica set. Fewer than n members
// returns them all. The walk is deterministic: the same ring and key
// always produce the same owner list in the same order (the first
// entry is the primary).
func (r *Ring) Owners(key storage.TileKey, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	r.walk(key, func(node string) bool {
		out = append(out, node)
		return len(out) < n
	})
	return out
}

// walk visits distinct nodes in ring order starting at key's position,
// stopping when fn returns false or every member has been visited. The
// router uses it both for owner sets and to find the first non-owner
// fallback that should hold hints for a dead owner.
func (r *Ring) walk(key storage.TileKey, fn func(node string) bool) {
	if len(r.points) == 0 {
		return
	}
	h := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, len(r.nodes))
	for i := 0; i < len(r.points) && len(seen) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		if !fn(p.node) {
			return
		}
	}
}
