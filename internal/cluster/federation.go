package cluster

// Federation: the router scrapes every shard's /metricz on the
// observability sampling cadence and merges the snapshots into
// per-node time-series stores, served together with the router's own
// sampled history and the SLO alert set on /fleetz. The rules that
// keep the merge honest:
//
//   - full-decode-before-commit: a scrape that dies mid-body (node
//     killed between accept and flush) decodes to an error and commits
//     nothing — a node's history never contains a partial round;
//   - staleness is explicit: a dead or unreachable node keeps its last
//     committed series, marked stale=true, and the failure detector
//     gates scraping so federation never blocks ShardTimeout on a
//     known corpse;
//   - revival is reset-safe: counter deltas clamp to the post-restart
//     total when a scrape comes back below the previous one, so a
//     rebooted node's ring continues without double-counting history
//     it already reported;
//   - cardinality is bounded: at most MaxFleetNodes members get their
//     own store; the overflow shares one reserved "other" store (rates
//     and gauges sum, quantiles take the fleet-worst max).

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"hdmaps/internal/obs"
	"hdmaps/internal/obs/slo"
	"hdmaps/internal/obs/timeseries"
)

// fleetOtherNode is the reserved pseudo-node absorbing members beyond
// the MaxFleetNodes bound — the same catch-all convention as metric
// label domains.
const fleetOtherNode = obs.OtherLabel

// fleet is the router's federation layer: one scrape state per member
// plus the shared overflow store.
type fleet struct {
	rt       *Router
	interval time.Duration
	capacity int
	maxNodes int

	mu    sync.RWMutex
	nodes map[string]*fleetNode
	named int               // members holding their own store
	other *timeseries.Store // shared overflow store, created on demand
}

// fleetNode is one member's scrape state. The store pointer is either
// the node's own ring set or the shared overflow store (shared=true).
type fleetNode struct {
	name string

	mu         sync.Mutex
	store      *timeseries.Store
	shared     bool
	prevCount  map[string]uint64 // counter totals at the last committed scrape
	prevHist   map[string]uint64 // histogram counts at the last committed scrape
	lastScrape time.Time
	lastErr    string
	stale      bool
	scrapes    uint64
	failures   uint64
}

func newFleet(rt *Router, interval time.Duration, capacity, maxNodes int) *fleet {
	return &fleet{
		rt:       rt,
		interval: interval,
		capacity: capacity,
		maxNodes: maxNodes,
		nodes:    make(map[string]*fleetNode),
	}
}

// nodeFor returns the member's scrape state, creating it on first
// sight. The first MaxFleetNodes distinct members get their own store;
// later arrivals share the reserved overflow store.
func (f *fleet) nodeFor(name string) *fleetNode {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fn, ok := f.nodes[name]; ok {
		return fn
	}
	fn := &fleetNode{
		name:      name,
		prevCount: make(map[string]uint64),
		prevHist:  make(map[string]uint64),
	}
	if f.named < f.maxNodes {
		fn.store = timeseries.NewStore(f.capacity)
		f.named++
	} else {
		if f.other == nil {
			f.other = timeseries.NewStore(f.capacity)
		}
		fn.store = f.other
		fn.shared = true
	}
	f.nodes[name] = fn
	return fn
}

// scrapeRound federates one round: every live member is scraped
// concurrently, each successful full decode is committed to that
// member's store, and overflow members merge into the shared store
// under a single shared tick.
func (f *fleet) scrapeRound(now time.Time) {
	ms := f.rt.memberList()
	type outcome struct {
		fn   *fleetNode
		snap *obs.RegistrySnapshot
	}
	results := make([]outcome, len(ms))
	var wg sync.WaitGroup
	for i, m := range ms {
		fn := f.nodeFor(m.node.Name)
		results[i].fn = fn
		if !m.Alive() {
			// The failure detector already condemned this node; don't
			// burn a scrape timeout on it. Its series go stale in place.
			fn.markStale("node down")
			continue
		}
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			snap, err := f.scrape(m)
			if err != nil {
				results[i].fn.markStale(err.Error())
				return
			}
			results[i].snap = snap
		}(i, m)
	}
	wg.Wait()

	sharedTicked := false
	for _, res := range results {
		if res.snap == nil {
			continue
		}
		if res.fn.shared {
			if !sharedTicked {
				f.mu.RLock()
				other := f.other
				f.mu.RUnlock()
				other.Tick(now)
				sharedTicked = true
			}
			res.fn.commit(now, res.snap, f.interval)
			continue
		}
		res.fn.store.Tick(now)
		res.fn.commit(now, res.snap, f.interval)
	}
}

// scrape fetches one member's /metricz and decodes it completely
// before returning — the commit-or-nothing half of the no-partial-
// merge rule.
func (f *fleet) scrape(m *member) (*obs.RegistrySnapshot, error) {
	ctx, cancel := context.WithTimeout(context.Background(), f.rt.cfg.shardTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.node.Base+"/metricz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.rt.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, errors.New("metricz status " + resp.Status)
	}
	var snap obs.RegistrySnapshot
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

func (fn *fleetNode) markStale(reason string) {
	fn.mu.Lock()
	defer fn.mu.Unlock()
	fn.stale = true
	fn.lastErr = reason
	fn.failures++
}

// commit lands one fully-decoded snapshot: counters become per-second
// rates (reset-clamped), gauges copy through, histograms contribute an
// observation rate plus the snapshot's p50/p95/p99. The caller has
// already ticked the target store for this round.
func (fn *fleetNode) commit(now time.Time, snap *obs.RegistrySnapshot, interval time.Duration) {
	fn.mu.Lock()
	defer fn.mu.Unlock()
	dt := interval.Seconds()
	if !fn.lastScrape.IsZero() {
		if d := now.Sub(fn.lastScrape).Seconds(); d > 0 {
			dt = d
		}
	}
	for name, v := range snap.Counters {
		prev, seen := fn.prevCount[name]
		fn.prevCount[name] = v
		var d uint64
		switch {
		case !seen:
			// First sight is a baseline, not growth — a freshly federated
			// node must not replay its whole uptime as one spike.
			d = 0
		case v < prev:
			// Counter reset: the node restarted under the same name. Count
			// only the post-restart total; the ring buffer continues.
			d = v
		default:
			d = v - prev
		}
		fn.setRate(name, float64(d)/dt)
	}
	for name, v := range snap.Gauges {
		fn.setGauge(name, float64(v))
	}
	for name, h := range snap.Histograms {
		prev, seen := fn.prevHist[name]
		fn.prevHist[name] = h.Count
		var d uint64
		switch {
		case !seen:
			d = 0
		case h.Count < prev:
			d = h.Count
		default:
			d = h.Count - prev
		}
		fn.setRate(name+".rate", float64(d)/dt)
		fn.setQuantile(name+".p50", h.P50)
		fn.setQuantile(name+".p95", h.P95)
		fn.setQuantile(name+".p99", h.P99)
	}
	fn.lastScrape = now
	fn.stale = false
	fn.lastErr = ""
	fn.scrapes++
}

// Setters split on sharedness: an owned store takes values as-is; the
// shared overflow store aggregates — rates and gauges sum across its
// members, quantiles keep the worst.
func (fn *fleetNode) setRate(name string, v float64) {
	sr := fn.store.Ensure(name, timeseries.KindRate)
	if fn.shared {
		sr.Add(v)
		return
	}
	sr.Set(v)
}

func (fn *fleetNode) setGauge(name string, v float64) {
	sr := fn.store.Ensure(name, timeseries.KindGauge)
	if fn.shared {
		sr.Add(v)
		return
	}
	sr.Set(v)
}

func (fn *fleetNode) setQuantile(name string, v float64) {
	sr := fn.store.Ensure(name, timeseries.KindQuantile)
	if fn.shared {
		sr.Max(v)
		return
	}
	sr.Set(v)
}

// ---- /fleetz ---------------------------------------------------------

// FleetSummary is the per-node dashboard row: the numbers hdmapctl top
// renders.
type FleetSummary struct {
	// QPS is the node's request admission rate (router: routed rate).
	QPS float64 `json:"qps"`
	// P99Seconds is the worst p99 across the node's latency histograms.
	P99Seconds float64 `json:"p99_seconds"`
	// ShedPerSec / ErrorsPerSec are the refusal and failure rates.
	ShedPerSec   float64 `json:"shed_per_sec"`
	ErrorsPerSec float64 `json:"errors_per_sec"`
	// HintsPending is the router's count of unreplayed hints parked for
	// this node (router row: total pending).
	HintsPending int `json:"hints_pending"`
	// TombstonesPending is the pending-deletion ledger size (router row
	// only — the ledger is cluster-wide).
	TombstonesPending int `json:"tombstones_pending"`
}

// FleetNodeStatus is one node's entry in the /fleetz document.
type FleetNodeStatus struct {
	Name  string `json:"name"`
	Role  string `json:"role"` // "router", "shard", or "overflow"
	Alive bool   `json:"alive"`
	// Stale means the last scrape round did not commit: the series below
	// are the last committed history, not the present.
	Stale bool `json:"stale"`
	// CollapsedInto names the pseudo-node absorbing this member's series
	// when the fleet exceeded MaxFleetNodes.
	CollapsedInto string    `json:"collapsed_into,omitempty"`
	LastScrape    time.Time `json:"last_scrape,omitzero"`
	LastError     string    `json:"last_error,omitempty"`
	Scrapes       uint64    `json:"scrapes"`
	Failures      uint64    `json:"failures"`

	Summary FleetSummary                `json:"summary"`
	Series  []timeseries.SeriesSnapshot `json:"series,omitempty"`
}

// FleetStatus is the /fleetz document: the federated per-node view,
// the router's own sampled history, and the active alert set.
type FleetStatus struct {
	GeneratedAt    time.Time         `json:"generated_at"`
	SampleInterval string            `json:"sample_interval"`
	MaxNodes       int               `json:"max_nodes"`
	Nodes          []FleetNodeStatus `json:"nodes"`
	Alerts         []slo.Alert       `json:"alerts,omitempty"`
}

// FleetStatus assembles the /fleetz document with up to points history
// points per series (0 = full ring). Nil when the observability plane
// is disabled.
func (rt *Router) FleetStatus(points int) *FleetStatus {
	if rt.fleet == nil {
		return nil
	}
	hintsByNode := rt.hints.pendingByTarget()
	out := &FleetStatus{
		GeneratedAt:    time.Now(),
		SampleInterval: rt.cfg.sampleInterval().String(),
		MaxNodes:       rt.fleet.maxNodes,
	}
	if rt.sloEng != nil {
		out.Alerts = rt.sloEng.Alerts()
	}

	// The router itself is the first node: its history comes from the
	// in-process sampler, not a scrape.
	if rt.sampler != nil {
		snaps := rt.sampler.Store().Snapshot(points)
		sum := summaryFrom(snaps,
			"cluster.router.routed", "cluster.router.shed", "cluster.router.errored")
		sum.HintsPending = rt.hints.pending()
		sum.TombstonesPending = rt.ledger.pending()
		last, _ := rt.sampler.Store().LastTick()
		out.Nodes = append(out.Nodes, FleetNodeStatus{
			Name:       "router",
			Role:       "router",
			Alive:      true,
			LastScrape: last,
			Scrapes:    rt.sampler.Store().Ticks(),
			Summary:    sum,
			Series:     snaps,
		})
	}

	var overflowUsed bool
	for _, m := range rt.memberList() {
		fn := rt.fleet.nodeFor(m.node.Name)
		fn.mu.Lock()
		ns := FleetNodeStatus{
			Name:       fn.name,
			Role:       "shard",
			Alive:      m.Alive(),
			Stale:      fn.stale,
			LastScrape: fn.lastScrape,
			LastError:  fn.lastErr,
			Scrapes:    fn.scrapes,
			Failures:   fn.failures,
		}
		shared := fn.shared
		store := fn.store
		fn.mu.Unlock()
		if shared {
			ns.Role = "overflow"
			ns.CollapsedInto = fleetOtherNode
			overflowUsed = true
		} else {
			snaps := store.Snapshot(points)
			ns.Summary = summaryFrom(snaps,
				"resilience.http.submitted", "resilience.http.shed", "resilience.http.errored")
			ns.Summary.HintsPending = hintsByNode[fn.name]
			ns.Series = snaps
		}
		out.Nodes = append(out.Nodes, ns)
	}
	if overflowUsed {
		rt.fleet.mu.RLock()
		other := rt.fleet.other
		rt.fleet.mu.RUnlock()
		snaps := other.Snapshot(points)
		sum := summaryFrom(snaps,
			"resilience.http.submitted", "resilience.http.shed", "resilience.http.errored")
		out.Nodes = append(out.Nodes, FleetNodeStatus{
			Name:    fleetOtherNode,
			Role:    "overflow",
			Alive:   true,
			Summary: sum,
			Series:  snaps,
		})
	}
	return out
}

// summaryFrom derives the dashboard row from a series snapshot set:
// the named qps/shed/error rates plus the worst latency p99 present.
func summaryFrom(snaps []timeseries.SeriesSnapshot, qpsName, shedName, errName string) FleetSummary {
	var sum FleetSummary
	lastOf := func(ss timeseries.SeriesSnapshot) (float64, bool) {
		if len(ss.Points) == 0 {
			return 0, false
		}
		return ss.Points[len(ss.Points)-1].V, true
	}
	for _, ss := range snaps {
		v, ok := lastOf(ss)
		if !ok {
			continue
		}
		switch ss.Name {
		case qpsName:
			sum.QPS = v
		case shedName:
			sum.ShedPerSec = v
		case errName:
			sum.ErrorsPerSec = v
		}
		if strings.HasSuffix(ss.Name, ".p99") && strings.Contains(ss.Name, "latency") && v > sum.P99Seconds {
			sum.P99Seconds = v
		}
	}
	return sum
}
