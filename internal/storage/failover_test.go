package storage

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hdmaps/internal/obs"
)

// A client configured with several router endpoints must rotate to the
// next one when an attempt fails with a transient error, and then stick
// to the endpoint that works — a dead router costs one attempt, not the
// operation, and healthy traffic does not keep poking the corpse.
func TestClientEndpointFailover(t *testing.T) {
	data := EncodeBinary(core_NewTinyMap(t))

	var deadHits, liveHits atomic.Int64
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		deadHits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	t.Cleanup(dead.Close)
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		liveHits.Add(1)
		w.Header().Set(ChecksumHeader, Checksum(data))
		_, _ = w.Write(data)
	}))
	t.Cleanup(live.Close)

	reg := obs.NewRegistry()
	client := &Client{
		Endpoints: []string{dead.URL, live.URL},
		Metrics:   reg,
		Retry:     RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	}

	got, err := client.GetTile(context.Background(), TileKey{Layer: "base", TX: 0, TY: 0})
	if err != nil {
		t.Fatalf("GetTile with one dead endpoint: %v", err)
	}
	if string(got) != string(data) {
		t.Error("payload mismatch after failover")
	}
	if deadHits.Load() != 1 || liveHits.Load() != 1 {
		t.Errorf("hits = dead %d, live %d; want 1 each (fail, rotate, succeed)",
			deadHits.Load(), liveHits.Load())
	}
	if v := reg.Counter("storage.client.failovers").Value(); v != 1 {
		t.Errorf("failovers counter = %d, want 1", v)
	}

	// Subsequent requests stick to the endpoint that worked.
	if _, err := client.GetTile(context.Background(), TileKey{Layer: "base", TX: 0, TY: 0}); err != nil {
		t.Fatalf("second GetTile: %v", err)
	}
	if deadHits.Load() != 1 {
		t.Errorf("dead endpoint re-contacted after failover: %d hits", deadHits.Load())
	}
	if liveHits.Load() != 2 {
		t.Errorf("live hits = %d, want 2", liveHits.Load())
	}
}

// Failover must survive an endpoint that is not merely erroring but
// gone — connection refused, the node-kill case — and must wrap around
// the endpoint list rather than walking off its end.
func TestClientEndpointFailoverConnectionRefused(t *testing.T) {
	data := EncodeBinary(core_NewTinyMap(t))
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(ChecksumHeader, Checksum(data))
		_, _ = w.Write(data)
	}))
	t.Cleanup(live.Close)
	gone := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	goneURL := gone.URL
	gone.Close() // port now refuses connections

	reg := obs.NewRegistry()
	client := &Client{
		// live first: the first failover wraps past the end of the list
		// only after the index has advanced beyond it, exercising the
		// mod-len arithmetic in endpoint().
		Endpoints: []string{goneURL, live.URL},
		Metrics:   reg,
		Retry:     RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		Timeout:   2 * time.Second,
	}
	if _, err := client.GetTile(context.Background(), TileKey{Layer: "base", TX: 0, TY: 0}); err != nil {
		t.Fatalf("GetTile with a refused endpoint: %v", err)
	}
	if v := reg.Counter("storage.client.failovers").Value(); v != 1 {
		t.Errorf("failovers counter = %d, want 1", v)
	}

	// Force the index past the end of the list: rotating from the live
	// endpoint must wrap back to index 0 (mod len), not panic or point
	// nowhere. endpoint() with epIdx=2 over 2 endpoints is entry 0.
	client.failover(1)
	if got := client.endpoint(); got != goneURL {
		t.Errorf("endpoint after wrap = %q, want %q", got, goneURL)
	}
}

// Concurrent fetches that all observe the same endpoint failure must
// rotate once, not once per fetch — the CAS in failover keyed on the
// observed index prevents a thundering herd from skipping past healthy
// endpoints.
func TestClientFailoverRotatesOncePerFailure(t *testing.T) {
	c := &Client{
		Endpoints: []string{"http://a", "http://b", "http://c"},
		Metrics:   obs.NewRegistry(),
	}
	for i := 0; i < 10; i++ {
		c.failover(0) // ten goroutines all saw endpoint 0 fail
	}
	if got := c.endpoint(); got != "http://b" {
		t.Errorf("endpoint after herd failover = %q, want the next one, not three hops", got)
	}
	if v := c.metrics().failovers.Value(); v != 1 {
		t.Errorf("failovers = %d, want 1 (CAS collapses the herd)", v)
	}
}
