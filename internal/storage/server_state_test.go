package storage

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
)

// stateServer spins up a TileServer over a fresh MemStore.
func stateServer(t *testing.T) (*TileServer, *MemStore, *httptest.Server) {
	t.Helper()
	store := NewMemStore()
	ts := NewTileServer(store)
	srv := httptest.NewServer(ts)
	t.Cleanup(srv.Close)
	return ts, store, srv
}

func stateTile(t *testing.T, clock uint64) []byte {
	t.Helper()
	m := core_NewTinyMap(t)
	m.Clock = clock
	return EncodeBinary(m)
}

// doTile issues a raw tile request with optional Expect header.
func doTile(t *testing.T, method, url, expect string, body []byte) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(context.Background(), method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if expect != "" {
		req.Header.Set(ExpectHeader, expect)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestServerTombstoneLifecycle(t *testing.T) {
	_, store, srv := stateServer(t)
	url := srv.URL + "/v1/tiles/base/1/2"

	// Live write at clock 5.
	if resp := doTile(t, http.MethodPut, url, "", stateTile(t, 5)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("put: %d", resp.StatusCode)
	}

	// Tombstone at clock 6 supersedes it.
	marker := EncodeTombstone(Tombstone{Layer: "base", TX: 1, TY: 2, Clock: 6, Created: 1, TTLSeconds: 60})
	if resp := doTile(t, http.MethodPut, url, "", marker); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("tombstone put: %d", resp.StatusCode)
	}

	// GET now answers 404 + marker bytes + deletion clock.
	resp := doTile(t, http.MethodGet, url, "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(TombstoneHeader); got != "6" {
		t.Fatalf("tombstone header = %q, want 6", got)
	}
	body, _ := io.ReadAll(resp.Body)
	if !bytes.Equal(body, marker) {
		t.Fatal("tombstone GET body is not the marker bytes")
	}
	if got := resp.Header.Get(ChecksumHeader); got != Checksum(marker) {
		t.Fatalf("tombstone checksum header = %q", got)
	}

	// Live tile is gone from the store; marker lives in the shadow layer.
	if _, err := store.Get(TileKey{Layer: "base", TX: 1, TY: 2}); err == nil {
		t.Fatal("live tile still in store after tombstone")
	}
	if _, err := store.Get(TileKey{Layer: "tomb--base", TX: 1, TY: 2}); err != nil {
		t.Fatalf("marker not in shadow layer: %v", err)
	}

	// A stale replay (clock 4 < 6) must NOT resurrect — 409.
	resp = doTile(t, http.MethodPut, url, "", stateTile(t, 4))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale replay: %d, want 409", resp.StatusCode)
	}
	if got := resp.Header.Get(StateHeader); got != "tomb:6" {
		t.Fatalf("409 state header = %q, want tomb:6", got)
	}

	// A genuinely newer write (clock 7) resurrects and clears the marker.
	if resp := doTile(t, http.MethodPut, url, "", stateTile(t, 7)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("newer put: %d", resp.StatusCode)
	}
	if resp := doTile(t, http.MethodGet, url, "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("get after resurrection: %d", resp.StatusCode)
	}
	if _, err := store.Get(TileKey{Layer: "tomb--base", TX: 1, TY: 2}); err == nil {
		t.Fatal("marker survived a superseding write")
	}
}

func TestServerTombstoneObsoleteMarker(t *testing.T) {
	_, _, srv := stateServer(t)
	url := srv.URL + "/v1/tiles/base/0/0"
	if resp := doTile(t, http.MethodPut, url, "", stateTile(t, 10)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("put: %d", resp.StatusCode)
	}
	// A delete at clock 9 arrives late: live tile wins, marker refused.
	old := EncodeTombstone(Tombstone{Layer: "base", TX: 0, TY: 0, Clock: 9, Created: 1, TTLSeconds: 60})
	resp := doTile(t, http.MethodPut, url, "", old)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("obsolete tombstone: %d, want 409", resp.StatusCode)
	}
	if resp := doTile(t, http.MethodGet, url, "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("tile should survive obsolete tombstone: %d", resp.StatusCode)
	}
}

func TestServerTombstoneKeyMismatch(t *testing.T) {
	_, _, srv := stateServer(t)
	marker := EncodeTombstone(Tombstone{Layer: "base", TX: 9, TY: 9, Clock: 1})
	resp := doTile(t, http.MethodPut, srv.URL+"/v1/tiles/base/1/1", "", marker)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("key-mismatched marker: %d, want 422", resp.StatusCode)
	}
}

func TestServerConditionalPut(t *testing.T) {
	_, _, srv := stateServer(t)
	url := srv.URL + "/v1/tiles/base/3/3"
	v1 := stateTile(t, 1)

	// Expect absent on an absent key: accepted.
	if resp := doTile(t, http.MethodPut, url, "absent", v1); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("expect-absent put: %d", resp.StatusCode)
	}
	// Expect absent again: the key is now live — 412 with current state.
	resp := doTile(t, http.MethodPut, url, "absent", stateTile(t, 2))
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("stale expect: %d, want 412", resp.StatusCode)
	}
	want := "live:1:" + Checksum(v1)
	if got := resp.Header.Get(StateHeader); got != want {
		t.Fatalf("412 state = %q, want %q", got, want)
	}
	// Expect the observed state: accepted.
	if resp := doTile(t, http.MethodPut, url, want, stateTile(t, 2)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("matching expect: %d", resp.StatusCode)
	}
	// Malformed expect: 400.
	if resp := doTile(t, http.MethodPut, url, "bogus", stateTile(t, 3)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed expect: %d, want 400", resp.StatusCode)
	}
}

func TestServerConditionalDeleteGC(t *testing.T) {
	_, store, srv := stateServer(t)
	url := srv.URL + "/v1/tiles/base/4/4"
	if resp := doTile(t, http.MethodPut, url, "", stateTile(t, 1)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("put: %d", resp.StatusCode)
	}
	marker := EncodeTombstone(Tombstone{Layer: "base", TX: 4, TY: 4, Clock: 2, Created: 1, TTLSeconds: 1})
	if resp := doTile(t, http.MethodPut, url, "", marker); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("tombstone: %d", resp.StatusCode)
	}
	// GC with the wrong clock: 412, marker stays.
	if resp := doTile(t, http.MethodDelete, url, "tomb:9", nil); resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("wrong-clock GC: %d, want 412", resp.StatusCode)
	}
	// GC with the observed marker: 204, marker reclaimed, key absent.
	if resp := doTile(t, http.MethodDelete, url, "tomb:2", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("GC: %d", resp.StatusCode)
	}
	if _, err := store.Get(TileKey{Layer: "tomb--base", TX: 4, TY: 4}); err == nil {
		t.Fatal("marker survived GC")
	}
	resp := doTile(t, http.MethodGet, url, "", nil)
	if resp.StatusCode != http.StatusNotFound || resp.Header.Get(TombstoneHeader) != "" {
		t.Fatalf("after GC want plain 404, got %d tomb=%q", resp.StatusCode, resp.Header.Get(TombstoneHeader))
	}
}

func TestServerReservedTombLayer(t *testing.T) {
	_, _, srv := stateServer(t)
	resp := doTile(t, http.MethodPut, srv.URL+"/v1/tiles/tomb--base/1/1", "", stateTile(t, 1))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("direct tomb-- write: %d, want 422", resp.StatusCode)
	}
}

func TestServerHintLayerAcceptsMarkers(t *testing.T) {
	_, _, srv := stateServer(t)
	marker := EncodeTombstone(Tombstone{Layer: "base", TX: 1, TY: 1, Clock: 3})
	// Parked delete hint: raw storage, no tombstone semantics applied.
	url := srv.URL + "/v1/tiles/hint--node-b--base/1/1"
	if resp := doTile(t, http.MethodPut, url, "", marker); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("hint marker park: %d", resp.StatusCode)
	}
	resp := doTile(t, http.MethodGet, url, "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hint marker read back: %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !bytes.Equal(body, marker) {
		t.Fatal("parked marker bytes changed")
	}
	// Garbage is still refused on hint layers.
	if resp := doTile(t, http.MethodPut, url, "", []byte("junk")); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("garbage hint park: %d, want 422", resp.StatusCode)
	}
}

func TestServerTombstoneRestartRescan(t *testing.T) {
	store := NewMemStore()
	first := NewTileServer(store)
	srv := httptest.NewServer(first)
	url := srv.URL + "/v1/tiles/base/8/8"
	if resp := doTile(t, http.MethodPut, url, "", stateTile(t, 1)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("put: %d", resp.StatusCode)
	}
	marker := EncodeTombstone(Tombstone{Layer: "base", TX: 8, TY: 8, Clock: 2, Created: 1, TTLSeconds: 60})
	if resp := doTile(t, http.MethodPut, url, "", marker); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("tombstone: %d", resp.StatusCode)
	}
	srv.Close()

	// A fresh server over the same store must come back tombstone-aware.
	second := httptest.NewServer(NewTileServer(store))
	defer second.Close()
	resp := doTile(t, http.MethodGet, second.URL+"/v1/tiles/base/8/8", "", nil)
	if resp.StatusCode != http.StatusNotFound || resp.Header.Get(TombstoneHeader) != "2" {
		t.Fatalf("restarted server lost tombstone: %d tomb=%q", resp.StatusCode, resp.Header.Get(TombstoneHeader))
	}
	// And the resurrection guard still holds.
	if resp := doTile(t, http.MethodPut, second.URL+"/v1/tiles/base/8/8", "", stateTile(t, 1)); resp.StatusCode != http.StatusConflict {
		t.Fatalf("restarted server allowed resurrection: %d", resp.StatusCode)
	}
}

// TestServerRestartReconcilesCrashShadow: a crash can leave a live
// tile and its tomb-- shadow marker on disk together (handlePut dies
// between installing the tile and removing the marker; putTombstone
// dies between installing the marker and removing the tile). The
// restart rescan must finish the interrupted cleanup — the
// FresherState winner stays, the loser is deleted — so conditional
// writes, digests, and GETs agree again.
func TestServerRestartReconcilesCrashShadow(t *testing.T) {
	live := TileKey{Layer: "base", TX: 9, TY: 9}
	shadow := TileKey{Layer: "tomb--base", TX: 9, TY: 9}

	// Live tile dominates (clock 3 > marker 2): the tile survives and
	// the stale marker is reclaimed.
	store := NewMemStore()
	if err := store.Put(live, stateTile(t, 3)); err != nil {
		t.Fatal(err)
	}
	stale := EncodeTombstone(Tombstone{Layer: "base", TX: 9, TY: 9, Clock: 2, Created: 1, TTLSeconds: 60})
	if err := store.Put(shadow, stale); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewTileServer(store))
	if resp := doTile(t, http.MethodGet, srv.URL+"/v1/tiles/base/9/9", "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("dominating live tile not served: %d", resp.StatusCode)
	}
	if _, err := store.Get(shadow); err == nil {
		t.Fatal("dominated marker survived the restart rescan")
	}
	srv.Close()

	// Marker dominates (clock 5 > tile 3): the deletion wins and the
	// stale live tile is removed.
	store2 := NewMemStore()
	if err := store2.Put(live, stateTile(t, 3)); err != nil {
		t.Fatal(err)
	}
	fresh := EncodeTombstone(Tombstone{Layer: "base", TX: 9, TY: 9, Clock: 5, Created: 1, TTLSeconds: 60})
	if err := store2.Put(shadow, fresh); err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(NewTileServer(store2))
	defer srv2.Close()
	resp := doTile(t, http.MethodGet, srv2.URL+"/v1/tiles/base/9/9", "", nil)
	if resp.StatusCode != http.StatusNotFound || resp.Header.Get(TombstoneHeader) != "5" {
		t.Fatalf("dominating marker not honoured: %d tomb=%q", resp.StatusCode, resp.Header.Get(TombstoneHeader))
	}
	if _, err := store2.Get(live); err == nil {
		t.Fatal("dominated live tile survived the restart rescan")
	}
}

func TestServerLayerDigest(t *testing.T) {
	ts, _, srv := stateServer(t)
	// Populate a few tiles plus one tombstone.
	for i := 0; i < 8; i++ {
		url := srv.URL + "/v1/tiles/base/" + strconv.Itoa(i) + "/0"
		if resp := doTile(t, http.MethodPut, url, "", stateTile(t, uint64(i+1))); resp.StatusCode != http.StatusNoContent {
			t.Fatalf("put %d: %d", i, resp.StatusCode)
		}
	}
	marker := EncodeTombstone(Tombstone{Layer: "base", TX: 0, TY: 0, Clock: 99, Created: 1, TTLSeconds: 60})
	if resp := doTile(t, http.MethodPut, srv.URL+"/v1/tiles/base/0/0", "", marker); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("tombstone: %d", resp.StatusCode)
	}

	d, err := ts.LayerDigest("base")
	if err != nil {
		t.Fatal(err)
	}
	if d.Count != 8 {
		t.Fatalf("digest count = %d, want 8 (7 live + 1 tomb)", d.Count)
	}
	if len(d.Buckets) != DigestBuckets {
		t.Fatalf("bucket vector length %d", len(d.Buckets))
	}

	// An identical second server digests identically; a diverged one
	// differs exactly in the changed key's bucket.
	store2 := NewMemStore()
	ts2 := NewTileServer(store2)
	srv2 := httptest.NewServer(ts2)
	defer srv2.Close()
	for i := 0; i < 8; i++ {
		url := srv2.URL + "/v1/tiles/base/" + strconv.Itoa(i) + "/0"
		if resp := doTile(t, http.MethodPut, url, "", stateTile(t, uint64(i+1))); resp.StatusCode != http.StatusNoContent {
			t.Fatalf("put2 %d: %d", i, resp.StatusCode)
		}
	}
	if resp := doTile(t, http.MethodPut, srv2.URL+"/v1/tiles/base/0/0", "", marker); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("tombstone2: %d", resp.StatusCode)
	}
	d2, err := ts2.LayerDigest("base")
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Buckets {
		if d.Buckets[i] != d2.Buckets[i] {
			t.Fatalf("identical replicas disagree in bucket %d: %+v vs %+v", i, d.Buckets[i], d2.Buckets[i])
		}
	}
	// Diverge replica 2 at one key.
	if resp := doTile(t, http.MethodPut, srv2.URL+"/v1/tiles/base/5/0", "", stateTile(t, 50)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("diverge put: %d", resp.StatusCode)
	}
	d2, _ = ts2.LayerDigest("base")
	diff := 0
	for i := range d.Buckets {
		if d.Buckets[i].Digest != d2.Buckets[i].Digest {
			diff++
			if i != DigestBucketOf(5, 0) {
				t.Fatalf("divergence surfaced in wrong bucket %d", i)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("one-key divergence changed %d buckets", diff)
	}

	// Leaf fetch of the suspect bucket shows the diverged clock.
	entries, err := ts2.DigestEntries("base", DigestBucketOf(5, 0))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range entries {
		if e.TX == 5 && e.TY == 0 {
			found = true
			if e.Clock != 50 {
				t.Fatalf("leaf clock = %d, want 50", e.Clock)
			}
		}
	}
	if !found {
		t.Fatal("diverged key missing from its bucket's leaves")
	}
}

func TestServerDigestEndpoint(t *testing.T) {
	_, _, srv := stateServer(t)
	if resp := doTile(t, http.MethodPut, srv.URL+"/v1/tiles/base/1/1", "", stateTile(t, 7)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("put: %d", resp.StatusCode)
	}
	marker := EncodeTombstone(Tombstone{Layer: "base", TX: 2, TY: 2, Clock: 3, Created: 11, TTLSeconds: 60})
	if resp := doTile(t, http.MethodPut, srv.URL+"/v1/tiles/base/2/2", "", marker); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("tombstone: %d", resp.StatusCode)
	}

	var d LayerDigest
	getJSON(t, srv.URL+"/v1/digest/base", &d)
	if d.Layer != "base" || d.Count != 2 || len(d.Buckets) != DigestBuckets {
		t.Fatalf("digest doc: %+v", d)
	}

	var entries []DigestEntry
	getJSON(t, srv.URL+"/v1/digest/base?bucket="+strconv.Itoa(DigestBucketOf(2, 2)), &entries)
	foundTomb := false
	for _, e := range entries {
		if e.TX == 2 && e.TY == 2 {
			foundTomb = true
			if !e.Tomb || e.Clock != 3 || e.Created != 0 {
				t.Fatalf("bucket tombstone entry: %+v", e)
			}
		}
	}
	if !foundTomb {
		t.Fatal("tombstone missing from bucket leaves")
	}

	var tombs []DigestEntry
	getJSON(t, srv.URL+"/v1/digest/base?tombs=1", &tombs)
	if len(tombs) != 1 || tombs[0].Created != 11 || tombs[0].TTLSeconds != 60 {
		t.Fatalf("tombstone listing: %+v", tombs)
	}

	// Internal layers are refused.
	resp := doTile(t, http.MethodGet, srv.URL+"/v1/digest/hint--x--base", "", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("internal-layer digest: %d, want 400", resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, v interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}
