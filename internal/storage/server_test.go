package storage

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hdmaps/internal/core"
	"hdmaps/internal/geo"
)

func newTestServer(t *testing.T) (*httptest.Server, *Client, *MemStore) {
	t.Helper()
	store := NewMemStore()
	srv := httptest.NewServer(NewTileServer(store))
	t.Cleanup(srv.Close)
	return srv, &Client{Base: srv.URL}, store
}

func TestTileServerRoundTrip(t *testing.T) {
	ctx := context.Background()
	_, client, _ := newTestServer(t)
	m := testWorld(t, 501)
	tiler := Tiler{TileSize: 200}
	tiles := tiler.Split(m, "base")
	// Push every tile through the HTTP API.
	for key, tm := range tiles {
		if err := client.PutTile(ctx, key, EncodeBinary(tm)); err != nil {
			t.Fatal(err)
		}
	}
	// Layer discovery.
	layers, err := client.Layers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(layers) != 1 || layers[0] != "base" {
		t.Fatalf("layers = %v", layers)
	}
	// Pull the whole region back and compare.
	back, health, err := client.FetchRegion(ctx, "base", -100, -100, 100, 100, m.Name)
	if err != nil {
		t.Fatal(err)
	}
	if health.Degraded || health.Fresh != len(tiles) {
		t.Fatalf("healthy fetch reported %+v", health)
	}
	mapsEquivalent(t, m, back)
}

// TestTileServerLayersAnyStore exercises layer discovery through the
// TileStore interface alone — a custom store implementation must work,
// not just MemStore/DirStore.
func TestTileServerLayersAnyStore(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	srv := httptest.NewServer(NewTileServer(opaqueStore{inner}))
	t.Cleanup(srv.Close)
	client := &Client{Base: srv.URL}

	m := core_NewTinyMap(t)
	if err := inner.Put(TileKey{Layer: "crowd-signs", TX: 0, TY: 0}, EncodeBinary(m)); err != nil {
		t.Fatal(err)
	}
	if err := inner.Put(TileKey{Layer: "base", TX: 1, TY: 1}, EncodeBinary(m)); err != nil {
		t.Fatal(err)
	}
	layers, err := client.Layers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(layers) != 2 || layers[0] != "base" || layers[1] != "crowd-signs" {
		t.Fatalf("layers = %v", layers)
	}
}

// opaqueStore hides the concrete store type so any type-switch on
// *MemStore/*DirStore would see neither.
type opaqueStore struct{ TileStore }

func TestTileServerErrors(t *testing.T) {
	ctx := context.Background()
	srv, client, _ := newTestServer(t)
	// Missing tile -> ErrNoTile through the client.
	if _, err := client.GetTile(ctx, TileKey{Layer: "base", TX: 9, TY: 9}); !errors.Is(err, ErrNoTile) {
		t.Errorf("missing tile err = %v", err)
	}
	// Missing tile -> 404 with a JSON error body on the wire.
	resp, err := http.Get(srv.URL + "/v1/tiles/base/9/9")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Errorf("404 body is not JSON: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || body.Error == "" {
		t.Errorf("missing tile: status = %d, body = %+v", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("404 content-type = %q", ct)
	}
	// Corrupt upload rejected with 422.
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/tiles/base/0/0", strings.NewReader("garbage"))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("corrupt PUT status = %d", resp.StatusCode)
	}
	// Upload whose checksum header disagrees with the body -> 400.
	good := EncodeBinary(core_NewTinyMap(t))
	req, _ = http.NewRequest(http.MethodPut, srv.URL+"/v1/tiles/base/0/0", strings.NewReader(string(good)))
	req.Header.Set(ChecksumHeader, "deadbeef")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("checksum-mismatch PUT status = %d", resp.StatusCode)
	}
	// Bad coordinates -> 400.
	resp, err = http.Get(srv.URL + "/v1/tiles/base/xx/0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad coord status = %d", resp.StatusCode)
	}
	// Unknown route -> 404.
	resp, err = http.Get(srv.URL + "/v2/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown route status = %d", resp.StatusCode)
	}
	// Method not allowed: POST on a tile, DELETE on layers and list.
	for _, tc := range []struct{ method, path string }{
		{http.MethodPost, "/v1/tiles/base/0/0"},
		{http.MethodDelete, "/v1/layers"},
		{http.MethodDelete, "/v1/tiles/base"},
	} {
		req, _ := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s status = %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
	}
	// Oversize upload -> 413.
	ts, ok := srvHandler(srv)
	if ok {
		ts.MaxTileBytes = 8
		req, _ = http.NewRequest(http.MethodPut, srv.URL+"/v1/tiles/base/0/0", strings.NewReader("0123456789abcdef"))
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("oversize status = %d", resp.StatusCode)
		}
		ts.MaxTileBytes = 16 << 20
	}
	// Empty region.
	if _, _, err := client.FetchRegion(ctx, "base", 0, 0, 0, 0, "x"); !errors.Is(err, ErrNoTile) {
		t.Errorf("empty region err = %v", err)
	}
}

// TestTileServerChecksumHeader verifies GETs carry a checksum the
// client can verify.
func TestTileServerChecksumHeader(t *testing.T) {
	ctx := context.Background()
	srv, client, _ := newTestServer(t)
	m := core_NewTinyMap(t)
	data := EncodeBinary(m)
	key := TileKey{Layer: "base", TX: 0, TY: 0}
	if err := client.PutTile(ctx, key, data); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/v1/tiles/base/0/0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(ChecksumHeader); got != Checksum(data) {
		t.Errorf("checksum header = %q, want %q", got, Checksum(data))
	}
}

// srvHandler extracts the TileServer from an httptest server.
func srvHandler(srv *httptest.Server) (*TileServer, bool) {
	h, ok := srv.Config.Handler.(*TileServer)
	return h, ok
}

func TestTileServerDelete(t *testing.T) {
	ctx := context.Background()
	srv, client, _ := newTestServer(t)
	m := core_NewTinyMap(t)
	key := TileKey{Layer: "base", TX: 0, TY: 0}
	if err := client.PutTile(ctx, key, EncodeBinary(m)); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/tiles/base/0/0", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	if _, err := client.GetTile(ctx, key); !errors.Is(err, ErrNoTile) {
		t.Errorf("tile survived delete: %v", err)
	}
}

func TestTileServerConcurrentAccess(t *testing.T) {
	ctx := context.Background()
	_, client, _ := newTestServer(t)
	m := core_NewTinyMap(t)
	data := EncodeBinary(m)
	key := TileKey{Layer: "base", TX: 1, TY: 1}
	if err := client.PutTile(ctx, key, data); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.GetTile(ctx, key); err != nil {
				errs <- err
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := client.PutTile(ctx, key, data); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent access: %v", err)
	}
}

// core_NewTinyMap builds a minimal valid map for server tests.
func core_NewTinyMap(t *testing.T) *core.Map {
	t.Helper()
	m := core.NewMap("tiny")
	m.AddPoint(core.PointElement{Class: core.ClassSign, Pos: geo.V3(1, 2, 2)})
	return m
}
