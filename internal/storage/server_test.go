package storage

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hdmaps/internal/core"
	"hdmaps/internal/geo"
)

func newTestServer(t *testing.T) (*httptest.Server, *Client, *MemStore) {
	t.Helper()
	store := NewMemStore()
	srv := httptest.NewServer(NewTileServer(store))
	t.Cleanup(srv.Close)
	return srv, &Client{Base: srv.URL}, store
}

func TestTileServerRoundTrip(t *testing.T) {
	_, client, _ := newTestServer(t)
	m := testWorld(t, 501)
	tiler := Tiler{TileSize: 200}
	tiles := tiler.Split(m, "base")
	// Push every tile through the HTTP API.
	for key, tm := range tiles {
		if err := client.PutTile(key, EncodeBinary(tm)); err != nil {
			t.Fatal(err)
		}
	}
	// Layer discovery.
	layers, err := client.Layers()
	if err != nil {
		t.Fatal(err)
	}
	if len(layers) != 1 || layers[0] != "base" {
		t.Fatalf("layers = %v", layers)
	}
	// Pull the whole region back and compare.
	back, err := client.FetchRegion("base", -100, -100, 100, 100, m.Name)
	if err != nil {
		t.Fatal(err)
	}
	mapsEquivalent(t, m, back)
}

func TestTileServerErrors(t *testing.T) {
	srv, client, _ := newTestServer(t)
	// Missing tile -> ErrNoTile through the client.
	if _, err := client.GetTile(TileKey{Layer: "base", TX: 9, TY: 9}); !errors.Is(err, ErrNoTile) {
		t.Errorf("missing tile err = %v", err)
	}
	// Corrupt upload rejected with 422.
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/tiles/base/0/0", strings.NewReader("garbage"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("corrupt PUT status = %d", resp.StatusCode)
	}
	// Bad coordinates -> 400.
	resp, err = http.Get(srv.URL + "/v1/tiles/base/xx/0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad coord status = %d", resp.StatusCode)
	}
	// Unknown route -> 404.
	resp, err = http.Get(srv.URL + "/v2/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown route status = %d", resp.StatusCode)
	}
	// Oversize upload -> 413.
	ts, ok := srvHandler(srv)
	if ok {
		ts.MaxTileBytes = 8
		req, _ = http.NewRequest(http.MethodPut, srv.URL+"/v1/tiles/base/0/0", strings.NewReader("0123456789abcdef"))
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("oversize status = %d", resp.StatusCode)
		}
	}
	// Empty region.
	if _, err := client.FetchRegion("base", 0, 0, 0, 0, "x"); !errors.Is(err, ErrNoTile) {
		t.Errorf("empty region err = %v", err)
	}
}

// srvHandler extracts the TileServer from an httptest server.
func srvHandler(srv *httptest.Server) (*TileServer, bool) {
	h, ok := srv.Config.Handler.(*TileServer)
	return h, ok
}

func TestTileServerDelete(t *testing.T) {
	srv, client, _ := newTestServer(t)
	m := core_NewTinyMap(t)
	key := TileKey{Layer: "base", TX: 0, TY: 0}
	if err := client.PutTile(key, EncodeBinary(m)); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/tiles/base/0/0", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	if _, err := client.GetTile(key); !errors.Is(err, ErrNoTile) {
		t.Errorf("tile survived delete: %v", err)
	}
}

func TestTileServerConcurrentAccess(t *testing.T) {
	_, client, _ := newTestServer(t)
	m := core_NewTinyMap(t)
	data := EncodeBinary(m)
	key := TileKey{Layer: "base", TX: 1, TY: 1}
	if err := client.PutTile(key, data); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.GetTile(key); err != nil {
				errs <- err
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := client.PutTile(key, data); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent access: %v", err)
	}
}

// core_NewTinyMap builds a minimal valid map for server tests.
func core_NewTinyMap(t *testing.T) *core.Map {
	t.Helper()
	m := core.NewMap("tiny")
	m.AddPoint(core.PointElement{Class: core.ClassSign, Pos: geo.V3(1, 2, 2)})
	return m
}
