package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"

	"hdmaps/internal/core"
)

// TileServer exposes a TileStore over HTTP — the central map-distribution
// node of the ecosystem (vehicles pull tiles for their region; update
// pipelines push patched tiles; decoupled layers update independently).
//
// Routes:
//
//	GET    /v1/layers                    -> ["base", "crowd-signs", ...]
//	GET    /v1/tiles/{layer}             -> [{"tx":..,"ty":..}, ...]
//	GET    /v1/tiles/{layer}/{tx}/{ty}   -> tile bytes (binary map)
//	PUT    /v1/tiles/{layer}/{tx}/{ty}   <- tile bytes
//	DELETE /v1/tiles/{layer}/{tx}/{ty}
//
// Concurrency follows the store's guarantees; the server adds a
// read-write mutex so a PUT is atomic relative to GETs of the same key.
type TileServer struct {
	store TileStore
	mu    sync.RWMutex
	// MaxTileBytes bounds accepted uploads (default 16 MiB).
	MaxTileBytes int64
}

// NewTileServer wraps a store.
func NewTileServer(store TileStore) *TileServer {
	return &TileServer{store: store, MaxTileBytes: 16 << 20}
}

// ServeHTTP implements http.Handler.
func (s *TileServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/")
	parts := strings.Split(path, "/")
	switch {
	case len(parts) == 2 && parts[0] == "v1" && parts[1] == "layers" && r.Method == http.MethodGet:
		s.handleLayers(w)
	case len(parts) == 3 && parts[0] == "v1" && parts[1] == "tiles" && r.Method == http.MethodGet:
		s.handleList(w, parts[2])
	case len(parts) == 5 && parts[0] == "v1" && parts[1] == "tiles":
		key, err := parseKey(parts[2], parts[3], parts[4])
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			s.handleGet(w, key)
		case http.MethodPut:
			s.handlePut(w, r, key)
		case http.MethodDelete:
			s.handleDelete(w, key)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

func parseKey(layer, txs, tys string) (TileKey, error) {
	if layer == "" {
		return TileKey{}, errors.New("empty layer")
	}
	tx, err := strconv.ParseInt(txs, 10, 32)
	if err != nil {
		return TileKey{}, fmt.Errorf("bad tx: %w", err)
	}
	ty, err := strconv.ParseInt(tys, 10, 32)
	if err != nil {
		return TileKey{}, fmt.Errorf("bad ty: %w", err)
	}
	return TileKey{Layer: layer, TX: int32(tx), TY: int32(ty)}, nil
}

func (s *TileServer) handleLayers(w http.ResponseWriter) {
	// Layers are discovered from the store by probing known keys; the
	// TileStore interface lists per layer, so servers track layers by
	// convention: a meta key per layer would be overkill for this use,
	// and MemStore/DirStore iterate cheaply.
	s.mu.RLock()
	defer s.mu.RUnlock()
	layers := map[string]bool{}
	switch st := s.store.(type) {
	case *MemStore:
		st.mu.RLock()
		for k := range st.tiles {
			layers[k.Layer] = true
		}
		st.mu.RUnlock()
	case *DirStore:
		ents, err := listDirLayers(st.root)
		if err == nil {
			for _, l := range ents {
				layers[l] = true
			}
		}
	}
	out := make([]string, 0, len(layers))
	for l := range layers {
		out = append(out, l)
	}
	sortStrings(out)
	writeJSON(w, out)
}

func (s *TileServer) handleList(w http.ResponseWriter, layer string) {
	s.mu.RLock()
	keys, err := s.store.Keys(layer)
	s.mu.RUnlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	type entry struct {
		TX int32 `json:"tx"`
		TY int32 `json:"ty"`
	}
	out := make([]entry, len(keys))
	for i, k := range keys {
		out[i] = entry{TX: k.TX, TY: k.TY}
	}
	writeJSON(w, out)
}

func (s *TileServer) handleGet(w http.ResponseWriter, key TileKey) {
	s.mu.RLock()
	data, err := s.store.Get(key)
	s.mu.RUnlock()
	if errors.Is(err, ErrNoTile) {
		http.Error(w, "tile not found", http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (s *TileServer) handlePut(w http.ResponseWriter, r *http.Request, key TileKey) {
	limit := s.MaxTileBytes
	if limit <= 0 {
		limit = 16 << 20
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if int64(len(data)) > limit {
		http.Error(w, "tile too large", http.StatusRequestEntityTooLarge)
		return
	}
	// Tiles must decode as maps: the server refuses corrupt uploads so a
	// bad producer cannot poison consumers.
	if _, err := DecodeBinary(data); err != nil {
		http.Error(w, fmt.Sprintf("invalid tile: %v", err), http.StatusUnprocessableEntity)
		return
	}
	s.mu.Lock()
	err = s.store.Put(key, data)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *TileServer) handleDelete(w http.ResponseWriter, key TileKey) {
	s.mu.Lock()
	err := s.store.Delete(key)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// listDirLayers returns the layer directories of a DirStore root.
func listDirLayers(root string) ([]string, error) {
	ents, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	return out, nil
}

// Client pulls tiles from a TileServer — the vehicle-side consumer.
type Client struct {
	// Base is the server URL, e.g. "http://maps.internal:8080".
	Base string
	// HTTP is the client to use (http.DefaultClient when nil).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Layers lists the server's layers.
func (c *Client) Layers() ([]string, error) {
	resp, err := c.http().Get(c.Base + "/v1/layers")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("storage client: layers: %s", resp.Status)
	}
	var out []string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// GetTile fetches one tile's bytes; ErrNoTile when absent.
func (c *Client) GetTile(key TileKey) ([]byte, error) {
	url := fmt.Sprintf("%s/v1/tiles/%s/%d/%d", c.Base, key.Layer, key.TX, key.TY)
	resp, err := c.http().Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("%v: %w", key, ErrNoTile)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("storage client: get tile: %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// PutTile uploads one tile.
func (c *Client) PutTile(key TileKey, data []byte) error {
	url := fmt.Sprintf("%s/v1/tiles/%s/%d/%d", c.Base, key.Layer, key.TX, key.TY)
	req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(string(data)))
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("storage client: put tile: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}

// FetchRegion downloads all tiles of a layer whose coordinates fall in
// [tx0,tx1]×[ty0,ty1] and stitches them into one map — the vehicle's
// map-region pull.
func (c *Client) FetchRegion(layer string, tx0, ty0, tx1, ty1 int32, name string) (*core.Map, error) {
	resp, err := c.http().Get(c.Base + "/v1/tiles/" + layer)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("storage client: list tiles: %s", resp.Status)
	}
	var keys []struct {
		TX int32 `json:"tx"`
		TY int32 `json:"ty"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&keys); err != nil {
		return nil, err
	}
	store := NewMemStore()
	found := 0
	for _, k := range keys {
		if k.TX < tx0 || k.TX > tx1 || k.TY < ty0 || k.TY > ty1 {
			continue
		}
		key := TileKey{Layer: layer, TX: k.TX, TY: k.TY}
		data, err := c.GetTile(key)
		if err != nil {
			return nil, err
		}
		if err := store.Put(key, data); err != nil {
			return nil, err
		}
		found++
	}
	if found == 0 {
		return nil, fmt.Errorf("region empty: %w", ErrNoTile)
	}
	return Tiler{}.LoadMap(store, layer, name)
}
