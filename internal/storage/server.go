package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"hdmaps/internal/obs"
)

// ChecksumHeader carries the CRC32-C (Castagnoli) checksum of a tile
// payload, as lowercase hex. The server sets it on every tile GET so
// clients can verify integrity end-to-end; clients set it on PUT so the
// server can reject uploads corrupted in transit before they ever reach
// the store.
const ChecksumHeader = "X-Tile-Crc32c"

// TransientHeader marks a 4xx response as caused by in-transit damage
// rather than a bad request, telling clients the attempt is worth
// retrying.
const TransientHeader = "X-Tile-Transient"

// castagnoli is the CRC32-C table used for tile checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32-C of a tile payload, formatted for
// ChecksumHeader.
func Checksum(data []byte) string {
	return fmt.Sprintf("%08x", crc32.Checksum(data, castagnoli))
}

// TileServer exposes a TileStore over HTTP — the central map-distribution
// node of the ecosystem (vehicles pull tiles for their region; update
// pipelines push patched tiles; decoupled layers update independently).
//
// Routes:
//
//	GET    /v1/layers                    -> ["base", "crowd-signs", ...]
//	GET    /v1/tiles/{layer}             -> [{"tx":..,"ty":..}, ...]
//	GET    /v1/tiles/{layer}/{tx}/{ty}   -> tile bytes (binary map)
//	PUT    /v1/tiles/{layer}/{tx}/{ty}   <- tile bytes
//	DELETE /v1/tiles/{layer}/{tx}/{ty}
//
// Tile GETs carry a ChecksumHeader; error responses have a JSON body
// {"error": "..."}. Concurrency follows the store's guarantees; the
// server adds a read-write mutex so a PUT is atomic relative to GETs of
// the same key.
type TileServer struct {
	store TileStore
	mu    sync.RWMutex
	// sums remembers each tile's checksum as computed at PUT time. A GET
	// serves the write-time checksum when one is known, so corruption at
	// rest (a flaky disk between Put and Get) is detectable by clients —
	// a checksum recomputed over already-damaged bytes would vouch for
	// the damage.
	sums map[TileKey]string
	// clocks remembers each tile's logical clock as decoded at PUT time,
	// so digest computation does not re-decode every payload per sweep.
	clocks map[TileKey]uint64
	// tombs holds the per-key deletion markers (keyed by the *live* key)
	// backing the tomb-- shadow layers. A key is in exactly one of three
	// states under mu: live (store has it), tombstoned (tombs has it), or
	// absent (neither).
	tombs map[TileKey]tombRecord
	// MaxTileBytes bounds accepted uploads (default 16 MiB).
	MaxTileBytes int64
}

// tombRecord is a decoded deletion marker plus its canonical bytes and
// write-time checksum, cached so GETs and digests never re-decode.
type tombRecord struct {
	ts   Tombstone
	sum  string
	data []byte
}

// NewTileServer wraps a store. Any tomb-- shadow layers already in the
// store (a directory store surviving a restart) are rescanned so the
// per-key deletion state comes back with the data; unreadable markers
// are skipped best-effort — anti-entropy re-propagates them.
func NewTileServer(store TileStore) *TileServer {
	s := &TileServer{
		store:        store,
		sums:         make(map[TileKey]string),
		clocks:       make(map[TileKey]uint64),
		tombs:        make(map[TileKey]tombRecord),
		MaxTileBytes: 16 << 20,
	}
	layers, err := store.ListLayers()
	if err != nil {
		return s
	}
	for _, l := range layers {
		if !strings.HasPrefix(l, TombLayerPrefix) {
			continue
		}
		keys, err := store.Keys(l)
		if err != nil {
			continue
		}
		for _, k := range keys {
			data, err := store.Get(k)
			if err != nil {
				continue
			}
			ts, err := DecodeTombstone(data)
			live := TileKey{Layer: strings.TrimPrefix(l, TombLayerPrefix), TX: k.TX, TY: k.TY}
			if err != nil || ts.Key() != live {
				continue
			}
			// A crash mid-mutation can leave both a marker and a live tile
			// on disk: handlePut installs the live tile before removing the
			// shadow marker, and putTombstone installs the marker before
			// removing the live tile. Resurrecting a dominated marker would
			// make conditional writes and digests disagree with GET, so
			// finish whichever cleanup was interrupted instead: the
			// FresherState winner stays, the loser is deleted.
			if ld, lerr := store.Get(live); lerr == nil {
				if clock, cerr := PeekClock(ld); cerr == nil &&
					FresherState(false, clock, ld, true, ts.Clock, data) {
					_ = store.Delete(k)
					continue
				}
				_ = store.Delete(live)
			}
			s.tombs[live] = tombRecord{ts: ts, sum: Checksum(data), data: data}
		}
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *TileServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Echo the caller's trace ID (or mint one for untraced requests) so
	// error bodies and logs can be correlated even when the server runs
	// bare, without the resilience wrapper in front. The wrapper sets
	// the same header first, in which case this re-set is a no-op.
	r, trace := obs.EnsureRequestTrace(r)
	w.Header().Set(obs.TraceHeader, trace)
	path := strings.TrimPrefix(r.URL.Path, "/")
	parts := strings.Split(path, "/")
	switch {
	case len(parts) == 2 && parts[0] == "v1" && parts[1] == "layers":
		if r.Method != http.MethodGet {
			writeJSONError(w, http.StatusMethodNotAllowed, "method not allowed")
			return
		}
		s.handleLayers(w)
	case len(parts) == 3 && parts[0] == "v1" && parts[1] == "tiles":
		if r.Method != http.MethodGet {
			writeJSONError(w, http.StatusMethodNotAllowed, "method not allowed")
			return
		}
		s.handleList(w, parts[2])
	case len(parts) == 3 && parts[0] == "v1" && parts[1] == "digest":
		if r.Method != http.MethodGet {
			writeJSONError(w, http.StatusMethodNotAllowed, "method not allowed")
			return
		}
		s.handleDigest(w, r, parts[2])
	case len(parts) == 5 && parts[0] == "v1" && parts[1] == "tiles":
		key, err := parseKey(parts[2], parts[3], parts[4])
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, err.Error())
			return
		}
		switch r.Method {
		case http.MethodGet:
			s.handleGet(w, key)
		case http.MethodPut:
			s.handlePut(w, r, key)
		case http.MethodDelete:
			s.handleDelete(w, r, key)
		default:
			writeJSONError(w, http.StatusMethodNotAllowed, "method not allowed")
		}
	default:
		writeJSONError(w, http.StatusNotFound, "not found")
	}
}

func parseKey(layer, txs, tys string) (TileKey, error) {
	if layer == "" {
		return TileKey{}, errors.New("empty layer")
	}
	tx, err := strconv.ParseInt(txs, 10, 32)
	if err != nil {
		return TileKey{}, fmt.Errorf("bad tx: %w", err)
	}
	ty, err := strconv.ParseInt(tys, 10, 32)
	if err != nil {
		return TileKey{}, fmt.Errorf("bad ty: %w", err)
	}
	return TileKey{Layer: layer, TX: int32(tx), TY: int32(ty)}, nil
}

func (s *TileServer) handleLayers(w http.ResponseWriter) {
	s.mu.RLock()
	layers, err := s.store.ListLayers()
	s.mu.RUnlock()
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if layers == nil {
		layers = []string{}
	}
	writeJSON(w, layers)
}

func (s *TileServer) handleList(w http.ResponseWriter, layer string) {
	s.mu.RLock()
	keys, err := s.store.Keys(layer)
	s.mu.RUnlock()
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	type entry struct {
		TX int32 `json:"tx"`
		TY int32 `json:"ty"`
	}
	out := make([]entry, len(keys))
	for i, k := range keys {
		out[i] = entry{TX: k.TX, TY: k.TY}
	}
	writeJSON(w, out)
}

func (s *TileServer) handleGet(w http.ResponseWriter, key TileKey) {
	s.mu.RLock()
	data, err := s.store.Get(key)
	sum, haveSum := s.sums[key]
	tr, haveTomb := s.tombs[key]
	s.mu.RUnlock()
	if errors.Is(err, ErrNoTile) {
		if haveTomb {
			// Deleted, not merely absent: a 404 carrying the deletion
			// clock and the exact marker bytes, so a cluster router can
			// distinguish "never had it" from "removed at clock c" and
			// propagate the marker to replicas that missed the delete.
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set(ChecksumHeader, tr.sum)
			w.Header().Set(TombstoneHeader, strconv.FormatUint(tr.ts.Clock, 10))
			w.WriteHeader(http.StatusNotFound)
			_, _ = w.Write(tr.data)
			return
		}
		writeJSONError(w, http.StatusNotFound, "tile not found")
		return
	}
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if !haveSum {
		// Tile predates this server instance (loaded out of band): the
		// best available checksum is over what the store returned now.
		sum = Checksum(data)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(ChecksumHeader, sum)
	_, _ = w.Write(data)
}

func (s *TileServer) handlePut(w http.ResponseWriter, r *http.Request, key TileKey) {
	limit := s.MaxTileBytes
	if limit <= 0 {
		limit = 16 << 20
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	if int64(len(data)) > limit {
		writeJSONError(w, http.StatusRequestEntityTooLarge, "tile too large")
		return
	}
	// A checksum mismatch means the payload was damaged in transit — the
	// uploader should retry, so refuse before the decode check and mark
	// the failure retryable for well-behaved clients.
	if want := r.Header.Get(ChecksumHeader); want != "" && want != Checksum(data) {
		w.Header().Set(TransientHeader, "checksum-mismatch")
		writeJSONError(w, http.StatusBadRequest,
			fmt.Sprintf("checksum mismatch: got %s want %s", Checksum(data), want))
		return
	}
	if strings.HasPrefix(key.Layer, TombLayerPrefix) {
		// Shadow layers change only through tombstone writes on the live
		// key; a direct write could desynchronise marker and state.
		writeJSONError(w, http.StatusUnprocessableEntity, "reserved layer")
		return
	}
	if strings.HasPrefix(key.Layer, HintLayerPrefix) {
		s.putHintCopy(w, key, data)
		return
	}
	if IsTombstone(data) {
		ts, err := DecodeTombstone(data)
		if err != nil {
			writeJSONError(w, http.StatusUnprocessableEntity, fmt.Sprintf("invalid tombstone: %v", err))
			return
		}
		s.putTombstone(w, r, key, ts, data)
		return
	}
	// Tiles must decode as maps: the server refuses corrupt uploads so a
	// bad producer cannot poison consumers.
	if _, err := DecodeBinary(data); err != nil {
		writeJSONError(w, http.StatusUnprocessableEntity, fmt.Sprintf("invalid tile: %v", err))
		return
	}
	clock, err := PeekClock(data)
	if err != nil {
		writeJSONError(w, http.StatusUnprocessableEntity, fmt.Sprintf("invalid tile: %v", err))
		return
	}
	s.mu.Lock()
	cur, curData := s.stateLocked(key)
	if !s.checkExpectLocked(w, r, cur) {
		s.mu.Unlock()
		return
	}
	if cur.Tomb && !FresherState(false, clock, data, true, cur.Clock, curData) {
		// Resurrection guard: a write that does not dominate the local
		// tombstone is a replay of something the delete already erased.
		s.mu.Unlock()
		w.Header().Set(StateHeader, cur.String())
		writeJSONError(w, http.StatusConflict, "write superseded by tombstone")
		return
	}
	err = s.store.Put(key, data)
	if err == nil {
		s.sums[key] = Checksum(data)
		s.clocks[key] = clock
		if cur.Tomb {
			_ = s.store.Delete(TileKey{Layer: tombLayer(key.Layer), TX: key.TX, TY: key.TY})
			delete(s.tombs, key)
		}
	}
	s.mu.Unlock()
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// putHintCopy parks a handoff payload raw under a hint-- layer. Both
// tile and tombstone bytes are accepted — a durable delete hint *is* a
// parked marker — but the payload must decode as one of the two, so a
// damaged copy cannot later replay as garbage.
func (s *TileServer) putHintCopy(w http.ResponseWriter, key TileKey, data []byte) {
	if _, terr := DecodeTombstone(data); terr != nil {
		if _, err := DecodeBinary(data); err != nil {
			writeJSONError(w, http.StatusUnprocessableEntity, fmt.Sprintf("invalid hint payload: %v", err))
			return
		}
	}
	s.mu.Lock()
	err := s.store.Put(key, data)
	if err == nil {
		s.sums[key] = Checksum(data)
	}
	s.mu.Unlock()
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// putTombstone applies a deletion marker to a live key: the marker is
// stored under the tomb-- shadow layer and the live tile (if any) is
// removed, atomically with the Expect precondition under s.mu.
func (s *TileServer) putTombstone(w http.ResponseWriter, r *http.Request, key TileKey, ts Tombstone, data []byte) {
	if ts.Key() != key {
		writeJSONError(w, http.StatusUnprocessableEntity,
			fmt.Sprintf("tombstone key %v does not match %v", ts.Key(), key))
		return
	}
	s.mu.Lock()
	cur, curData := s.stateLocked(key)
	if !s.checkExpectLocked(w, r, cur) {
		s.mu.Unlock()
		return
	}
	if cur.Tomb && !FresherState(true, ts.Clock, data, true, cur.Clock, curData) {
		// An equal-or-fresher marker is already here — idempotent ack.
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if cur.Found && !FresherState(true, ts.Clock, data, false, cur.Clock, curData) {
		// The live tile postdates the delete: the marker is obsolete and
		// must not erase newer data. 409 tells the router "acked, but
		// superseded" — distinct from a precondition mismatch.
		s.mu.Unlock()
		w.Header().Set(StateHeader, cur.String())
		writeJSONError(w, http.StatusConflict, "tombstone superseded by newer tile")
		return
	}
	err := s.store.Put(TileKey{Layer: tombLayer(key.Layer), TX: key.TX, TY: key.TY}, data)
	if err == nil && cur.Found {
		err = s.store.Delete(key)
	}
	if err == nil {
		delete(s.sums, key)
		delete(s.clocks, key)
		s.tombs[key] = tombRecord{ts: ts, sum: Checksum(data), data: data}
	}
	s.mu.Unlock()
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *TileServer) handleDelete(w http.ResponseWriter, r *http.Request, key TileKey) {
	s.mu.Lock()
	cur, _ := s.stateLocked(key)
	if !s.checkExpectLocked(w, r, cur) {
		s.mu.Unlock()
		return
	}
	var err error
	if cur.Tomb && r.Header.Get(ExpectHeader) != "" {
		// Conditional delete of a tombstoned key is marker GC: the caller
		// proved it observed exactly this marker, so reclaiming it cannot
		// lose a deletion some replica still needs.
		err = s.store.Delete(TileKey{Layer: tombLayer(key.Layer), TX: key.TX, TY: key.TY})
		if err == nil {
			delete(s.tombs, key)
		}
	} else {
		err = s.store.Delete(key)
		if err == nil {
			delete(s.sums, key)
			delete(s.clocks, key)
		}
	}
	s.mu.Unlock()
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// stateLocked returns the key's current conditional-write state and,
// for live/tombstoned keys, the payload bytes backing same-clock
// tie-breaks. Caller holds s.mu.
func (s *TileServer) stateLocked(key TileKey) (ReplicaState, []byte) {
	if tr, ok := s.tombs[key]; ok {
		return ReplicaState{Tomb: true, Clock: tr.ts.Clock, Sum: tr.sum}, tr.data
	}
	data, err := s.store.Get(key)
	if err != nil {
		return ReplicaState{}, nil
	}
	sum, ok := s.sums[key]
	if !ok {
		sum = Checksum(data)
		s.sums[key] = sum
	}
	clock, ok := s.clocks[key]
	if !ok {
		if c, perr := PeekClock(data); perr == nil {
			clock = c
			s.clocks[key] = c
		}
	}
	return ReplicaState{Found: true, Clock: clock, Sum: sum}, data
}

// checkExpectLocked evaluates the ExpectHeader precondition against the
// current state; on mismatch it answers 412 with the observed state in
// StateHeader and returns false. Caller holds s.mu, so the check is
// atomic with whatever mutation follows.
func (s *TileServer) checkExpectLocked(w http.ResponseWriter, r *http.Request, cur ReplicaState) bool {
	v := r.Header.Get(ExpectHeader)
	if v == "" {
		return true
	}
	want, err := ParseReplicaState(v)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return false
	}
	match := want.Tomb == cur.Tomb && want.Found == cur.Found && want.Clock == cur.Clock &&
		(!want.Found || want.Sum == cur.Sum)
	if !match {
		w.Header().Set(StateHeader, cur.String())
		writeJSONError(w, http.StatusPreconditionFailed, "state is "+cur.String()+", expected "+want.String())
		return false
	}
	return true
}

// writeJSON sends a JSON body with a ChecksumHeader so clients can
// detect in-transit damage to metadata (a corrupted tile list is as
// dangerous as a corrupted tile). The body is marshalled *before* any
// header or status reaches the wire: an encode failure must be free to
// switch to a 500 error response, which is impossible once WriteHeader
// has fired.
func writeJSON(w http.ResponseWriter, v interface{}) {
	data, err := json.Marshal(v)
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	data = append(data, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(ChecksumHeader, Checksum(data))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// writeJSONError sends {"error": msg} with the given status so clients
// can distinguish structured failures from tile payloads. The body is
// encoded before the status is written; if the message itself cannot
// be marshalled (it never should — but an error path must not have
// error paths) a canned body is served instead of calling WriteHeader
// twice.
// The trace ID already stamped on the response header is repeated in
// the body, so a client that dropped the headers still has the join
// key for a support report.
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	body := map[string]string{"error": msg}
	if trace := w.Header().Get(obs.TraceHeader); trace != "" {
		body["trace_id"] = trace
	}
	data, err := json.Marshal(body)
	if err != nil {
		data = []byte(`{"error":"internal error"}`)
	}
	data = append(data, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(data)
}
