package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"hdmaps/internal/obs"
)

// ChecksumHeader carries the CRC32-C (Castagnoli) checksum of a tile
// payload, as lowercase hex. The server sets it on every tile GET so
// clients can verify integrity end-to-end; clients set it on PUT so the
// server can reject uploads corrupted in transit before they ever reach
// the store.
const ChecksumHeader = "X-Tile-Crc32c"

// TransientHeader marks a 4xx response as caused by in-transit damage
// rather than a bad request, telling clients the attempt is worth
// retrying.
const TransientHeader = "X-Tile-Transient"

// castagnoli is the CRC32-C table used for tile checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32-C of a tile payload, formatted for
// ChecksumHeader.
func Checksum(data []byte) string {
	return fmt.Sprintf("%08x", crc32.Checksum(data, castagnoli))
}

// TileServer exposes a TileStore over HTTP — the central map-distribution
// node of the ecosystem (vehicles pull tiles for their region; update
// pipelines push patched tiles; decoupled layers update independently).
//
// Routes:
//
//	GET    /v1/layers                    -> ["base", "crowd-signs", ...]
//	GET    /v1/tiles/{layer}             -> [{"tx":..,"ty":..}, ...]
//	GET    /v1/tiles/{layer}/{tx}/{ty}   -> tile bytes (binary map)
//	PUT    /v1/tiles/{layer}/{tx}/{ty}   <- tile bytes
//	DELETE /v1/tiles/{layer}/{tx}/{ty}
//
// Tile GETs carry a ChecksumHeader; error responses have a JSON body
// {"error": "..."}. Concurrency follows the store's guarantees; the
// server adds a read-write mutex so a PUT is atomic relative to GETs of
// the same key.
type TileServer struct {
	store TileStore
	mu    sync.RWMutex
	// sums remembers each tile's checksum as computed at PUT time. A GET
	// serves the write-time checksum when one is known, so corruption at
	// rest (a flaky disk between Put and Get) is detectable by clients —
	// a checksum recomputed over already-damaged bytes would vouch for
	// the damage.
	sums map[TileKey]string
	// MaxTileBytes bounds accepted uploads (default 16 MiB).
	MaxTileBytes int64
}

// NewTileServer wraps a store.
func NewTileServer(store TileStore) *TileServer {
	return &TileServer{store: store, sums: make(map[TileKey]string), MaxTileBytes: 16 << 20}
}

// ServeHTTP implements http.Handler.
func (s *TileServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Echo the caller's trace ID (or mint one for untraced requests) so
	// error bodies and logs can be correlated even when the server runs
	// bare, without the resilience wrapper in front. The wrapper sets
	// the same header first, in which case this re-set is a no-op.
	r, trace := obs.EnsureRequestTrace(r)
	w.Header().Set(obs.TraceHeader, trace)
	path := strings.TrimPrefix(r.URL.Path, "/")
	parts := strings.Split(path, "/")
	switch {
	case len(parts) == 2 && parts[0] == "v1" && parts[1] == "layers":
		if r.Method != http.MethodGet {
			writeJSONError(w, http.StatusMethodNotAllowed, "method not allowed")
			return
		}
		s.handleLayers(w)
	case len(parts) == 3 && parts[0] == "v1" && parts[1] == "tiles":
		if r.Method != http.MethodGet {
			writeJSONError(w, http.StatusMethodNotAllowed, "method not allowed")
			return
		}
		s.handleList(w, parts[2])
	case len(parts) == 5 && parts[0] == "v1" && parts[1] == "tiles":
		key, err := parseKey(parts[2], parts[3], parts[4])
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, err.Error())
			return
		}
		switch r.Method {
		case http.MethodGet:
			s.handleGet(w, key)
		case http.MethodPut:
			s.handlePut(w, r, key)
		case http.MethodDelete:
			s.handleDelete(w, key)
		default:
			writeJSONError(w, http.StatusMethodNotAllowed, "method not allowed")
		}
	default:
		writeJSONError(w, http.StatusNotFound, "not found")
	}
}

func parseKey(layer, txs, tys string) (TileKey, error) {
	if layer == "" {
		return TileKey{}, errors.New("empty layer")
	}
	tx, err := strconv.ParseInt(txs, 10, 32)
	if err != nil {
		return TileKey{}, fmt.Errorf("bad tx: %w", err)
	}
	ty, err := strconv.ParseInt(tys, 10, 32)
	if err != nil {
		return TileKey{}, fmt.Errorf("bad ty: %w", err)
	}
	return TileKey{Layer: layer, TX: int32(tx), TY: int32(ty)}, nil
}

func (s *TileServer) handleLayers(w http.ResponseWriter) {
	s.mu.RLock()
	layers, err := s.store.ListLayers()
	s.mu.RUnlock()
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if layers == nil {
		layers = []string{}
	}
	writeJSON(w, layers)
}

func (s *TileServer) handleList(w http.ResponseWriter, layer string) {
	s.mu.RLock()
	keys, err := s.store.Keys(layer)
	s.mu.RUnlock()
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	type entry struct {
		TX int32 `json:"tx"`
		TY int32 `json:"ty"`
	}
	out := make([]entry, len(keys))
	for i, k := range keys {
		out[i] = entry{TX: k.TX, TY: k.TY}
	}
	writeJSON(w, out)
}

func (s *TileServer) handleGet(w http.ResponseWriter, key TileKey) {
	s.mu.RLock()
	data, err := s.store.Get(key)
	sum, haveSum := s.sums[key]
	s.mu.RUnlock()
	if errors.Is(err, ErrNoTile) {
		writeJSONError(w, http.StatusNotFound, "tile not found")
		return
	}
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if !haveSum {
		// Tile predates this server instance (loaded out of band): the
		// best available checksum is over what the store returned now.
		sum = Checksum(data)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(ChecksumHeader, sum)
	_, _ = w.Write(data)
}

func (s *TileServer) handlePut(w http.ResponseWriter, r *http.Request, key TileKey) {
	limit := s.MaxTileBytes
	if limit <= 0 {
		limit = 16 << 20
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	if int64(len(data)) > limit {
		writeJSONError(w, http.StatusRequestEntityTooLarge, "tile too large")
		return
	}
	// A checksum mismatch means the payload was damaged in transit — the
	// uploader should retry, so refuse before the decode check and mark
	// the failure retryable for well-behaved clients.
	if want := r.Header.Get(ChecksumHeader); want != "" && want != Checksum(data) {
		w.Header().Set(TransientHeader, "checksum-mismatch")
		writeJSONError(w, http.StatusBadRequest,
			fmt.Sprintf("checksum mismatch: got %s want %s", Checksum(data), want))
		return
	}
	// Tiles must decode as maps: the server refuses corrupt uploads so a
	// bad producer cannot poison consumers.
	if _, err := DecodeBinary(data); err != nil {
		writeJSONError(w, http.StatusUnprocessableEntity, fmt.Sprintf("invalid tile: %v", err))
		return
	}
	s.mu.Lock()
	err = s.store.Put(key, data)
	if err == nil {
		s.sums[key] = Checksum(data)
	}
	s.mu.Unlock()
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *TileServer) handleDelete(w http.ResponseWriter, key TileKey) {
	s.mu.Lock()
	err := s.store.Delete(key)
	if err == nil {
		delete(s.sums, key)
	}
	s.mu.Unlock()
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// writeJSON sends a JSON body with a ChecksumHeader so clients can
// detect in-transit damage to metadata (a corrupted tile list is as
// dangerous as a corrupted tile). The body is marshalled *before* any
// header or status reaches the wire: an encode failure must be free to
// switch to a 500 error response, which is impossible once WriteHeader
// has fired.
func writeJSON(w http.ResponseWriter, v interface{}) {
	data, err := json.Marshal(v)
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	data = append(data, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(ChecksumHeader, Checksum(data))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// writeJSONError sends {"error": msg} with the given status so clients
// can distinguish structured failures from tile payloads. The body is
// encoded before the status is written; if the message itself cannot
// be marshalled (it never should — but an error path must not have
// error paths) a canned body is served instead of calling WriteHeader
// twice.
// The trace ID already stamped on the response header is repeated in
// the body, so a client that dropped the headers still has the join
// key for a support report.
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	body := map[string]string{"error": msg}
	if trace := w.Header().Get(obs.TraceHeader); trace != "" {
		body["trace_id"] = trace
	}
	data, err := json.Marshal(body)
	if err != nil {
		data = []byte(`{"error":"internal error"}`)
	}
	data = append(data, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(data)
}
