package storage

import (
	"bytes"
	"fmt"
)

// PeekClock reads the logical clock out of an encoded tile without
// decoding the elements — the binary header is magic, version, name,
// clock, so the read touches a handful of bytes. The cluster router
// compares replica freshness on every quorum read, where a full
// DecodeBinary per replica would dominate the read path.
func PeekClock(data []byte) (uint64, error) {
	r := &reader{buf: bytes.NewReader(data)}
	magic, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if magic != binaryMagic {
		return 0, fmt.Errorf("magic %x: %w", magic, ErrBadFormat)
	}
	version, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if version != binaryVersion {
		return 0, fmt.Errorf("version %d: %w", version, ErrVersion)
	}
	if _, err := r.str(); err != nil {
		return 0, err
	}
	return r.uvarint()
}
