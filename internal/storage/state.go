package storage

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Cluster-internal layer prefixes. Layers carrying these prefixes are
// machinery, not map data: hint-- layers park hinted-handoff copies on
// fallback nodes, tomb-- layers hold deletion markers shadowing their
// live layer. Both are hidden from client-facing listings; the tile
// server stores hint-layer payloads raw (tile or tombstone bytes) and
// refuses direct writes to tomb-- layers, whose contents only change
// through tombstone writes on the live key.
const (
	HintLayerPrefix = "hint--"
	TombLayerPrefix = "tomb--"
)

// IsInternalLayer reports whether a layer name is cluster machinery
// (handoff or tombstone storage) rather than map data.
func IsInternalLayer(name string) bool {
	return strings.HasPrefix(name, HintLayerPrefix) || strings.HasPrefix(name, TombLayerPrefix)
}

// tombLayer names the shadow layer holding deletion markers for layer.
func tombLayer(layer string) string { return TombLayerPrefix + layer }

// TombstoneHeader marks a 404 tile response as "deleted, not absent":
// its value is the deletion clock and the response body is the marker
// bytes (checksummed via ChecksumHeader as usual), so a cluster router
// can propagate the exact marker to stale replicas.
const TombstoneHeader = "X-Tile-Tombstone"

// ExpectHeader carries a conditional-write precondition on PUT/DELETE:
// the state the caller observed, in ReplicaState.String() form. The shard
// evaluates it atomically with the mutation and answers 412 (with the
// current state in StateHeader) on mismatch — this is what closes the
// read-then-overwrite race in cluster repair.
const ExpectHeader = "X-Tile-Expect"

// StateHeader reports a shard's current per-key state on 409/412
// responses, in ReplicaState.String() form.
const StateHeader = "X-Tile-State"

// ReplicaState is one replica's per-key state as used by conditional
// writes: absent, a live tile (clock + write-time checksum), or a
// tombstone (deletion clock). Found and Tomb are mutually exclusive.
type ReplicaState struct {
	Found bool
	Tomb  bool
	Clock uint64
	Sum   string
}

// String renders the state for ExpectHeader/StateHeader:
// "absent", "live:<clock>:<crc>", or "tomb:<clock>".
func (s ReplicaState) String() string {
	switch {
	case s.Tomb:
		return "tomb:" + strconv.FormatUint(s.Clock, 10)
	case s.Found:
		return "live:" + strconv.FormatUint(s.Clock, 10) + ":" + s.Sum
	default:
		return "absent"
	}
}

// ParseReplicaState parses a ReplicaState.String() value.
func ParseReplicaState(v string) (ReplicaState, error) {
	switch {
	case v == "absent":
		return ReplicaState{}, nil
	case strings.HasPrefix(v, "tomb:"):
		clock, err := strconv.ParseUint(v[len("tomb:"):], 10, 64)
		if err != nil {
			return ReplicaState{}, fmt.Errorf("bad tombstone state %q: %w", v, err)
		}
		return ReplicaState{Tomb: true, Clock: clock}, nil
	case strings.HasPrefix(v, "live:"):
		rest := v[len("live:"):]
		i := strings.IndexByte(rest, ':')
		if i < 0 {
			return ReplicaState{}, fmt.Errorf("bad live state %q", v)
		}
		clock, err := strconv.ParseUint(rest[:i], 10, 64)
		if err != nil {
			return ReplicaState{}, fmt.Errorf("bad live state %q: %w", v, err)
		}
		return ReplicaState{Found: true, Clock: clock, Sum: rest[i+1:]}, nil
	default:
		return ReplicaState{}, errors.New("bad tile state " + strconv.Quote(v))
	}
}

// FresherState is the cluster's total order over per-key replica
// states, extended to deletions: logical clock first; on a clock tie a
// tombstone beats a live tile (a delete at clock c cannot be undone by
// a write at the same c); same-kind ties fall to bytes.Compare on the
// payload. The order is deterministic, so every quorum read, repair,
// and anti-entropy sweep picks the same winner and replicas converge
// byte-identical — including agreeing on which keys are deleted.
func FresherState(tombA bool, clockA uint64, dataA []byte, tombB bool, clockB uint64, dataB []byte) bool {
	if clockA != clockB {
		return clockA > clockB
	}
	if tombA != tombB {
		return tombA
	}
	return bytes.Compare(dataA, dataB) > 0
}
