package storage

import (
	"encoding/json"
	"fmt"

	"hdmaps/internal/core"
	"hdmaps/internal/geo"
)

// JSON interchange DTOs. The JSON codec trades size for inspectability;
// the binary codec is the storage format.

type jsonMap struct {
	Name     string       `json:"name"`
	Clock    uint64       `json:"clock"`
	Points   []jsonPoint  `json:"points,omitempty"`
	Lines    []jsonLine   `json:"lines,omitempty"`
	Areas    []jsonArea   `json:"areas,omitempty"`
	Lanelets []jsonLane   `json:"lanelets,omitempty"`
	Bundles  []jsonBundle `json:"bundles,omitempty"`
	Regs     []jsonReg    `json:"regulatory,omitempty"`
}

type jsonMeta struct {
	Version    int     `json:"v"`
	Stamp      uint64  `json:"t"`
	Confidence float64 `json:"conf"`
	Observy    int     `json:"obs,omitempty"`
	Source     string  `json:"src,omitempty"`
}

type jsonPoint struct {
	ID      core.ID           `json:"id"`
	Class   string            `json:"class"`
	Pos     [3]float64        `json:"pos"`
	Heading float64           `json:"heading,omitempty"`
	Attr    map[string]string `json:"attr,omitempty"`
	Meta    jsonMeta          `json:"meta"`
}

type jsonLine struct {
	ID       core.ID           `json:"id"`
	Class    string            `json:"class"`
	Boundary string            `json:"boundary,omitempty"`
	Geometry [][2]float64      `json:"geometry"`
	Attr     map[string]string `json:"attr,omitempty"`
	Meta     jsonMeta          `json:"meta"`
}

type jsonArea struct {
	ID      core.ID           `json:"id"`
	Class   string            `json:"class"`
	Outline [][2]float64      `json:"outline"`
	Attr    map[string]string `json:"attr,omitempty"`
	Meta    jsonMeta          `json:"meta"`
}

type jsonLane struct {
	ID         core.ID      `json:"id"`
	Left       core.ID      `json:"left"`
	Right      core.ID      `json:"right"`
	Centerline [][2]float64 `json:"centerline"`
	Type       string       `json:"type"`
	SpeedLimit float64      `json:"speed_limit,omitempty"`
	Successors []core.ID    `json:"successors,omitempty"`
	LeftNb     core.ID      `json:"left_neighbor,omitempty"`
	RightNb    core.ID      `json:"right_neighbor,omitempty"`
	Regulatory []core.ID    `json:"regulatory,omitempty"`
	Meta       jsonMeta     `json:"meta"`
}

type jsonBundle struct {
	ID       core.ID      `json:"id"`
	RoadID   int64        `json:"road_id"`
	Lanelets []core.ID    `json:"lanelets"`
	RefLine  [][2]float64 `json:"ref_line"`
	Meta     jsonMeta     `json:"meta"`
}

type jsonReg struct {
	ID       core.ID   `json:"id"`
	Kind     string    `json:"kind"`
	Devices  []core.ID `json:"devices,omitempty"`
	StopLine core.ID   `json:"stop_line,omitempty"`
	Lanelets []core.ID `json:"lanelets,omitempty"`
	Value    float64   `json:"value,omitempty"`
	Meta     jsonMeta  `json:"meta"`
}

func toJSONMeta(m core.Meta) jsonMeta {
	return jsonMeta{Version: m.Version, Stamp: m.Stamp, Confidence: m.Confidence, Observy: m.Observy, Source: m.Source}
}

func fromJSONMeta(m jsonMeta) core.Meta {
	return core.Meta{Version: m.Version, Stamp: m.Stamp, Confidence: m.Confidence, Observy: m.Observy, Source: m.Source}
}

func toPairs(pl geo.Polyline) [][2]float64 {
	out := make([][2]float64, len(pl))
	for i, p := range pl {
		out[i] = [2]float64{p.X, p.Y}
	}
	return out
}

func fromPairs(pairs [][2]float64) geo.Polyline {
	out := make(geo.Polyline, len(pairs))
	for i, p := range pairs {
		out[i] = geo.V2(p[0], p[1])
	}
	return out
}

var classByName = func() map[string]core.Class {
	out := make(map[string]core.Class)
	for c := core.Class(0); c.Valid(); c++ {
		out[c.String()] = c
	}
	return out
}()

// EncodeJSON serialises a map to indented JSON.
func EncodeJSON(m *core.Map) ([]byte, error) {
	jm := jsonMap{Name: m.Name, Clock: m.Clock}
	for _, id := range m.PointIDs() {
		p, _ := m.Point(id)
		jm.Points = append(jm.Points, jsonPoint{
			ID: p.ID, Class: p.Class.String(),
			Pos:     [3]float64{p.Pos.X, p.Pos.Y, p.Pos.Z},
			Heading: p.Heading, Attr: p.Attr, Meta: toJSONMeta(p.Meta),
		})
	}
	for _, id := range m.LineIDs() {
		l, _ := m.Line(id)
		jm.Lines = append(jm.Lines, jsonLine{
			ID: l.ID, Class: l.Class.String(), Boundary: l.Boundary.String(),
			Geometry: toPairs(l.Geometry), Attr: l.Attr, Meta: toJSONMeta(l.Meta),
		})
	}
	for _, id := range m.AreaIDs() {
		a, _ := m.Area(id)
		jm.Areas = append(jm.Areas, jsonArea{
			ID: a.ID, Class: a.Class.String(),
			Outline: toPairs(geo.Polyline(a.Outline)), Attr: a.Attr, Meta: toJSONMeta(a.Meta),
		})
	}
	for _, id := range m.LaneletIDs() {
		l, _ := m.Lanelet(id)
		jm.Lanelets = append(jm.Lanelets, jsonLane{
			ID: l.ID, Left: l.Left, Right: l.Right,
			Centerline: toPairs(l.Centerline), Type: l.Type.String(),
			SpeedLimit: l.SpeedLimit, Successors: l.Successors,
			LeftNb: l.LeftNeighbor, RightNb: l.RightNeighbor,
			Regulatory: l.Regulatory, Meta: toJSONMeta(l.Meta),
		})
	}
	for _, id := range m.BundleIDs() {
		b, _ := m.Bundle(id)
		jm.Bundles = append(jm.Bundles, jsonBundle{
			ID: b.ID, RoadID: b.RoadID, Lanelets: b.Lanelets,
			RefLine: toPairs(b.RefLine), Meta: toJSONMeta(b.Meta),
		})
	}
	for _, id := range m.RegulatoryIDs() {
		r, _ := m.Regulatory(id)
		jm.Regs = append(jm.Regs, jsonReg{
			ID: r.ID, Kind: r.Kind.String(), Devices: r.Devices,
			StopLine: r.StopLine, Lanelets: r.Lanelets, Value: r.Value,
			Meta: toJSONMeta(r.Meta),
		})
	}
	return json.MarshalIndent(jm, "", "  ")
}

var boundaryByName = map[string]core.BoundaryType{
	"unknown": core.BoundaryUnknown, "solid": core.BoundarySolid,
	"dashed": core.BoundaryDashed, "curb": core.BoundaryCurb,
	"virtual": core.BoundaryVirtual,
}

var laneTypeByName = map[string]core.LaneType{
	"driving": core.LaneDriving, "shoulder": core.LaneShoulder,
	"bike": core.LaneBike, "bus": core.LaneBus, "parking": core.LaneParking,
	"entry": core.LaneEntry, "exit": core.LaneExit,
}

var regKindByName = map[string]core.RegulatoryKind{
	"unknown": core.RegUnknown, "speed_limit": core.RegSpeedLimit,
	"stop": core.RegStop, "yield": core.RegYield,
	"traffic_light": core.RegTrafficLight,
}

// DecodeJSON parses a map from the JSON interchange format.
func DecodeJSON(data []byte) (*core.Map, error) {
	var jm jsonMap
	if err := json.Unmarshal(data, &jm); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	m := core.NewMap(jm.Name)
	m.SetClock(jm.Clock)
	for _, p := range jm.Points {
		if err := m.RestorePoint(core.PointElement{
			ID: p.ID, Class: classByName[p.Class],
			Pos:     geo.V3(p.Pos[0], p.Pos[1], p.Pos[2]),
			Heading: p.Heading, Attr: p.Attr, Meta: fromJSONMeta(p.Meta),
		}); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
	}
	for _, l := range jm.Lines {
		if err := m.RestoreLine(core.LineElement{
			ID: l.ID, Class: classByName[l.Class], Boundary: boundaryByName[l.Boundary],
			Geometry: fromPairs(l.Geometry), Attr: l.Attr, Meta: fromJSONMeta(l.Meta),
		}); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
	}
	for _, a := range jm.Areas {
		if err := m.RestoreArea(core.AreaElement{
			ID: a.ID, Class: classByName[a.Class],
			Outline: geo.Polygon(fromPairs(a.Outline)), Attr: a.Attr, Meta: fromJSONMeta(a.Meta),
		}); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
	}
	for _, l := range jm.Lanelets {
		if err := m.RestoreLanelet(core.Lanelet{
			ID: l.ID, Left: l.Left, Right: l.Right,
			Centerline: fromPairs(l.Centerline), Type: laneTypeByName[l.Type],
			SpeedLimit: l.SpeedLimit, Successors: l.Successors,
			LeftNeighbor: l.LeftNb, RightNeighbor: l.RightNb,
			Regulatory: l.Regulatory, Meta: fromJSONMeta(l.Meta),
		}); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
	}
	for _, b := range jm.Bundles {
		if err := m.RestoreBundle(core.LaneBundle{
			ID: b.ID, RoadID: b.RoadID, Lanelets: b.Lanelets,
			RefLine: fromPairs(b.RefLine), Meta: fromJSONMeta(b.Meta),
		}); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
	}
	for _, r := range jm.Regs {
		if err := m.RestoreRegulatory(core.RegulatoryElement{
			ID: r.ID, Kind: regKindByName[r.Kind], Devices: r.Devices,
			StopLine: r.StopLine, Lanelets: r.Lanelets, Value: r.Value,
			Meta: fromJSONMeta(r.Meta),
		}); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
	}
	return m, nil
}
