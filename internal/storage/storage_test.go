package storage

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hdmaps/internal/core"
	"hdmaps/internal/geo"
	"hdmaps/internal/worldgen"
)

func testWorld(t testing.TB, seed int64) *core.Map {
	t.Helper()
	g, err := worldgen.GenerateGrid(worldgen.GridParams{
		Rows: 2, Cols: 3, Block: 150, Lanes: 2, TrafficLights: true,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return g.Map
}

// mapsEquivalent compares two maps structurally.
func mapsEquivalent(t *testing.T, a, b *core.Map) {
	t.Helper()
	ap, al, aa, all, ab, ar := a.Counts()
	bp, bl, ba, bll, bb, br := b.Counts()
	if ap != bp || al != bl || aa != ba || all != bll || ab != bb || ar != br {
		t.Fatalf("counts differ: %v vs %v", []int{ap, al, aa, all, ab, ar}, []int{bp, bl, ba, bll, bb, br})
	}
	// The clock may be restored as the max element stamp (tiler paths),
	// never beyond the original.
	if b.Clock > a.Clock || a.Name != b.Name {
		t.Fatalf("header differs: clock %d vs %d, name %q vs %q", a.Clock, b.Clock, a.Name, b.Name)
	}
	for _, id := range a.PointIDs() {
		pa, _ := a.Point(id)
		pb, err := b.Point(id)
		if err != nil {
			t.Fatalf("point %d missing: %v", id, err)
		}
		if pa.Class != pb.Class || pa.Pos.Dist(pb.Pos) > 0.002 || pa.Meta != pb.Meta {
			t.Fatalf("point %d differs: %+v vs %+v", id, pa, pb)
		}
		if len(pa.Attr) != len(pb.Attr) {
			t.Fatalf("point %d attrs differ", id)
		}
		for k, v := range pa.Attr {
			if pb.Attr[k] != v {
				t.Fatalf("point %d attr %q differs", id, k)
			}
		}
	}
	for _, id := range a.LineIDs() {
		la, _ := a.Line(id)
		lb, err := b.Line(id)
		if err != nil {
			t.Fatalf("line %d missing", id)
		}
		if la.Class != lb.Class || la.Boundary != lb.Boundary || len(la.Geometry) != len(lb.Geometry) {
			t.Fatalf("line %d differs", id)
		}
		for i := range la.Geometry {
			if la.Geometry[i].Dist(lb.Geometry[i]) > 0.002 {
				t.Fatalf("line %d vertex %d differs by %v", id, i, la.Geometry[i].Dist(lb.Geometry[i]))
			}
		}
	}
	for _, id := range a.LaneletIDs() {
		la, _ := a.Lanelet(id)
		lb, err := b.Lanelet(id)
		if err != nil {
			t.Fatalf("lanelet %d missing", id)
		}
		if la.Left != lb.Left || la.Right != lb.Right || la.Type != lb.Type ||
			math.Abs(la.SpeedLimit-lb.SpeedLimit) > 1e-12 ||
			len(la.Successors) != len(lb.Successors) ||
			la.LeftNeighbor != lb.LeftNeighbor || la.RightNeighbor != lb.RightNeighbor {
			t.Fatalf("lanelet %d differs", id)
		}
	}
	for _, id := range a.RegulatoryIDs() {
		ra, _ := a.Regulatory(id)
		rb, err := b.Regulatory(id)
		if err != nil {
			t.Fatalf("regulatory %d missing", id)
		}
		if ra.Kind != rb.Kind || ra.StopLine != rb.StopLine ||
			len(ra.Devices) != len(rb.Devices) || len(ra.Lanelets) != len(rb.Lanelets) {
			t.Fatalf("regulatory %d differs", id)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	m := testWorld(t, 121)
	data := EncodeBinary(m)
	if len(data) == 0 {
		t.Fatal("empty encoding")
	}
	back, err := DecodeBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	mapsEquivalent(t, m, back)
	// Decoded map is fully functional: validates and routes.
	if issues := back.Validate(); len(issues) != 0 {
		t.Fatalf("decoded map invalid: %v", issues[0])
	}
	if _, err := back.BuildRouteGraph(); err != nil {
		t.Fatal(err)
	}
	// Restored map allocates fresh IDs above the existing ones.
	nid := back.AddPoint(core.PointElement{Class: core.ClassSign, Pos: geo.V3(0, 0, 0)})
	if _, err := m.Point(nid); !errors.Is(err, core.ErrNotFound) {
		t.Error("restored map reused an existing ID")
	}
}

func TestBinaryDeterministic(t *testing.T) {
	m := testWorld(t, 122)
	a := EncodeBinary(m)
	b := EncodeBinary(m)
	if string(a) != string(b) {
		t.Fatal("encoding not deterministic")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	m := testWorld(t, 123)
	data, err := EncodeJSON(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	mapsEquivalent(t, m, back)
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeBinary(nil); !errors.Is(err, ErrBadFormat) {
		t.Errorf("nil decode err = %v", err)
	}
	if _, err := DecodeBinary([]byte{0x01, 0x02, 0x03}); !errors.Is(err, ErrBadFormat) {
		t.Errorf("garbage decode err = %v", err)
	}
	// Truncated valid stream.
	m := testWorld(t, 124)
	data := EncodeBinary(m)
	if _, err := DecodeBinary(data[:len(data)/3]); err == nil {
		t.Error("truncated decode succeeded")
	}
	if _, err := DecodeJSON([]byte("{")); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad json err = %v", err)
	}
}

func TestDecodeFuzzNoPanic(t *testing.T) {
	// Property: arbitrary bytes never panic the decoder.
	f := func(data []byte) bool {
		_, _ = DecodeBinary(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// And corrupted valid prefixes don't panic either.
	m := testWorld(t, 125)
	data := EncodeBinary(m)
	rng := rand.New(rand.NewSource(126))
	for i := 0; i < 200; i++ {
		cp := append([]byte(nil), data...)
		cp[rng.Intn(len(cp))] ^= byte(1 << rng.Intn(8))
		_, _ = DecodeBinary(cp)
	}
}

func TestBinarySmallerThanJSON(t *testing.T) {
	m := testWorld(t, 127)
	bin := EncodeBinary(m)
	js, err := EncodeJSON(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(bin)*3 > len(js) {
		t.Errorf("binary %d not ≪ json %d", len(bin), len(js))
	}
}

func TestRawSizeModel(t *testing.T) {
	m := testWorld(t, 128)
	raw := EncodeRawSize(m, RawParams{})
	vec := int64(len(EncodeBinary(m)))
	if raw < 20*vec {
		t.Errorf("raw %d should dwarf vector %d", raw, vec)
	}
	chunk := SampleRawChunk(m, RawParams{}, 100)
	if len(chunk) != 100*16 {
		t.Errorf("chunk = %d bytes", len(chunk))
	}
	if SampleRawChunk(m, RawParams{}, 0) != nil {
		t.Error("zero chunk")
	}
}

func TestTileKeyMorton(t *testing.T) {
	// Morton is monotone in each coordinate locally and distinct.
	a := TileKey{Layer: "x", TX: 0, TY: 0}
	b := TileKey{Layer: "x", TX: 1, TY: 0}
	c := TileKey{Layer: "x", TX: 0, TY: 1}
	if a.Morton() == b.Morton() || a.Morton() == c.Morton() || b.Morton() == c.Morton() {
		t.Error("morton collisions")
	}
	if b.Morton() != 1 || c.Morton() != 2 {
		t.Errorf("morton = %d, %d", b.Morton(), c.Morton())
	}
}

func TestMemStore(t *testing.T) {
	testStore(t, NewMemStore())
}

func TestDirStore(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testStore(t, store)
}

func testStore(t *testing.T, store TileStore) {
	t.Helper()
	key := TileKey{Layer: "base", TX: 3, TY: -2}
	if _, err := store.Get(key); !errors.Is(err, ErrNoTile) {
		t.Fatalf("missing get err = %v", err)
	}
	if err := store.Put(key, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get(key)
	if err != nil || string(got) != "hello" {
		t.Fatalf("get = %q, %v", got, err)
	}
	// Overwrite.
	if err := store.Put(key, []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, _ = store.Get(key)
	if string(got) != "world" {
		t.Fatalf("overwrite = %q", got)
	}
	// Second layer is independent.
	key2 := TileKey{Layer: "crowd", TX: 3, TY: -2}
	if err := store.Put(key2, []byte("layer2")); err != nil {
		t.Fatal(err)
	}
	keys, err := store.Keys("base")
	if err != nil || len(keys) != 1 {
		t.Fatalf("keys = %v, %v", keys, err)
	}
	if keys[0] != key {
		t.Fatalf("keys[0] = %v", keys[0])
	}
	// Delete.
	if err := store.Delete(key); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get(key); !errors.Is(err, ErrNoTile) {
		t.Fatal("tile survived delete")
	}
	if err := store.Delete(key); err != nil {
		t.Fatalf("double delete err = %v", err)
	}
	// Other layer untouched.
	if _, err := store.Get(key2); err != nil {
		t.Fatal("other layer lost")
	}
}

func TestTilerSplitLoad(t *testing.T) {
	m := testWorld(t, 129)
	tiler := Tiler{TileSize: 200}
	store := NewMemStore()
	n, err := tiler.SaveMap(store, m, "base")
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatalf("tiles = %d, want multiple for a 300x150 world", n)
	}
	back, err := tiler.LoadMap(store, "base", m.Name)
	if err != nil {
		t.Fatal(err)
	}
	mapsEquivalent(t, m, back)
	// Missing layer.
	if _, err := tiler.LoadMap(store, "nope", "x"); !errors.Is(err, ErrNoTile) {
		t.Errorf("missing layer err = %v", err)
	}
}

func TestLayerDecoupling(t *testing.T) {
	// Kim [31]: updating a crowdsourced feature layer must not rewrite
	// the base layer's tiles.
	m := testWorld(t, 130)
	tiler := Tiler{TileSize: 200}
	store := NewMemStore()
	if _, err := tiler.SaveMap(store, m, "base"); err != nil {
		t.Fatal(err)
	}
	baseKeys, _ := store.Keys("base")
	baseTiles := make(map[TileKey][]byte)
	for _, k := range baseKeys {
		d, _ := store.Get(k)
		baseTiles[k] = d
	}
	// Build and store a separate feature layer.
	feat := core.NewMap("signs-crowd")
	feat.AddPoint(core.PointElement{Class: core.ClassSign, Pos: geo.V3(10, 10, 2)})
	feat.AddPoint(core.PointElement{Class: core.ClassSign, Pos: geo.V3(290, 140, 2)})
	if _, err := tiler.SaveMap(store, feat, "crowd-signs"); err != nil {
		t.Fatal(err)
	}
	// Base tiles byte-identical.
	for k, want := range baseTiles {
		got, err := store.Get(k)
		if err != nil || string(got) != string(want) {
			t.Fatalf("base tile %v changed", k)
		}
	}
	// Feature layer loads independently.
	fl, err := tiler.LoadMap(store, "crowd-signs", "signs")
	if err != nil {
		t.Fatal(err)
	}
	if p, _, _, _, _, _ := fl.Counts(); p != 2 {
		t.Errorf("feature layer points = %d", p)
	}
}

func TestTilerSyncDropsVacatedTiles(t *testing.T) {
	// Republishing a layer from a smaller (e.g. rolled-back) map must
	// delete the tiles the new version no longer occupies; otherwise a
	// later LoadMap stitches stale elements back in.
	tiler := Tiler{TileSize: 100}
	store := NewMemStore()

	wide := core.NewMap("world")
	for i := 0; i < 4; i++ {
		wide.AddPoint(core.PointElement{
			Class: core.ClassSign, Pos: geo.V3(float64(i)*150, 10, 2),
			Meta: core.Meta{Confidence: 0.9},
		})
	}
	if _, err := tiler.SaveMap(store, wide, "serve"); err != nil {
		t.Fatal(err)
	}

	narrow := core.NewMap("world")
	narrow.AddPoint(core.PointElement{
		Class: core.ClassSign, Pos: geo.V3(10, 10, 2), Meta: core.Meta{Confidence: 0.9},
	})
	saved, deleted, err := tiler.SyncMap(store, narrow, "serve")
	if err != nil {
		t.Fatal(err)
	}
	if saved != 1 || deleted != 3 {
		t.Errorf("saved/deleted = %d/%d, want 1/3", saved, deleted)
	}
	back, err := tiler.LoadMap(store, "serve", "world")
	if err != nil {
		t.Fatal(err)
	}
	if got := back.NumElements(); got != 1 {
		t.Errorf("reloaded %d elements, want 1 (stale tiles must be gone)", got)
	}
}

func BenchmarkEncodeBinary(b *testing.B) {
	m := testWorld(b, 131)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeBinary(m)
	}
}

func BenchmarkDecodeBinary(b *testing.B) {
	m := testWorld(b, 132)
	data := EncodeBinary(m)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBinary(data); err != nil {
			b.Fatal(err)
		}
	}
}
