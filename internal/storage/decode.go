package storage

import (
	"bytes"
	"fmt"

	"hdmaps/internal/core"
	"hdmaps/internal/geo"
)

// DecodeBinary parses a map from the compact vector format. It returns
// ErrBadFormat (wrapped) for structurally invalid input and ErrVersion
// for unknown versions.
func DecodeBinary(data []byte) (*core.Map, error) {
	r := &reader{buf: bytes.NewReader(data)}
	magic, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("magic %x: %w", magic, ErrBadFormat)
	}
	version, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("version %d: %w", version, ErrVersion)
	}
	name, err := r.str()
	if err != nil {
		return nil, err
	}
	clock, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	m := core.NewMap(name)
	m.SetClock(clock)

	nPoints, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nPoints; i++ {
		var p core.PointElement
		id, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		p.ID = core.ID(id)
		class, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		p.Class = core.Class(class)
		x, err := r.varint()
		if err != nil {
			return nil, err
		}
		y, err := r.varint()
		if err != nil {
			return nil, err
		}
		z, err := r.varint()
		if err != nil {
			return nil, err
		}
		p.Pos = geo.V3(float64(x)*coordUnit, float64(y)*coordUnit, float64(z)*coordUnit)
		if p.Heading, err = r.float(); err != nil {
			return nil, err
		}
		if p.Attr, err = r.attrs(); err != nil {
			return nil, err
		}
		if p.Meta, err = r.meta(); err != nil {
			return nil, err
		}
		if err := m.RestorePoint(p); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
	}

	nLines, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nLines; i++ {
		var l core.LineElement
		id, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		l.ID = core.ID(id)
		class, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		l.Class = core.Class(class)
		btype, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		l.Boundary = core.BoundaryType(btype)
		if l.Geometry, err = r.polyline(); err != nil {
			return nil, err
		}
		if l.Attr, err = r.attrs(); err != nil {
			return nil, err
		}
		if l.Meta, err = r.meta(); err != nil {
			return nil, err
		}
		if err := m.RestoreLine(l); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
	}

	nAreas, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nAreas; i++ {
		var a core.AreaElement
		id, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		a.ID = core.ID(id)
		class, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		a.Class = core.Class(class)
		pl, err := r.polyline()
		if err != nil {
			return nil, err
		}
		a.Outline = geo.Polygon(pl)
		if a.Attr, err = r.attrs(); err != nil {
			return nil, err
		}
		if a.Meta, err = r.meta(); err != nil {
			return nil, err
		}
		if err := m.RestoreArea(a); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
	}

	nLL, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nLL; i++ {
		var l core.Lanelet
		id, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		l.ID = core.ID(id)
		left, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		right, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		l.Left, l.Right = core.ID(left), core.ID(right)
		if l.Centerline, err = r.polyline(); err != nil {
			return nil, err
		}
		lt, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		l.Type = core.LaneType(lt)
		if l.SpeedLimit, err = r.float(); err != nil {
			return nil, err
		}
		if l.Successors, err = r.ids(); err != nil {
			return nil, err
		}
		ln, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		rn, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		l.LeftNeighbor, l.RightNeighbor = core.ID(ln), core.ID(rn)
		if l.Regulatory, err = r.ids(); err != nil {
			return nil, err
		}
		if l.Meta, err = r.meta(); err != nil {
			return nil, err
		}
		if err := m.RestoreLanelet(l); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
	}

	nB, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nB; i++ {
		var b core.LaneBundle
		id, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		b.ID = core.ID(id)
		if b.RoadID, err = r.varint(); err != nil {
			return nil, err
		}
		if b.Lanelets, err = r.ids(); err != nil {
			return nil, err
		}
		if b.RefLine, err = r.polyline(); err != nil {
			return nil, err
		}
		if b.Meta, err = r.meta(); err != nil {
			return nil, err
		}
		if err := m.RestoreBundle(b); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
	}

	nR, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nR; i++ {
		var reg core.RegulatoryElement
		id, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		reg.ID = core.ID(id)
		kind, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		reg.Kind = core.RegulatoryKind(kind)
		if reg.Devices, err = r.ids(); err != nil {
			return nil, err
		}
		sl, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		reg.StopLine = core.ID(sl)
		if reg.Lanelets, err = r.ids(); err != nil {
			return nil, err
		}
		if reg.Value, err = r.float(); err != nil {
			return nil, err
		}
		if reg.Meta, err = r.meta(); err != nil {
			return nil, err
		}
		if err := m.RestoreRegulatory(reg); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
	}
	return m, nil
}
