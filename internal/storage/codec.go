// Package storage provides HD-map persistence: a compact binary codec
// with delta-encoded varint geometry (the "vector map" of Li et al.,
// ~100 KB/mile), a raw point-cloud codec standing in for the
// laser-scan-heavy formats the same paper reports at ~10 MB/mile, a JSON
// codec for interchange, and a Morton-keyed tile store with decoupled
// feature layers (the layer separation of Kim et al.'s crowdsourced
// feature layers).
package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"hdmaps/internal/core"
	"hdmaps/internal/geo"
)

// Binary format constants.
const (
	binaryMagic   = 0x48444d50 // "HDMP"
	binaryVersion = 1
	// coordUnit is the quantisation of stored coordinates: 1 mm, well
	// below the centimetre accuracy HD maps promise.
	coordUnit = 0.001
)

// Codec errors.
var (
	// ErrBadFormat is returned when decoding fails structurally.
	ErrBadFormat = errors.New("storage: bad format")
	// ErrVersion is returned for unsupported format versions.
	ErrVersion = errors.New("storage: unsupported version")
)

// writer builds the binary stream.
type writer struct {
	buf bytes.Buffer
	tmp [binary.MaxVarintLen64]byte
}

func (w *writer) uvarint(v uint64) {
	n := binary.PutUvarint(w.tmp[:], v)
	w.buf.Write(w.tmp[:n])
}

func (w *writer) varint(v int64) {
	n := binary.PutVarint(w.tmp[:], v)
	w.buf.Write(w.tmp[:n])
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf.WriteString(s)
}

func (w *writer) float(f float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
	w.buf.Write(b[:])
}

// quant converts a coordinate to integer units.
func quant(v float64) int64 { return int64(math.Round(v / coordUnit)) }

// polyline writes delta-encoded quantised vertices.
func (w *writer) polyline(pl geo.Polyline) {
	w.uvarint(uint64(len(pl)))
	var px, py int64
	for _, p := range pl {
		x, y := quant(p.X), quant(p.Y)
		w.varint(x - px)
		w.varint(y - py)
		px, py = x, y
	}
}

func (w *writer) attrs(a map[string]string) {
	w.uvarint(uint64(len(a)))
	// Deterministic order.
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		w.str(k)
		w.str(a[k])
	}
}

func (w *writer) meta(m core.Meta) {
	w.uvarint(uint64(m.Version))
	w.uvarint(m.Stamp)
	w.float(m.Confidence)
	w.uvarint(uint64(m.Observy))
	w.str(m.Source)
}

func (w *writer) ids(ids []core.ID) {
	w.uvarint(uint64(len(ids)))
	for _, id := range ids {
		w.uvarint(uint64(id))
	}
}

// sortStrings is insertion sort (attr maps are tiny; avoids an import).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// EncodeBinary serialises a map to the compact vector format.
func EncodeBinary(m *core.Map) []byte {
	w := &writer{}
	w.uvarint(binaryMagic)
	w.uvarint(binaryVersion)
	w.str(m.Name)
	w.uvarint(m.Clock)

	pointIDs := m.PointIDs()
	w.uvarint(uint64(len(pointIDs)))
	for _, id := range pointIDs {
		p, _ := m.Point(id)
		w.uvarint(uint64(p.ID))
		w.uvarint(uint64(p.Class))
		w.varint(quant(p.Pos.X))
		w.varint(quant(p.Pos.Y))
		w.varint(quant(p.Pos.Z))
		w.float(p.Heading)
		w.attrs(p.Attr)
		w.meta(p.Meta)
	}
	lineIDs := m.LineIDs()
	w.uvarint(uint64(len(lineIDs)))
	for _, id := range lineIDs {
		l, _ := m.Line(id)
		w.uvarint(uint64(l.ID))
		w.uvarint(uint64(l.Class))
		w.uvarint(uint64(l.Boundary))
		w.polyline(l.Geometry)
		w.attrs(l.Attr)
		w.meta(l.Meta)
	}
	areaIDs := m.AreaIDs()
	w.uvarint(uint64(len(areaIDs)))
	for _, id := range areaIDs {
		a, _ := m.Area(id)
		w.uvarint(uint64(a.ID))
		w.uvarint(uint64(a.Class))
		w.polyline(geo.Polyline(a.Outline))
		w.attrs(a.Attr)
		w.meta(a.Meta)
	}
	llIDs := m.LaneletIDs()
	w.uvarint(uint64(len(llIDs)))
	for _, id := range llIDs {
		l, _ := m.Lanelet(id)
		w.uvarint(uint64(l.ID))
		w.uvarint(uint64(l.Left))
		w.uvarint(uint64(l.Right))
		w.polyline(l.Centerline)
		w.uvarint(uint64(l.Type))
		w.float(l.SpeedLimit)
		w.ids(l.Successors)
		w.uvarint(uint64(l.LeftNeighbor))
		w.uvarint(uint64(l.RightNeighbor))
		w.ids(l.Regulatory)
		w.meta(l.Meta)
	}
	bIDs := m.BundleIDs()
	w.uvarint(uint64(len(bIDs)))
	for _, id := range bIDs {
		b, _ := m.Bundle(id)
		w.uvarint(uint64(b.ID))
		w.varint(b.RoadID)
		w.ids(b.Lanelets)
		w.polyline(b.RefLine)
		w.meta(b.Meta)
	}
	rIDs := m.RegulatoryIDs()
	w.uvarint(uint64(len(rIDs)))
	for _, id := range rIDs {
		r, _ := m.Regulatory(id)
		w.uvarint(uint64(r.ID))
		w.uvarint(uint64(r.Kind))
		w.ids(r.Devices)
		w.uvarint(uint64(r.StopLine))
		w.ids(r.Lanelets)
		w.float(r.Value)
		w.meta(r.Meta)
	}
	return w.buf.Bytes()
}

// reader parses the binary stream.
type reader struct {
	buf *bytes.Reader
}

func (r *reader) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(r.buf)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, err := binary.ReadVarint(r.buf)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n == 0 {
		return "", nil
	}
	if n > uint64(r.buf.Len()) {
		return "", fmt.Errorf("%w: string length %d exceeds remaining input", ErrBadFormat, n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.buf, b); err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return string(b), nil
}

func (r *reader) float() (float64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r.buf, b[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}

func (r *reader) polyline() (geo.Polyline, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// Each vertex is two varints of >= 1 byte each, so n vertices need
	// at least 2n remaining bytes; checking before make() stops a forged
	// count from over-allocating.
	if n > uint64(r.buf.Len())/2 {
		return nil, fmt.Errorf("%w: polyline of %d vertices exceeds input", ErrBadFormat, n)
	}
	out := make(geo.Polyline, n)
	var px, py int64
	for i := range out {
		dx, err := r.varint()
		if err != nil {
			return nil, err
		}
		dy, err := r.varint()
		if err != nil {
			return nil, err
		}
		px += dx
		py += dy
		out[i] = geo.V2(float64(px)*coordUnit, float64(py)*coordUnit)
	}
	return out, nil
}

func (r *reader) attrs() (map[string]string, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	// Each attr is two strings with >= 1 length byte apiece.
	if n > uint64(r.buf.Len())/2 {
		return nil, fmt.Errorf("%w: attr count %d exceeds input", ErrBadFormat, n)
	}
	out := make(map[string]string, n)
	for i := uint64(0); i < n; i++ {
		k, err := r.str()
		if err != nil {
			return nil, err
		}
		v, err := r.str()
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}

func (r *reader) meta() (core.Meta, error) {
	var m core.Meta
	v, err := r.uvarint()
	if err != nil {
		return m, err
	}
	m.Version = int(v)
	if m.Stamp, err = r.uvarint(); err != nil {
		return m, err
	}
	if m.Confidence, err = r.float(); err != nil {
		return m, err
	}
	obs, err := r.uvarint()
	if err != nil {
		return m, err
	}
	m.Observy = int(obs)
	if m.Source, err = r.str(); err != nil {
		return m, err
	}
	return m, nil
}

func (r *reader) ids() ([]core.ID, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > uint64(r.buf.Len()) {
		return nil, fmt.Errorf("%w: id count %d exceeds input", ErrBadFormat, n)
	}
	out := make([]core.ID, n)
	for i := range out {
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		out[i] = core.ID(v)
	}
	return out, nil
}
