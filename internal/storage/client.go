package storage

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hdmaps/internal/core"
	"hdmaps/internal/obs"
	"hdmaps/internal/resilience"
)

// ErrChecksum is returned when a fetched tile's payload does not match
// the server's checksum header — the wire damaged it. It is transient:
// the retry loop treats it like a 5xx and refetches.
var ErrChecksum = errors.New("storage: tile checksum mismatch")

// ErrBudget is returned when a fetch gives up because the retry budget
// for the whole operation is exhausted.
var ErrBudget = errors.New("storage: retry budget exhausted")

// RetryPolicy bounds how hard the client fights a misbehaving network.
// The zero value is usable: it resolves to the defaults documented on
// each field.
type RetryPolicy struct {
	// MaxAttempts is the per-request attempt cap, first try included
	// (default 4; 1 disables retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 50ms);
	// it doubles per attempt with full jitter applied.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (default 2s).
	MaxDelay time.Duration
	// Budget caps the total number of retries (attempts beyond the
	// first) spent across one multi-request operation such as
	// FetchRegion (default 64). Individual requests count against it so
	// one flaky region cannot stall a vehicle indefinitely.
	Budget int
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts <= 0 {
		return 4
	}
	return p.MaxAttempts
}

func (p RetryPolicy) base() time.Duration {
	if p.BaseDelay <= 0 {
		return 50 * time.Millisecond
	}
	return p.BaseDelay
}

func (p RetryPolicy) max() time.Duration {
	if p.MaxDelay <= 0 {
		return 2 * time.Second
	}
	return p.MaxDelay
}

func (p RetryPolicy) budget() int {
	if p.Budget <= 0 {
		return 64
	}
	return p.Budget
}

// backoff returns the sleep before retry number n (n=1 is the first
// retry), exponential with full jitter.
func (p RetryPolicy) backoff(n int, rng *rand.Rand) time.Duration {
	d := p.base() << uint(n-1)
	if d > p.max() || d <= 0 {
		d = p.max()
	}
	return time.Duration(float64(d) * (0.5 + 0.5*rng.Float64()))
}

// Client pulls tiles from a TileServer — the vehicle-side consumer.
// All fetches take a context; per-attempt timeouts, retries with
// exponential backoff, and checksum verification are built in, because
// over a cellular link to a moving vehicle the failure path is the hot
// path.
type Client struct {
	// Base is the server URL, e.g. "http://maps.internal:8080".
	Base string
	// Endpoints, when non-empty, lists equivalent server (or cluster
	// router) URLs to fail over between, overriding Base. The client
	// sticks to one endpoint until an attempt against it fails with a
	// transient error, then rotates to the next for the following
	// attempt — so a single dead router is a one-attempt hiccup, not a
	// fatal configuration.
	Endpoints []string
	// HTTP is the client to use (http.DefaultClient when nil).
	HTTP *http.Client
	// Retry is the retry policy; its zero value means sane defaults.
	Retry RetryPolicy
	// Timeout bounds each individual attempt (default 10s). The
	// caller's context still bounds the whole operation.
	Timeout time.Duration
	// Cache, when set, keeps last-known-good tiles so FetchRegion can
	// degrade to stale data instead of failing when the server is
	// unreachable.
	Cache *TileCache
	// ClientID, when set, is sent as X-Client-Id on every request so an
	// overload-protected server can rate-limit per vehicle rather than
	// per source address (fleets often share NAT egress).
	ClientID string
	// Metrics is where the client's counters register (obs.Default()
	// when nil). Tests asserting exact counts inject a fresh registry.
	Metrics *obs.Registry
	// Tracer, when set, wraps each logical operation (get_tile,
	// put_tile, fetch_region) in a span with every HTTP attempt as a
	// child span, tail-sampled like the server side. Each attempt's
	// span ID rides SpanHeader so the server's trace nests under it.
	// Nil disables client-side tracing.
	Tracer *obs.Tracer
	// Log receives structured fetch/retry records; nil discards them.
	Log *slog.Logger

	rngMu sync.Mutex
	rng   *rand.Rand

	// epIdx is the index of the endpoint currently in use; failover
	// advances it by exactly one per observed failure (CAS, so a herd
	// of concurrent fetches hitting the same dead endpoint rotates
	// once, not once per fetch).
	epIdx atomic.Uint32

	metricsOnce sync.Once
	cm          clientMetrics
}

// endpoints resolves the failover list: Endpoints when set, else the
// single Base.
func (c *Client) endpoints() []string {
	if len(c.Endpoints) > 0 {
		return c.Endpoints
	}
	return []string{c.Base}
}

// endpoint returns the endpoint attempts should currently target.
func (c *Client) endpoint() string {
	eps := c.endpoints()
	return eps[int(c.epIdx.Load())%len(eps)]
}

// failover rotates to the next endpoint if the current index is still
// `from` — the attempt that failed names the index it used, so two
// concurrent failures against the same endpoint advance once.
func (c *Client) failover(from uint32) {
	if len(c.endpoints()) < 2 {
		return
	}
	if c.epIdx.CompareAndSwap(from, from+1) {
		c.metrics().failovers.Inc()
	}
}

// clientMetrics are the client's transport-health counters, resolved
// once on first use so a zero-value Client still counts into the
// process default registry.
type clientMetrics struct {
	// attempts counts every HTTP attempt issued (first tries and
	// retries alike); retries counts only the re-tries, so
	// attempts - retries = logical requests that reached the wire.
	attempts *obs.Counter
	retries  *obs.Counter
	// retryAfterWaits counts backoffs that honored a server Retry-After
	// hint instead of the exponential guess.
	retryAfterWaits *obs.Counter
	// integrityFailures counts payloads rejected after arrival:
	// checksum mismatches and structurally invalid tile/JSON bodies.
	integrityFailures *obs.Counter
	// failovers counts endpoint rotations after transient failures.
	failovers *obs.Counter
}

func (c *Client) metrics() *clientMetrics {
	c.metricsOnce.Do(func() {
		reg := c.Metrics
		if reg == nil {
			reg = obs.Default()
		}
		c.cm = clientMetrics{
			attempts:          reg.Counter("storage.client.attempts"),
			retries:           reg.Counter("storage.client.retries"),
			retryAfterWaits:   reg.Counter("storage.client.retry_after_waits"),
			integrityFailures: reg.Counter("storage.client.integrity_failures"),
			failovers:         reg.Counter("storage.client.failovers"),
		}
	})
	return &c.cm
}

func (c *Client) logger() *slog.Logger { return obs.OrNop(c.Log) }

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 10 * time.Second
	}
	return c.Timeout
}

// newRequest builds one attempt's request, stamping the client
// identity when configured and propagating the operation's trace ID so
// the server logs the same ID the client does.
func (c *Client) newRequest(ctx context.Context, method, url string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return nil, err
	}
	if c.ClientID != "" {
		req.Header.Set(resilience.ClientIDHeader, c.ClientID)
	}
	if id := obs.TraceID(ctx); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
	if sp := obs.SpanFromContext(ctx); sp != nil {
		req.Header.Set(obs.SpanHeader, sp.IDHex())
	}
	return req, nil
}

// sleepBackoff waits before retry number `retry`. When the failed
// attempt carried a server Retry-After hint, that wins over the
// exponential guess — capped by the per-attempt timeout, so a hostile
// or confused server advertising "Retry-After: 3600" cannot park the
// vehicle for an hour. Otherwise: exponential backoff with full
// jitter; the rng is lazily seeded and mutex-held so concurrent
// fetches stay race-free.
func (c *Client) sleepBackoff(ctx context.Context, retry int, hint time.Duration) error {
	var d time.Duration
	if hint > 0 {
		c.metrics().retryAfterWaits.Inc()
		d = hint
		if max := c.timeout(); d > max {
			d = max
		}
	} else {
		c.rngMu.Lock()
		if c.rng == nil {
			c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
		}
		d = c.Retry.backoff(retry, c.rng)
		c.rngMu.Unlock()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// transientError marks an error worth retrying. retryAfter, when
// positive, is the server's own backoff hint (a 429/503 Retry-After
// header): an overloaded server knows better than our exponential
// guess when it will have capacity again.
type transientError struct {
	err        error
	retryAfter time.Duration
}

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

func transient(err error) error { return &transientError{err: err} }

func isTransient(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}

// retryAfterOf extracts the server's retry hint from a transient
// error (zero when none was given).
func retryAfterOf(err error) time.Duration {
	var te *transientError
	if errors.As(err, &te) {
		return te.retryAfter
	}
	return 0
}

// parseRetryAfter reads a Retry-After header: delta-seconds or an
// HTTP date. Zero for absent/unparseable/past values.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// doRetry runs one logical request under the retry policy. budget may
// be nil (per-request budget only). fn performs a single attempt
// against the endpoint URL it is handed; it classifies its own
// failures by wrapping retryable ones via transient(). Each attempt is
// a child span of the operation's span, so a sampled trace shows
// exactly which attempt succeeded, which endpoint it used, and how the
// backoffs spread out. A transient failure rotates to the next
// configured endpoint before the retry, so a dead router costs one
// attempt, not the whole operation.
func (c *Client) doRetry(ctx context.Context, budget *int, op string, fn func(ctx context.Context, base string) error) error {
	attempts := c.Retry.attempts()
	m := c.metrics()
	eps := c.endpoints()
	var lastErr error
	for attempt := 1; ; attempt++ {
		m.attempts.Inc()
		if attempt > 1 {
			m.retries.Inc()
		}
		epFrom := c.epIdx.Load()
		base := eps[int(epFrom)%len(eps)]
		actx, cancel := context.WithTimeout(ctx, c.timeout())
		actx, asp := c.Tracer.StartSpan(actx, "client.attempt")
		asp.SetAttr("op", op)
		asp.SetAttrInt("attempt", int64(attempt))
		if len(eps) > 1 {
			asp.SetAttr("endpoint", base)
		}
		err := fn(actx, base)
		if err != nil {
			asp.Fail(err.Error())
		}
		asp.End()
		cancel()
		if err == nil {
			return nil
		}
		lastErr = err
		c.logger().LogAttrs(ctx, slog.LevelDebug, "attempt failed",
			slog.Int("attempt", attempt), slog.String("error", err.Error()))
		// The caller's deadline expiring is final; a per-attempt
		// timeout (actx expired, ctx still live) is transient.
		if ctx.Err() != nil {
			return fmt.Errorf("%w (last attempt: %v)", ctx.Err(), err)
		}
		if !isTransient(err) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		c.failover(epFrom)
		if attempt >= attempts {
			return lastErr
		}
		if budget != nil {
			if *budget <= 0 {
				return fmt.Errorf("%w: %v", ErrBudget, lastErr)
			}
			*budget--
		}
		if err := c.sleepBackoff(ctx, attempt, retryAfterOf(lastErr)); err != nil {
			return fmt.Errorf("%w (last attempt: %v)", err, lastErr)
		}
	}
}

// classifyStatus converts a non-2xx response into an error, marking
// 5xx (and 429) transient. An overloaded server's 429/503 Retry-After
// hint rides along so the retry loop can honor it.
func classifyStatus(op string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	err := fmt.Errorf("storage client: %s: %s: %s", op, resp.Status, strings.TrimSpace(string(body)))
	if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests ||
		resp.Header.Get(TransientHeader) != "" {
		return &transientError{err: err, retryAfter: parseRetryAfter(resp.Header.Get("Retry-After"))}
	}
	return err
}

// getJSON fetches a server path and decodes its JSON body with
// retries (and endpoint failover — the path is joined to the current
// endpoint per attempt).
func (c *Client) getJSON(ctx context.Context, budget *int, op, path string, out interface{}) error {
	ctx, osp := c.Tracer.StartSpan(ctx, "client.get_json")
	osp.SetAttr("op", op)
	err := c.doRetry(ctx, budget, op, func(ctx context.Context, base string) error {
		req, err := c.newRequest(ctx, http.MethodGet, base+path, nil)
		if err != nil {
			return err
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return transient(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return classifyStatus(op, resp)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return transient(err)
		}
		// Metadata is integrity-checked like tiles: a bit flip in the
		// tile list could silently shrink the vehicle's map.
		if want := resp.Header.Get(ChecksumHeader); want != "" && want != Checksum(data) {
			c.metrics().integrityFailures.Inc()
			return transient(fmt.Errorf("storage client: %s: %w", op, ErrChecksum))
		}
		// A corrupted JSON body is indistinguishable from truncation;
		// both are wire damage, so retry.
		if err := json.Unmarshal(data, out); err != nil {
			c.metrics().integrityFailures.Inc()
			return transient(fmt.Errorf("storage client: %s: %w", op, err))
		}
		return nil
	})
	if err != nil {
		osp.Fail(err.Error())
	}
	osp.End()
	return err
}

// Layers lists the server's layers.
func (c *Client) Layers(ctx context.Context) ([]string, error) {
	ctx, _ = obs.EnsureTraceID(ctx)
	var out []string
	if err := c.getJSON(ctx, nil, "layers", "/v1/layers", &out); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *Client) tilePath(key TileKey) string {
	return fmt.Sprintf("/v1/tiles/%s/%d/%d", key.Layer, key.TX, key.TY)
}

// GetTile fetches one tile's bytes with retries and checksum
// verification; ErrNoTile when absent. Successful fetches refresh the
// client's Cache when one is configured.
func (c *Client) GetTile(ctx context.Context, key TileKey) ([]byte, error) {
	return c.getTile(ctx, nil, key)
}

func (c *Client) getTile(ctx context.Context, budget *int, key TileKey) ([]byte, error) {
	// Every tile fetch is one traced operation: the ID minted (or
	// inherited) here rides the TraceHeader of every attempt, so client
	// and server logs join on it.
	ctx, _ = obs.EnsureTraceID(ctx)
	ctx, osp := c.Tracer.StartSpan(ctx, "client.get_tile")
	osp.SetAttr("layer", key.Layer)
	osp.SetAttrInt("tx", int64(key.TX))
	osp.SetAttrInt("ty", int64(key.TY))
	start := time.Now()
	var data []byte
	err := c.doRetry(ctx, budget, "get tile", func(ctx context.Context, base string) error {
		req, err := c.newRequest(ctx, http.MethodGet, base+c.tilePath(key), nil)
		if err != nil {
			return err
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return transient(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			return fmt.Errorf("%v: %w", key, ErrNoTile)
		}
		if resp.StatusCode != http.StatusOK {
			return classifyStatus("get tile", resp)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return transient(err)
		}
		// Verify payload integrity against the server's checksum; a
		// mismatch is wire corruption, so retry rather than hand a
		// silently wrong map to the planner.
		if want := resp.Header.Get(ChecksumHeader); want != "" && want != Checksum(body) {
			c.metrics().integrityFailures.Inc()
			return transient(fmt.Errorf("%v: %w", key, ErrChecksum))
		}
		// The checksum covers the wire, not the server's disk: a tile
		// corrupted at rest checksums "correctly", so also require a
		// structurally valid map before accepting the payload.
		if _, derr := DecodeBinary(body); derr != nil {
			c.metrics().integrityFailures.Inc()
			return transient(fmt.Errorf("%v: invalid tile payload: %w", key, derr))
		}
		data = body
		return nil
	})
	if err != nil {
		c.logger().LogAttrs(ctx, slog.LevelWarn, "tile fetch failed",
			slog.String("layer", key.Layer), slog.Int("tx", int(key.TX)), slog.Int("ty", int(key.TY)),
			slog.Duration("dur", time.Since(start)), slog.String("error", err.Error()))
		osp.Fail(err.Error())
		osp.End()
		return nil, err
	}
	c.logger().LogAttrs(ctx, slog.LevelInfo, "tile fetched",
		slog.String("layer", key.Layer), slog.Int("tx", int(key.TX)), slog.Int("ty", int(key.TY)),
		slog.Int("bytes", len(data)), slog.Duration("dur", time.Since(start)))
	osp.End()
	if c.Cache != nil {
		c.Cache.Put(key, data)
	}
	return data, nil
}

// PutTile uploads one tile with retries; the payload checksum travels
// in the request header so the server can reject in-transit damage.
func (c *Client) PutTile(ctx context.Context, key TileKey, data []byte) error {
	ctx, _ = obs.EnsureTraceID(ctx)
	ctx, osp := c.Tracer.StartSpan(ctx, "client.put_tile")
	osp.SetAttr("layer", key.Layer)
	sum := Checksum(data)
	err := c.doRetry(ctx, nil, "put tile", func(ctx context.Context, base string) error {
		req, err := c.newRequest(ctx, http.MethodPut, base+c.tilePath(key), strings.NewReader(string(data)))
		if err != nil {
			return err
		}
		req.Header.Set(ChecksumHeader, sum)
		resp, err := c.http().Do(req)
		if err != nil {
			return transient(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			return classifyStatus("put tile", resp)
		}
		return nil
	})
	if err != nil {
		osp.Fail(err.Error())
	}
	osp.End()
	return err
}

// TileState classifies how one tile of a region was obtained.
type TileState int

const (
	// TileFresh means the tile came from the server this fetch.
	TileFresh TileState = iota
	// TileStale means the server failed and the cache served a
	// last-known-good copy.
	TileStale
	// TileMissing means neither server nor cache could provide it.
	TileMissing
)

// RegionHealth reports how a FetchRegion call actually went — the
// vehicle's map-health signal for downstream consumers (a planner may
// slow down on a stale map and refuse to act on a missing one).
type RegionHealth struct {
	// Requested counts tiles that should make up the region.
	Requested int
	// Fresh, Stale count tiles by provenance.
	Fresh, Stale int
	// Missing lists tiles neither the server nor the cache had.
	Missing []TileKey
	// Degraded is true when anything other than a fully fresh region
	// was returned: stale tiles, missing tiles, or a cache-derived
	// tile list because the server was unreachable.
	Degraded bool
	// Errors carries one representative fetch error per degraded tile
	// (bounded; diagnostic only).
	Errors []error
}

func (h *RegionHealth) addError(err error) {
	if len(h.Errors) < 8 {
		h.Errors = append(h.Errors, err)
	}
}

// FetchRegion downloads all tiles of a layer whose coordinates fall in
// [tx0,tx1]×[ty0,ty1] and stitches them into one map — the vehicle's
// map-region pull. The health report says whether the result is fully
// fresh or degraded; with a Cache configured, server failures degrade
// to last-known-good tiles instead of failing the whole stitch. An
// error is returned only when no usable region can be assembled at
// all.
func (c *Client) FetchRegion(ctx context.Context, layer string, tx0, ty0, tx1, ty1 int32, name string) (*core.Map, *RegionHealth, error) {
	// One region pull is one trace; the per-tile getTile calls inherit
	// the ID rather than minting their own, and their spans nest under
	// this region span (failed tiles mark the trace errored, so a
	// degraded pull is always in the flight recorder).
	ctx, _ = obs.EnsureTraceID(ctx)
	ctx, rsp := c.Tracer.StartSpan(ctx, "client.fetch_region")
	rsp.SetAttr("layer", layer)
	defer rsp.End()
	health := &RegionHealth{}
	budget := c.Retry.budget()

	var listed []struct {
		TX int32 `json:"tx"`
		TY int32 `json:"ty"`
	}
	keys := make([]TileKey, 0)
	err := c.getJSON(ctx, &budget, "list tiles", "/v1/tiles/"+layer, &listed)
	if err == nil {
		for _, k := range listed {
			if k.TX < tx0 || k.TX > tx1 || k.TY < ty0 || k.TY > ty1 {
				continue
			}
			keys = append(keys, TileKey{Layer: layer, TX: k.TX, TY: k.TY})
		}
	} else {
		if ctx.Err() != nil || c.Cache == nil {
			return nil, nil, err
		}
		// Server unreachable: degrade to the cache's view of the region.
		health.Degraded = true
		health.addError(err)
		for _, k := range c.Cache.Keys(layer) {
			if k.TX < tx0 || k.TX > tx1 || k.TY < ty0 || k.TY > ty1 {
				continue
			}
			keys = append(keys, k)
		}
	}
	health.Requested = len(keys)

	store := NewMemStore()
	for _, key := range keys {
		data, err := c.getTile(ctx, &budget, key)
		switch {
		case err == nil:
			health.Fresh++
		case ctx.Err() != nil:
			return nil, nil, err
		case errors.Is(err, ErrNoTile):
			// Listed but deleted between list and get: skip, not degraded.
			health.Requested--
			continue
		default:
			health.Degraded = true
			health.addError(err)
			if c.Cache != nil {
				if cached, _, ok := c.Cache.Get(key); ok {
					health.Stale++
					data = cached
					break
				}
			}
			health.Missing = append(health.Missing, key)
			continue
		}
		if err := store.Put(key, data); err != nil {
			return nil, nil, err
		}
	}
	if health.Fresh+health.Stale == 0 {
		if len(health.Errors) > 0 {
			return nil, nil, fmt.Errorf("region unavailable (%d tiles failed): %w", len(health.Missing), health.Errors[0])
		}
		return nil, nil, fmt.Errorf("region empty: %w", ErrNoTile)
	}
	m, err := Tiler{}.LoadMap(store, layer, name)
	if err != nil {
		return nil, nil, err
	}
	return m, health, nil
}
