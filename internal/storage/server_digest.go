package storage

import (
	"net/http"
	"sort"
	"strconv"
)

// handleDigest serves the anti-entropy surface:
//
//	GET /v1/digest/{layer}           -> LayerDigest (bucket summaries)
//	GET /v1/digest/{layer}?bucket=N  -> []DigestEntry for one bucket
//	GET /v1/digest/{layer}?tombs=1   -> []DigestEntry of tombstones with
//	                                    Created/TTL, for GC-ledger rebuild
//
// Internal (hint--/tomb--) layers are refused: tombstones already ride
// the live layer's digest, and handoff copies are transit, not state.
func (s *TileServer) handleDigest(w http.ResponseWriter, r *http.Request, layer string) {
	if layer == "" || IsInternalLayer(layer) {
		writeJSONError(w, http.StatusBadRequest, "bad digest layer")
		return
	}
	q := r.URL.Query()
	if q.Get("tombs") != "" {
		writeJSON(w, s.TombstoneList(layer))
		return
	}
	if bs := q.Get("bucket"); bs != "" {
		b, err := strconv.Atoi(bs)
		if err != nil || b < 0 || b >= DigestBuckets {
			writeJSONError(w, http.StatusBadRequest, "bad bucket")
			return
		}
		entries, derr := s.DigestEntries(layer, b)
		if derr != nil {
			writeJSONError(w, http.StatusInternalServerError, derr.Error())
			return
		}
		writeJSON(w, entries)
		return
	}
	d, err := s.LayerDigest(layer)
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, d)
}

// LayerDigest summarises one layer's live tiles and tombstones into the
// fixed bucket vector the anti-entropy sweeper compares across nodes.
func (s *TileServer) LayerDigest(layer string) (LayerDigest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := s.digestEntriesLocked(layer)
	if err != nil {
		return LayerDigest{}, err
	}
	var acc [DigestBuckets]uint64
	var counts [DigestBuckets]int
	for _, e := range entries {
		b := DigestBucketOf(e.TX, e.TY)
		acc[b] ^= DigestEntryHash(e)
		counts[b]++
	}
	d := LayerDigest{Layer: layer, Count: len(entries), Buckets: make([]BucketDigest, DigestBuckets)}
	for i := range d.Buckets {
		d.Buckets[i] = BucketDigest{Count: counts[i], Digest: formatDigest(acc[i])}
	}
	return d, nil
}

// DigestEntries lists one bucket's (key, clock, CRC, tomb) tuples — the
// leaf level of the digest exchange, fetched only for buckets whose
// summaries disagree.
func (s *TileServer) DigestEntries(layer string, bucket int) ([]DigestEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := s.digestEntriesLocked(layer)
	if err != nil {
		return nil, err
	}
	out := make([]DigestEntry, 0, len(entries))
	for _, e := range entries {
		if DigestBucketOf(e.TX, e.TY) == bucket {
			out = append(out, e)
		}
	}
	return out, nil
}

// TombstoneList enumerates a layer's deletion markers with their
// Created/TTL fields, letting a restarted router rebuild its GC ledger
// from shard state instead of losing track of pending tombstones.
func (s *TileServer) TombstoneList(layer string) []DigestEntry {
	s.mu.RLock()
	out := make([]DigestEntry, 0, 4)
	for k, tr := range s.tombs {
		if k.Layer != layer {
			continue
		}
		out = append(out, DigestEntry{
			TX: k.TX, TY: k.TY,
			Clock: tr.ts.Clock, Sum: tr.sum, Tomb: true,
			Created: tr.ts.Created, TTLSeconds: tr.ts.TTLSeconds,
		})
	}
	s.mu.RUnlock()
	sortDigestEntries(out)
	return out
}

// digestEntriesLocked enumerates all digest tuples for a layer: live
// tiles (clock/sum from the write-time caches, lazily rebuilt for keys
// loaded out of band) plus tombstones. Caller holds s.mu.
//
// Digests deliberately use write-time checksums: at-rest rot is the
// read path's problem (it re-verifies CRCs and triggers repair), while
// the sweep compares what each replica *accepted*.
func (s *TileServer) digestEntriesLocked(layer string) ([]DigestEntry, error) {
	keys, err := s.store.Keys(layer)
	if err != nil {
		return nil, err
	}
	out := make([]DigestEntry, 0, len(keys))
	for _, k := range keys {
		e := DigestEntry{TX: k.TX, TY: k.TY}
		clock, okClock := s.clocks[k]
		sum, okSum := s.sums[k]
		if !okClock || !okSum {
			data, gerr := s.store.Get(k)
			if gerr != nil {
				continue
			}
			if !okSum {
				sum = Checksum(data)
				s.sums[k] = sum
			}
			if !okClock {
				// An unreadable tile digests at clock 0 — visibly stale,
				// so sweeps flag and repair it. Not cached: if the bytes
				// heal, the next digest sees the real clock.
				if c, perr := PeekClock(data); perr == nil {
					clock = c
					s.clocks[k] = c
				}
			}
		}
		e.Clock, e.Sum = clock, sum
		out = append(out, e)
	}
	for k, tr := range s.tombs {
		if k.Layer != layer {
			continue
		}
		out = append(out, DigestEntry{TX: k.TX, TY: k.TY, Clock: tr.ts.Clock, Sum: tr.sum, Tomb: true})
	}
	sortDigestEntries(out)
	return out, nil
}

// sortDigestEntries orders entries by (tx, ty) so digest documents are
// deterministic and diffable.
func sortDigestEntries(out []DigestEntry) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].TX != out[j].TX {
			return out[i].TX < out[j].TX
		}
		return out[i].TY < out[j].TY
	})
}
