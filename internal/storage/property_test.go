package storage

import (
	"math/rand"
	"testing"

	"hdmaps/internal/core"
	"hdmaps/internal/geo"
)

// randomMap builds a structurally valid random map: points, lines,
// lanelets with real bound references, regulatory elements with real
// device references.
func randomMap(rng *rand.Rand) *core.Map {
	m := core.NewMap("rand")
	classes := []core.Class{
		core.ClassSign, core.ClassTrafficLight, core.ClassPole, core.ClassBarrier,
	}
	nPts := rng.Intn(20)
	var ptIDs []core.ID
	for i := 0; i < nPts; i++ {
		id := m.AddPoint(core.PointElement{
			Class: classes[rng.Intn(len(classes))],
			Pos: geo.V3(rng.NormFloat64()*500, rng.NormFloat64()*500,
				rng.Float64()*5),
			Heading: rng.Float64()*6 - 3,
			Attr:    randAttr(rng),
			Meta:    randMeta(rng),
		})
		ptIDs = append(ptIDs, id)
	}
	nLanes := 1 + rng.Intn(6)
	var laneIDs []core.ID
	for i := 0; i < nLanes; i++ {
		cl := make(geo.Polyline, 2+rng.Intn(6))
		p := geo.V2(rng.NormFloat64()*500, rng.NormFloat64()*500)
		for j := range cl {
			cl[j] = p
			p = p.Add(geo.V2(5+rng.Float64()*20, rng.NormFloat64()*3))
		}
		id, err := m.AddLaneFromCenterline(core.LaneSpec{
			Centerline: cl, Width: 2.5 + rng.Float64()*2,
			Type:       core.LaneType(rng.Intn(4)),
			SpeedLimit: rng.Float64() * 40,
			Source:     "prop",
		})
		if err != nil {
			continue
		}
		laneIDs = append(laneIDs, id)
	}
	// Random successor relations among created lanelets.
	for _, a := range laneIDs {
		if rng.Float64() < 0.5 && len(laneIDs) > 1 {
			b := laneIDs[rng.Intn(len(laneIDs))]
			if b != a {
				_ = m.Connect(a, b)
			}
		}
	}
	// Regulatory element referencing real devices and lanelets.
	if len(ptIDs) > 0 && len(laneIDs) > 0 && rng.Float64() < 0.7 {
		reg := m.AddRegulatory(core.RegulatoryElement{
			Kind:    core.RegulatoryKind(1 + rng.Intn(4)),
			Devices: []core.ID{ptIDs[rng.Intn(len(ptIDs))]},
			Value:   rng.Float64() * 30,
		})
		_ = m.AttachRegulatory(laneIDs[rng.Intn(len(laneIDs))], reg)
	}
	// Random area.
	if rng.Float64() < 0.5 {
		c := geo.V2(rng.NormFloat64()*200, rng.NormFloat64()*200)
		m.AddArea(core.AreaElement{
			Class: core.ClassCrosswalk,
			Outline: geo.Polygon{
				c, c.Add(geo.V2(4, 0)), c.Add(geo.V2(4, 3)), c.Add(geo.V2(0, 3)),
			},
			Meta: randMeta(rng),
		})
	}
	return m
}

func randAttr(rng *rand.Rand) map[string]string {
	if rng.Float64() < 0.5 {
		return nil
	}
	out := map[string]string{}
	for i := 0; i < rng.Intn(3)+1; i++ {
		out[string(rune('a'+i))] = string(rune('x' + rng.Intn(3)))
	}
	return out
}

func randMeta(rng *rand.Rand) core.Meta {
	return core.Meta{
		Confidence: rng.Float64(),
		Observy:    rng.Intn(50),
		Source:     []string{"", "lidar", "crowd", "survey"}[rng.Intn(4)],
	}
}

// TestPropertyBinaryRoundTrip fuzzes the binary codec with 150 random
// structurally-valid maps.
func TestPropertyBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	for trial := 0; trial < 150; trial++ {
		m := randomMap(rng)
		back, err := DecodeBinary(EncodeBinary(m))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		mapsEquivalent(t, m, back)
		// Validation issues must be preserved (usually none; the builder
		// makes valid maps).
		if got, want := len(back.Validate()), len(m.Validate()); got != want {
			t.Fatalf("trial %d: validity changed: %d vs %d", trial, got, want)
		}
	}
}

// TestPropertyJSONRoundTrip fuzzes the JSON codec the same way.
func TestPropertyJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(702))
	for trial := 0; trial < 60; trial++ {
		m := randomMap(rng)
		data, err := EncodeJSON(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		back, err := DecodeJSON(data)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		mapsEquivalent(t, m, back)
	}
}

// TestPropertyTilerPartition: splitting a map into tiles and reloading it
// preserves every element exactly, at several tile sizes.
func TestPropertyTilerPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(703))
	for _, tileSize := range []float64{100, 350, 5000} {
		for trial := 0; trial < 25; trial++ {
			m := randomMap(rng)
			if m.NumElements() == 0 {
				continue
			}
			store := NewMemStore()
			tiler := Tiler{TileSize: tileSize}
			if _, err := tiler.SaveMap(store, m, "l"); err != nil {
				t.Fatal(err)
			}
			back, err := tiler.LoadMap(store, "l", m.Name)
			if err != nil {
				t.Fatal(err)
			}
			mapsEquivalent(t, m, back)
		}
	}
}
