package storage

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"hdmaps/internal/core"
	"hdmaps/internal/geo"
)

// ErrNoTile is returned when a requested tile or layer does not exist.
var ErrNoTile = errors.New("storage: tile not found")

// TileKey addresses one tile of one named layer. Layers decouple
// independently-updatable map content (base geometry vs crowdsourced
// feature layers, Kim et al. [31]): updating one layer never rewrites the
// others.
type TileKey struct {
	Layer string
	// TX, TY are tile grid coordinates.
	TX, TY int32
}

// Morton returns the interleaved-bits Z-order index of the tile, the
// on-disk ordering that keeps spatially adjacent tiles adjacent in
// storage.
func (k TileKey) Morton() uint64 {
	return interleave(uint32(k.TX)) | interleave(uint32(k.TY))<<1
}

func interleave(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// TileStore persists map tiles by layer. Implementations must be safe
// for concurrent readers with a single writer per tile.
type TileStore interface {
	// Put stores a tile's encoded bytes.
	Put(key TileKey, data []byte) error
	// Get retrieves a tile; it returns ErrNoTile when absent.
	Get(key TileKey) ([]byte, error)
	// Keys lists all stored tiles of a layer in Morton order.
	Keys(layer string) ([]TileKey, error)
	// ListLayers names every layer with at least one tile, sorted.
	ListLayers() ([]string, error)
	// Delete removes a tile; deleting a missing tile is not an error.
	Delete(key TileKey) error
}

// MemStore is an in-memory TileStore.
type MemStore struct {
	mu    sync.RWMutex
	tiles map[TileKey][]byte
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{tiles: make(map[TileKey][]byte)}
}

// Put implements TileStore.
func (s *MemStore) Put(key TileKey, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	s.tiles[key] = cp
	return nil
}

// Get implements TileStore.
func (s *MemStore) Get(key TileKey) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.tiles[key]
	if !ok {
		return nil, fmt.Errorf("%v: %w", key, ErrNoTile)
	}
	cp := make([]byte, len(d))
	copy(cp, d)
	return cp, nil
}

// Keys implements TileStore.
func (s *MemStore) Keys(layer string) ([]TileKey, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []TileKey
	for k := range s.tiles {
		if k.Layer == layer {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Morton() < out[j].Morton() })
	return out, nil
}

// ListLayers implements TileStore.
func (s *MemStore) ListLayers() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := map[string]bool{}
	for k := range s.tiles {
		seen[k.Layer] = true
	}
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sortStrings(out)
	return out, nil
}

// Delete implements TileStore.
func (s *MemStore) Delete(key TileKey) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.tiles, key)
	return nil
}

// DirStore is a directory-backed TileStore: one file per tile,
// layer/morton.tile.
type DirStore struct {
	root string
}

// NewDirStore creates (if needed) and opens a directory store.
func NewDirStore(root string) (*DirStore, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("storage: open dir store: %w", err)
	}
	return &DirStore{root: root}, nil
}

func (s *DirStore) path(key TileKey) string {
	return filepath.Join(s.root, key.Layer, fmt.Sprintf("%016x_%d_%d.tile", key.Morton(), key.TX, key.TY))
}

// Put implements TileStore.
func (s *DirStore) Put(key TileKey, data []byte) error {
	dir := filepath.Join(s.root, key.Layer)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: put %v: %w", key, err)
	}
	tmp := s.path(key) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("storage: put %v: %w", key, err)
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		return fmt.Errorf("storage: put %v: %w", key, err)
	}
	return nil
}

// Get implements TileStore.
func (s *DirStore) Get(key TileKey) ([]byte, error) {
	data, err := os.ReadFile(s.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%v: %w", key, ErrNoTile)
	}
	if err != nil {
		return nil, fmt.Errorf("storage: get %v: %w", key, err)
	}
	return data, nil
}

// Keys implements TileStore.
func (s *DirStore) Keys(layer string) ([]TileKey, error) {
	dir := filepath.Join(s.root, layer)
	ents, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("storage: keys %q: %w", layer, err)
	}
	var out []TileKey
	for _, e := range ents {
		var morton uint64
		var tx, ty int32
		if _, err := fmt.Sscanf(e.Name(), "%016x_%d_%d.tile", &morton, &tx, &ty); err != nil {
			continue
		}
		out = append(out, TileKey{Layer: layer, TX: tx, TY: ty})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Morton() < out[j].Morton() })
	return out, nil
}

// ListLayers implements TileStore. A layer is any subdirectory holding
// at least one tile file.
func (s *DirStore) ListLayers() ([]string, error) {
	ents, err := os.ReadDir(s.root)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("storage: list layers: %w", err)
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		keys, err := s.Keys(e.Name())
		if err == nil && len(keys) > 0 {
			out = append(out, e.Name())
		}
	}
	sortStrings(out)
	return out, nil
}

// Delete implements TileStore.
func (s *DirStore) Delete(key TileKey) error {
	err := os.Remove(s.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// Tiler splits maps into fixed-size square tiles and reassembles them.
type Tiler struct {
	// TileSize is the tile edge length in metres (default 500).
	TileSize float64
}

// tileOf returns the tile coordinates containing p.
func (t Tiler) tileOf(p geo.Vec2) (int32, int32) {
	size := t.TileSize
	if size <= 0 {
		size = 500
	}
	return int32(math.Floor(p.X / size)), int32(math.Floor(p.Y / size))
}

// Split partitions a map into per-tile sub-maps by element anchor
// position (centroid). Relational elements follow their centreline
// anchor; references crossing tiles are preserved by ID (tile consumers
// stitch on load).
func (t Tiler) Split(m *core.Map, layer string) map[TileKey]*core.Map {
	out := make(map[TileKey]*core.Map)
	get := func(p geo.Vec2) *core.Map {
		tx, ty := t.tileOf(p)
		key := TileKey{Layer: layer, TX: tx, TY: ty}
		sm, ok := out[key]
		if !ok {
			sm = core.NewMap(fmt.Sprintf("%s/%d_%d", m.Name, tx, ty))
			out[key] = sm
		}
		return sm
	}
	// Each tile's clock is the max stamp of ITS elements, so tiles whose
	// content did not change encode byte-identically across re-splits —
	// the property incremental tile pushes rely on.
	bump := func(sm *core.Map, stamp uint64) {
		if stamp > sm.Clock {
			sm.SetClock(stamp)
		}
	}
	for _, id := range m.PointIDs() {
		p, _ := m.Point(id)
		sm := get(p.Pos.XY())
		_ = sm.RestorePoint(*p)
		bump(sm, p.Meta.Stamp)
	}
	for _, id := range m.LineIDs() {
		l, _ := m.Line(id)
		sm := get(l.Geometry.Centroid())
		_ = sm.RestoreLine(*l)
		bump(sm, l.Meta.Stamp)
	}
	for _, id := range m.AreaIDs() {
		a, _ := m.Area(id)
		sm := get(geo.Polyline(a.Outline).Centroid())
		_ = sm.RestoreArea(*a)
		bump(sm, a.Meta.Stamp)
	}
	for _, id := range m.LaneletIDs() {
		l, _ := m.Lanelet(id)
		sm := get(l.Centerline.Centroid())
		_ = sm.RestoreLanelet(*l)
		bump(sm, l.Meta.Stamp)
	}
	for _, id := range m.BundleIDs() {
		b, _ := m.Bundle(id)
		sm := get(b.RefLine.Centroid())
		_ = sm.RestoreBundle(*b)
		bump(sm, b.Meta.Stamp)
	}
	for _, id := range m.RegulatoryIDs() {
		r, _ := m.Regulatory(id)
		// Anchor regulatory elements at their first device, else first
		// governed lanelet.
		anchor := geo.Vec2{}
		if len(r.Devices) > 0 {
			if p, err := m.Point(r.Devices[0]); err == nil {
				anchor = p.Pos.XY()
			}
		} else if len(r.Lanelets) > 0 {
			if l, err := m.Lanelet(r.Lanelets[0]); err == nil {
				anchor = l.Centerline.Centroid()
			}
		}
		_ = get(anchor).RestoreRegulatory(*r)
	}
	return out
}

// SaveMap splits a map into tiles and writes them to the store under
// layer.
func (t Tiler) SaveMap(store TileStore, m *core.Map, layer string) (int, error) {
	tiles := t.Split(m, layer)
	for key, sm := range tiles {
		if err := store.Put(key, EncodeBinary(sm)); err != nil {
			return 0, fmt.Errorf("storage: save tile %v: %w", key, err)
		}
	}
	return len(tiles), nil
}

// SyncMap makes layer's stored tile set exactly m's: it writes every
// tile of the split and deletes stale tiles left over from a previous
// version of the layer. SaveMap alone is not enough when a layer is
// republished — an element migrating across a tile boundary (or a
// rollback shrinking the map) would otherwise leave its old tile behind
// and LoadMap would stitch the element twice.
func (t Tiler) SyncMap(store TileStore, m *core.Map, layer string) (saved, deleted int, err error) {
	tiles := t.Split(m, layer)
	for key, sm := range tiles {
		if err := store.Put(key, EncodeBinary(sm)); err != nil {
			return saved, deleted, fmt.Errorf("storage: save tile %v: %w", key, err)
		}
		saved++
	}
	keys, err := store.Keys(layer)
	if err != nil {
		return saved, deleted, fmt.Errorf("storage: sync layer %q: %w", layer, err)
	}
	for _, key := range keys {
		if _, live := tiles[key]; live {
			continue
		}
		if err := store.Delete(key); err != nil {
			return saved, deleted, fmt.Errorf("storage: drop stale tile %v: %w", key, err)
		}
		deleted++
	}
	return saved, deleted, nil
}

// LoadMap reads all tiles of a layer and stitches them into one map.
// Element IDs are preserved (they were globally unique at split time);
// a duplicated element across tiles is an error. The reassembled map's
// logical clock is the maximum element stamp across tiles (per-tile
// clocks are content-derived so unchanged tiles stay byte-identical).
func (t Tiler) LoadMap(store TileStore, layer, name string) (*core.Map, error) {
	keys, err := store.Keys(layer)
	if err != nil {
		return nil, err
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("layer %q: %w", layer, ErrNoTile)
	}
	out := core.NewMap(name)
	for _, key := range keys {
		data, err := store.Get(key)
		if err != nil {
			return nil, err
		}
		tm, err := DecodeBinary(data)
		if err != nil {
			return nil, fmt.Errorf("storage: tile %v: %w", key, err)
		}
		if tm.Clock > out.Clock {
			out.SetClock(tm.Clock)
		}
		for _, id := range tm.PointIDs() {
			p, _ := tm.Point(id)
			if err := out.RestorePoint(*p); err != nil {
				return nil, err
			}
		}
		for _, id := range tm.LineIDs() {
			l, _ := tm.Line(id)
			if err := out.RestoreLine(*l); err != nil {
				return nil, err
			}
		}
		for _, id := range tm.AreaIDs() {
			a, _ := tm.Area(id)
			if err := out.RestoreArea(*a); err != nil {
				return nil, err
			}
		}
		for _, id := range tm.LaneletIDs() {
			l, _ := tm.Lanelet(id)
			if err := out.RestoreLanelet(*l); err != nil {
				return nil, err
			}
		}
		for _, id := range tm.BundleIDs() {
			b, _ := tm.Bundle(id)
			if err := out.RestoreBundle(*b); err != nil {
				return nil, err
			}
		}
		for _, id := range tm.RegulatoryIDs() {
			r, _ := tm.Regulatory(id)
			if err := out.RestoreRegulatory(*r); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
