package storage

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
)

// Tombstone format constants. The magic is deliberately distinct from
// binaryMagic ("HDMP" vs "HDMT"): a tombstone marker can never decode
// as a live tile, and a live tile can never decode as a tombstone, so
// no replay, repair, or cache path can confuse a deletion with data.
const (
	tombstoneMagic   = 0x48444d54 // "HDMT"
	tombstoneVersion = 1
)

// ErrNotTombstone is returned by DecodeTombstone for payloads that are
// not tombstone markers at all (wrong magic) — as opposed to damaged
// markers, which return ErrBadFormat.
var ErrNotTombstone = errors.New("storage: not a tombstone")

// Tombstone is a durable deletion marker: the record that key
// {Layer, TX, TY} was deleted at logical clock Clock. Markers replicate
// exactly like tiles (same freshness total order, same hinted-handoff
// and repair machinery), which is what makes deletes as durable as
// writes: a replayed stale PUT loses to the marker instead of
// resurrecting the tile.
type Tombstone struct {
	// Layer/TX/TY name the deleted tile. The marker is self-describing
	// so a copy parked under a handoff layer still knows its true key.
	Layer string
	TX    int32
	TY    int32
	// Clock is the deletion's logical clock; it must dominate every
	// write the delete is meant to erase.
	Clock uint64
	// Created is the marker's birth time (unix seconds), stamped once
	// by the deleting router so all replicas hold identical bytes.
	Created uint64
	// TTLSeconds is the minimum marker age before GC may reclaim it.
	// It must exceed the hint/repair horizon — see the GC safety
	// argument in DESIGN.md §11.
	TTLSeconds uint64
}

// Key returns the deleted tile's key.
func (t Tombstone) Key() TileKey {
	return TileKey{Layer: t.Layer, TX: t.TX, TY: t.TY}
}

// EncodeTombstone serialises a marker: magic, version, key, clock,
// created, TTL, then a CRC32-C of everything before it. Encoding is
// canonical — DecodeTombstone rejects any byte stream that does not
// round-trip identically, so replicas holding "the same" tombstone are
// byte-identical by construction.
func EncodeTombstone(t Tombstone) []byte {
	w := &writer{}
	w.uvarint(tombstoneMagic)
	w.uvarint(tombstoneVersion)
	w.str(t.Layer)
	w.varint(int64(t.TX))
	w.varint(int64(t.TY))
	w.uvarint(t.Clock)
	w.uvarint(t.Created)
	w.uvarint(t.TTLSeconds)
	w.uvarint(uint64(crc32.Checksum(w.buf.Bytes(), castagnoli)))
	return w.buf.Bytes()
}

// DecodeTombstone parses a marker. Wrong magic returns ErrNotTombstone
// (the payload is something else — possibly a live tile); anything
// structurally damaged, CRC-mismatched, or non-canonical returns
// ErrBadFormat, and unsupported versions return ErrVersion.
func DecodeTombstone(data []byte) (Tombstone, error) {
	var t Tombstone
	r := &reader{buf: bytes.NewReader(data)}
	magic, err := r.uvarint()
	if err != nil {
		return t, ErrNotTombstone
	}
	if magic != tombstoneMagic {
		return t, fmt.Errorf("magic %x: %w", magic, ErrNotTombstone)
	}
	version, err := r.uvarint()
	if err != nil {
		return t, err
	}
	if version != tombstoneVersion {
		return t, fmt.Errorf("version %d: %w", version, ErrVersion)
	}
	if t.Layer, err = r.str(); err != nil {
		return t, err
	}
	tx, err := r.varint()
	if err != nil {
		return t, err
	}
	ty, err := r.varint()
	if err != nil {
		return t, err
	}
	if tx < -1<<31 || tx > 1<<31-1 || ty < -1<<31 || ty > 1<<31-1 {
		return t, fmt.Errorf("%w: tile coordinate out of range", ErrBadFormat)
	}
	t.TX, t.TY = int32(tx), int32(ty)
	if t.Clock, err = r.uvarint(); err != nil {
		return t, err
	}
	if t.Created, err = r.uvarint(); err != nil {
		return t, err
	}
	if t.TTLSeconds, err = r.uvarint(); err != nil {
		return t, err
	}
	// The CRC covers every byte before it; its offset is recovered from
	// the reader's remaining length.
	crcAt := len(data) - r.buf.Len()
	want, err := r.uvarint()
	if err != nil {
		return t, err
	}
	if got := uint64(crc32.Checksum(data[:crcAt], castagnoli)); got != want {
		return t, fmt.Errorf("%w: tombstone crc mismatch", ErrBadFormat)
	}
	if r.buf.Len() != 0 {
		return t, fmt.Errorf("%w: %d trailing bytes after tombstone", ErrBadFormat, r.buf.Len())
	}
	// Canonical-form check: varints admit padded encodings, and a
	// padded marker would break the byte-identical-replicas invariant
	// while still carrying a valid CRC an attacker can recompute.
	if !bytes.Equal(EncodeTombstone(t), data) {
		return t, fmt.Errorf("%w: non-canonical tombstone encoding", ErrBadFormat)
	}
	return t, nil
}

// IsTombstone reports whether a payload carries the tombstone magic —
// a cheap sniff for dispatch; full validation is DecodeTombstone's job.
func IsTombstone(data []byte) bool {
	r := &reader{buf: bytes.NewReader(data)}
	magic, err := r.uvarint()
	return err == nil && magic == tombstoneMagic
}
