package storage

import (
	"encoding/binary"
	"strconv"
)

// DigestBuckets is the fan-out of a layer digest: every key of a layer
// falls into one of these buckets by coordinate hash, and each bucket
// summarises its (key, clock, CRC) tuples into one 64-bit digest. An
// anti-entropy sweeper compares the fixed-size bucket vector between
// replicas and fetches per-key tuples only for buckets that disagree —
// the two-level Merkle-style exchange that keeps steady-state sweep
// traffic independent of key count.
const DigestBuckets = 16

// DigestEntry is one key's digest tuple: coordinates, logical clock,
// write-time checksum, and whether the entry is a deletion marker.
// Created/TTLSeconds are populated only on tombstone listings, where
// the sweeper needs them to rebuild its GC ledger after a restart.
type DigestEntry struct {
	TX         int32  `json:"tx"`
	TY         int32  `json:"ty"`
	Clock      uint64 `json:"clock"`
	Sum        string `json:"crc"`
	Tomb       bool   `json:"tomb,omitempty"`
	Created    uint64 `json:"created,omitempty"`
	TTLSeconds uint64 `json:"ttl,omitempty"`
}

// BucketDigest is one bucket's summary: entry count plus the
// order-independent XOR of entry hashes, hex-encoded.
type BucketDigest struct {
	Count  int    `json:"count"`
	Digest string `json:"digest"`
}

// LayerDigest is the /v1/digest document for one layer: a fixed
// DigestBuckets-long bucket vector covering live tiles and tombstones
// alike — a deleted key digests differently from an absent one, which
// is what lets sweeps converge "absences" too.
type LayerDigest struct {
	Layer   string         `json:"layer"`
	Count   int            `json:"count"`
	Buckets []BucketDigest `json:"buckets"`
}

// DigestBucketOf maps tile coordinates to their digest bucket. The
// assignment depends only on (tx, ty), so every replica of a key files
// it under the same bucket regardless of which node computes the
// digest.
func DigestBucketOf(tx, ty int32) int {
	var b [8]byte
	binary.LittleEndian.PutUint32(b[0:], uint32(tx))
	binary.LittleEndian.PutUint32(b[4:], uint32(ty))
	return int(digestMix(fnv64(b[:])) >> 60 & (DigestBuckets - 1))
}

// DigestEntryHash folds one entry into its 64-bit leaf hash. Buckets
// XOR leaf hashes, so two replicas' buckets are equal exactly when
// they hold the same set of (key, clock, CRC, tomb) tuples, in any
// order.
func DigestEntryHash(e DigestEntry) uint64 {
	var b [25]byte
	binary.LittleEndian.PutUint32(b[0:], uint32(e.TX))
	binary.LittleEndian.PutUint32(b[4:], uint32(e.TY))
	binary.LittleEndian.PutUint64(b[8:], e.Clock)
	if e.Tomb {
		b[16] = 1
	}
	copy(b[17:], e.Sum) // CRC32-C hex is 8 bytes
	return digestMix(fnv64(b[:]))
}

// fnv64 is FNV-1a over a byte slice.
func fnv64(data []byte) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range data {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// digestMix is a splitmix64-style finalizer spreading FNV's weak high
// bits before they pick a bucket.
func digestMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// formatDigest renders a bucket digest for the wire.
func formatDigest(x uint64) string { return strconv.FormatUint(x, 16) }
