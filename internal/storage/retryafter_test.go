package storage

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientHonorsRetryAfter: a shed 503 carrying Retry-After must be
// retried after the server's hint (capped by the per-attempt timeout),
// not the exponential schedule. The backoff policy here is set so slow
// (10s base) that falling back to it would blow the test deadline —
// success within it proves the hint won.
func TestClientHonorsRetryAfter(t *testing.T) {
	data := EncodeBinary(core_NewTinyMap(t))
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "30") // way beyond the attempt timeout
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set(ChecksumHeader, Checksum(data))
		_, _ = w.Write(data)
	}))
	t.Cleanup(srv.Close)

	client := &Client{
		Base:    srv.URL,
		Timeout: 100 * time.Millisecond, // caps the 30s hint
		Retry: RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   10 * time.Second, // exponential path would stall the test
			MaxDelay:    10 * time.Second,
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	got, err := client.GetTile(ctx, TileKey{Layer: "base", TX: 0, TY: 0})
	if err != nil {
		t.Fatalf("GetTile through a shedding server: %v", err)
	}
	elapsed := time.Since(start)
	if string(got) != string(data) {
		t.Error("payload mismatch after retry")
	}
	if hits.Load() != 2 {
		t.Errorf("hits = %d, want 2", hits.Load())
	}
	// Slept at least the capped hint, nowhere near the raw 30s.
	if elapsed < 100*time.Millisecond || elapsed > 2*time.Second {
		t.Errorf("retry slept %v; want ~100ms (hint capped by per-attempt timeout)", elapsed)
	}
}

// TestClientRetries429 verifies rate-limit responses are transient and
// the Retry-After hint is honored on them too.
func TestClientRetries429(t *testing.T) {
	data := EncodeBinary(core_NewTinyMap(t))
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0") // zero hint: exponential fallback
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set(ChecksumHeader, Checksum(data))
		_, _ = w.Write(data)
	}))
	t.Cleanup(srv.Close)
	client := &Client{
		Base:  srv.URL,
		Retry: RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	}
	if _, err := client.GetTile(context.Background(), TileKey{Layer: "base", TX: 0, TY: 0}); err != nil {
		t.Fatalf("429s not retried: %v", err)
	}
	if hits.Load() != 3 {
		t.Errorf("hits = %d, want 3", hits.Load())
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
		// approx marks date-based values compared loosely.
		approx bool
	}{
		{"", 0, false},
		{"7", 7 * time.Second, false},
		{"0", 0, false},
		{"-3", 0, false},
		{"garbage", 0, false},
		{time.Now().Add(3 * time.Second).UTC().Format(http.TimeFormat), 3 * time.Second, true},
		{time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat), 0, false},
	}
	for _, tc := range cases {
		got := parseRetryAfter(tc.in)
		if tc.approx {
			if got <= 0 || got > tc.want {
				t.Errorf("parseRetryAfter(%q) = %v, want (0, %v]", tc.in, got, tc.want)
			}
		} else if got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// countingWriter records WriteHeader calls so header-ordering bugs
// (double WriteHeader, headers set after the status is on the wire)
// are detectable.
type countingWriter struct {
	header      http.Header
	statusCalls []int
	body        strings.Builder
}

func newCountingWriter() *countingWriter { return &countingWriter{header: http.Header{}} }

func (c *countingWriter) Header() http.Header { return c.header }
func (c *countingWriter) WriteHeader(s int)   { c.statusCalls = append(c.statusCalls, s) }
func (c *countingWriter) Write(p []byte) (int, error) {
	if len(c.statusCalls) == 0 {
		c.statusCalls = append(c.statusCalls, http.StatusOK)
	}
	c.body.Write(p)
	return len(p), nil
}

func TestWriteJSONErrorSingleWriteHeader(t *testing.T) {
	w := newCountingWriter()
	writeJSONError(w, http.StatusBadRequest, "bad \x00 message \xff")
	if len(w.statusCalls) != 1 || w.statusCalls[0] != http.StatusBadRequest {
		t.Fatalf("WriteHeader calls = %v, want exactly [400]", w.statusCalls)
	}
	if ct := w.header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(w.body.String()), &body); err != nil {
		t.Errorf("error body is not JSON: %v (%q)", err, w.body.String())
	}
}

// TestWriteJSONEncodeFailure: an unmarshalable value must degrade to a
// single 500 JSON error — never a double WriteHeader.
func TestWriteJSONEncodeFailure(t *testing.T) {
	w := newCountingWriter()
	writeJSON(w, func() {}) // funcs cannot marshal
	if len(w.statusCalls) != 1 || w.statusCalls[0] != http.StatusInternalServerError {
		t.Fatalf("WriteHeader calls = %v, want exactly [500]", w.statusCalls)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(w.body.String()), &body); err != nil || body.Error == "" {
		t.Errorf("encode-failure body = %q", w.body.String())
	}
}

func TestWriteJSONSuccessSingleWriteHeader(t *testing.T) {
	w := newCountingWriter()
	writeJSON(w, []string{"base"})
	if len(w.statusCalls) != 1 || w.statusCalls[0] != http.StatusOK {
		t.Fatalf("WriteHeader calls = %v, want exactly [200]", w.statusCalls)
	}
	if w.header.Get(ChecksumHeader) == "" {
		t.Error("JSON response missing checksum header")
	}
}
