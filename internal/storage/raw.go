package storage

import (
	"encoding/binary"
	"math"

	"hdmaps/internal/core"
)

// RawParams configures EncodeRawSize, which models the storage footprint
// of point-cloud-backed HD map formats: instead of vector geometry, such
// formats persist a dense laser scan of the road surface (the "large-
// scale laser point cloud data" Li et al. remove to get their two-order-
// of-magnitude saving).
type RawParams struct {
	// PointsPerSqM is the surface scan density (default 30, a mobile-
	// mapping-system figure after merging traversals).
	PointsPerSqM float64
	// BytesPerPoint is the per-return storage (default 16: 3×float32
	// position + float32 intensity).
	BytesPerPoint int
	// RoadWidth fallback when lanelets are absent (default 7 m).
	RoadWidth float64
}

func (p *RawParams) defaults() {
	if p.PointsPerSqM <= 0 {
		p.PointsPerSqM = 30
	}
	if p.BytesPerPoint <= 0 {
		p.BytesPerPoint = 16
	}
	if p.RoadWidth <= 0 {
		p.RoadWidth = 7
	}
}

// EncodeRawSize returns the byte size a raw point-cloud encoding of the
// map's drivable surface would occupy. The cloud itself is not
// materialised (it would be gigabytes for city maps); the size model is
// surface area × density × bytes/point, plus the vector layer for
// topology, exactly the composition of the formats the storage experiment
// compares.
func EncodeRawSize(m *core.Map, p RawParams) int64 {
	p.defaults()
	var area float64
	for _, id := range m.LaneletIDs() {
		l, _ := m.Lanelet(id)
		// Approximate the lanelet surface as centreline length × width
		// inferred from bound spacing.
		width := 3.5
		if lb, err := m.Line(l.Left); err == nil {
			if rb, err := m.Line(l.Right); err == nil && len(lb.Geometry) > 0 && len(rb.Geometry) > 0 {
				width = lb.Geometry.DistanceTo(rb.Geometry[0])
				if width <= 0 || math.IsNaN(width) {
					width = 3.5
				}
			}
		}
		area += l.Length() * width
	}
	if area == 0 {
		// No relational layer: estimate from line extents.
		var length float64
		for _, id := range m.LineIDs() {
			l, _ := m.Line(id)
			length += l.Geometry.Length()
		}
		area = length * p.RoadWidth / 2
	}
	points := area * p.PointsPerSqM
	return int64(points)*int64(p.BytesPerPoint) + int64(len(EncodeBinary(m)))
}

// SampleRawChunk materialises a small representative chunk of the raw
// encoding (capped at maxPoints) so tests can validate the layout without
// allocating city-scale buffers: packed little-endian float32 x, y, z,
// intensity records.
func SampleRawChunk(m *core.Map, p RawParams, maxPoints int) []byte {
	p.defaults()
	if maxPoints <= 0 {
		return nil
	}
	buf := make([]byte, 0, maxPoints*p.BytesPerPoint)
	var rec [16]byte
	n := 0
	for _, id := range m.LaneletIDs() {
		if n >= maxPoints {
			break
		}
		l, _ := m.Lanelet(id)
		L := l.Length()
		step := math.Sqrt(1 / p.PointsPerSqM)
		for s := 0.0; s < L && n < maxPoints; s += step {
			pt := l.Centerline.At(s)
			binary.LittleEndian.PutUint32(rec[0:], math.Float32bits(float32(pt.X)))
			binary.LittleEndian.PutUint32(rec[4:], math.Float32bits(float32(pt.Y)))
			binary.LittleEndian.PutUint32(rec[8:], math.Float32bits(float32(0)))
			binary.LittleEndian.PutUint32(rec[12:], math.Float32bits(float32(0.1)))
			buf = append(buf, rec[:p.BytesPerPoint]...)
			n++
		}
	}
	return buf
}
