package storage_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hdmaps/internal/core"
	"hdmaps/internal/geo"
	"hdmaps/internal/obs"
	"hdmaps/internal/resilience"
	"hdmaps/internal/storage"
)

// syncBuffer is a goroutine-safe log sink: the server handler logs from
// its own goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// logRecords decodes a JSON-lines log buffer.
func logRecords(t *testing.T, raw string) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(raw), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

// findRecord returns the first record with the given msg, polling
// briefly: the server's request log is written after the response body
// is flushed, so it can trail the client's return by a moment.
func findRecord(t *testing.T, buf *syncBuffer, msg string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		for _, rec := range logRecords(t, buf.String()) {
			if rec["msg"] == msg {
				return rec
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no %q record in log:\n%s", msg, buf.String())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTraceEndToEnd proves one trace ID joins every observation point
// of a single tile fetch: the client's structured log, the server's
// structured log, the HTTP response header, and — on errors — the JSON
// error body.
func TestTraceEndToEnd(t *testing.T) {
	store := storage.NewMemStore()
	m := core.NewMap("traced")
	m.AddPoint(core.PointElement{Class: core.ClassSign, Pos: geo.V3(1, 2, 0)})
	key := storage.TileKey{Layer: "base", TX: 1, TY: 2}
	if err := store.Put(key, storage.EncodeBinary(m)); err != nil {
		t.Fatal(err)
	}

	var serverLog, clientLog syncBuffer
	handler := resilience.NewHandler(storage.NewTileServer(store), resilience.Config{
		Log:     obs.NewLogger(&serverLog, "tile-server", slog.LevelInfo),
		Metrics: obs.NewRegistry(),
	})
	srv := httptest.NewServer(handler)
	defer srv.Close()

	client := &storage.Client{
		Base: srv.URL,
		Log:  obs.NewLogger(&clientLog, "client", slog.LevelInfo),
	}

	// Mint the trace on the caller's context so the expected ID is known
	// up front; the client must propagate, not replace, it.
	ctx, trace := obs.EnsureTraceID(context.Background())
	if _, err := client.GetTile(ctx, key); err != nil {
		t.Fatal(err)
	}

	crec := findRecord(t, &clientLog, "tile fetched")
	if got := crec["trace_id"]; got != trace {
		t.Errorf("client log trace_id = %v, want %s", got, trace)
	}
	if got := crec["component"]; got != "client" {
		t.Errorf("client log component = %v", got)
	}
	srec := findRecord(t, &serverLog, "request")
	if got := srec["trace_id"]; got != trace {
		t.Errorf("server log trace_id = %v, want %s", got, trace)
	}

	// Response-header leg: the server echoes the inbound trace ID.
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/tiles/base/1/2", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceHeader, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got != trace {
		t.Errorf("response %s = %q, want %q", obs.TraceHeader, got, trace)
	}

	// Error leg: a miss carries the trace in the JSON error body too, so
	// a vehicle can report exactly which failed exchange it saw.
	req, err = http.NewRequest(http.MethodGet, srv.URL+"/v1/tiles/base/9/9", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceHeader, trace)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing tile status = %d", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["trace_id"] != trace {
		t.Errorf("error body trace_id = %q, want %q", body["trace_id"], trace)
	}
	if body["error"] == "" {
		t.Error("error body lost its error message")
	}
	if got := resp.Header.Get(obs.TraceHeader); got != trace {
		t.Errorf("error response header trace = %q, want %q", got, trace)
	}

	// A request with no inbound trace still gets one minted server-side.
	resp, err = http.Get(srv.URL + "/v1/tiles/base/1/2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if minted := resp.Header.Get(obs.TraceHeader); minted == "" || minted == trace {
		t.Errorf("server minted trace = %q (client sent none, prior trace %s)", minted, trace)
	}
}

// slowStore delays reads so a traced fetch crosses the tracer's slow
// threshold and tail sampling keeps both legs of the span tree.
type slowStore struct {
	storage.TileStore
	delay time.Duration
}

func (s slowStore) Get(key storage.TileKey) ([]byte, error) {
	time.Sleep(s.delay)
	return s.TileStore.Get(key)
}

// TestSpanTreeEndToEnd extends TestTraceEndToEnd from trace IDs to span
// trees: one slow tile fetch must yield one trace with two legs —
// the client's (retry attempts as children of the operation span) and
// the server's (pipeline stages as children of the request span) —
// linked across the wire by the attempt span ID, with stage durations
// consistent with the roots, and discoverable from a /metricz exemplar
// that resolves on /tracez.
func TestSpanTreeEndToEnd(t *testing.T) {
	store := storage.NewMemStore()
	m := core.NewMap("span-traced")
	m.AddPoint(core.PointElement{Class: core.ClassSign, Pos: geo.V3(1, 2, 0)})
	key := storage.TileKey{Layer: "base", TX: 1, TY: 2}
	if err := store.Put(key, storage.EncodeBinary(m)); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.TracerConfig{
		SlowThreshold: 2 * time.Millisecond,
		Capacity:      16,
		MaxSpans:      32,
		Metrics:       reg,
	})
	handler := resilience.NewHandler(
		storage.NewTileServer(slowStore{TileStore: store, delay: 10 * time.Millisecond}),
		resilience.Config{Metrics: reg, Tracer: tracer})
	srv := httptest.NewServer(handler)
	defer srv.Close()

	client := &storage.Client{Base: srv.URL, Tracer: tracer}
	ctx, trace := obs.EnsureTraceID(context.Background())
	if _, err := client.GetTile(ctx, key); err != nil {
		t.Fatal(err)
	}

	// Both legs finalize asynchronously (the server's root ends in a
	// deferred hook after the response is flushed), so poll briefly.
	var legs []*obs.TraceSnapshot
	deadline := time.Now().Add(2 * time.Second)
	for len(legs) < 2 && time.Now().Before(deadline) {
		legs = tracer.TraceByID(trace)
		time.Sleep(time.Millisecond)
	}
	if len(legs) != 2 {
		t.Fatalf("want 2 legs (client + server) for trace %s, got %d", trace, len(legs))
	}

	rootOf := func(leg *obs.TraceSnapshot) obs.SpanSnapshot {
		for _, s := range leg.Spans {
			if s.SpanID == leg.RootSpanID {
				return s
			}
		}
		t.Fatalf("leg %s has no root span %s", leg.TraceID, leg.RootSpanID)
		return obs.SpanSnapshot{}
	}
	var clientLeg, serverLeg *obs.TraceSnapshot
	for _, leg := range legs {
		if leg.TraceID != trace {
			t.Fatalf("leg trace ID = %s, want %s", leg.TraceID, trace)
		}
		switch rootOf(leg).Name {
		case "client.get_tile":
			clientLeg = leg
		case "server.request":
			serverLeg = leg
		}
	}
	if clientLeg == nil || serverLeg == nil {
		t.Fatalf("missing a leg: client=%v server=%v", clientLeg, serverLeg)
	}
	for _, leg := range legs {
		if leg.Reason != obs.SampledSlow {
			t.Errorf("leg %s sampled for %q, want %q", rootOf(leg).Name, leg.Reason, obs.SampledSlow)
		}
	}

	// Client leg: retry attempts are children of the operation span.
	croot := rootOf(clientLeg)
	var attempts []obs.SpanSnapshot
	for _, s := range clientLeg.Spans {
		if s.Name == "client.attempt" {
			if s.ParentID != croot.SpanID {
				t.Errorf("attempt parent = %s, want client root %s", s.ParentID, croot.SpanID)
			}
			attempts = append(attempts, s)
		}
	}
	if len(attempts) != 1 {
		t.Fatalf("want 1 client.attempt span, got %d", len(attempts))
	}
	if got := attempts[0].Attrs["attempt"]; got != "1" {
		t.Errorf("attempt attr = %q, want \"1\"", got)
	}

	// Cross-wire link: the server root's remote parent is the client's
	// attempt span, carried on the X-Span-Id header.
	sroot := rootOf(serverLeg)
	if serverLeg.RemoteParent == "" || serverLeg.RemoteParent != attempts[0].SpanID {
		t.Errorf("server remote parent = %q, want attempt span %s",
			serverLeg.RemoteParent, attempts[0].SpanID)
	}
	if sroot.ParentID != serverLeg.RemoteParent {
		t.Errorf("server root parent = %q, want remote parent %q", sroot.ParentID, serverLeg.RemoteParent)
	}

	// Server leg: the pipeline stages nest under the request root and
	// their windows stay inside the root's.
	const epsilon = int64(5 * time.Millisecond)
	stages := map[string]obs.SpanSnapshot{}
	for _, s := range serverLeg.Spans {
		if s.SpanID == sroot.SpanID {
			continue
		}
		if s.ParentID != sroot.SpanID {
			t.Errorf("stage %s parent = %s, want server root %s", s.Name, s.ParentID, sroot.SpanID)
		}
		if s.OffsetNS < 0 || s.OffsetNS+s.DurationNS > sroot.DurationNS+epsilon {
			t.Errorf("stage %s window [%d, %d] escapes root duration %d",
				s.Name, s.OffsetNS, s.OffsetNS+s.DurationNS, sroot.DurationNS)
		}
		stages[s.Name] = s
	}
	var sequential int64
	for _, name := range []string{"cache.lookup", "store.read", "response.write"} {
		s, ok := stages[name]
		if !ok {
			t.Fatalf("server leg missing %s stage; have %v", name, stages)
		}
		sequential += s.DurationNS
	}
	if sequential > sroot.DurationNS+epsilon {
		t.Errorf("sequential stages sum %dns exceed root %dns", sequential, sroot.DurationNS)
	}
	if sr := stages["store.read"]; sr.DurationNS < int64(10*time.Millisecond) {
		t.Errorf("store.read duration %s shorter than the injected 10ms delay",
			time.Duration(sr.DurationNS))
	}

	// The latency histogram carries the trace as an exemplar (written
	// just after the leg lands in the recorder, so poll), and that
	// exemplar resolves on /tracez.
	exemplar := ""
	for exemplar == "" && time.Now().Before(deadline) {
		snap := reg.Snapshot()
		for name, hs := range snap.Histograms {
			if !strings.HasPrefix(name, "resilience.http.latency_seconds.") {
				continue
			}
			for _, b := range hs.Buckets {
				if b.Exemplar != nil && b.Exemplar.TraceID == trace {
					exemplar = b.Exemplar.TraceID
				}
			}
			if hs.OverflowExemplar != nil && hs.OverflowExemplar.TraceID == trace {
				exemplar = hs.OverflowExemplar.TraceID
			}
		}
		if exemplar == "" {
			time.Sleep(time.Millisecond)
		}
	}
	if exemplar == "" {
		t.Fatal("no resilience.http.latency_seconds exemplar carries the trace ID")
	}
	resp, err := http.Get(srv.URL + "/tracez?trace=" + exemplar)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/tracez?trace=%s status = %d", exemplar, resp.StatusCode)
	}
	var byID struct {
		TraceID string               `json:"trace_id"`
		Legs    []*obs.TraceSnapshot `json:"legs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&byID); err != nil {
		t.Fatal(err)
	}
	if byID.TraceID != trace || len(byID.Legs) != 2 {
		t.Fatalf("/tracez resolved trace=%s legs=%d, want %s with 2 legs", byID.TraceID, len(byID.Legs), trace)
	}

	// The text waterfall merges both legs into one tree.
	resp, err = http.Get(srv.URL + "/tracez?trace=" + exemplar + "&format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	water := string(raw)
	for _, want := range []string{"client.get_tile", "client.attempt", "server.request", "store.read", "legs=2"} {
		if !strings.Contains(water, want) {
			t.Errorf("waterfall missing %q:\n%s", want, water)
		}
	}
}
