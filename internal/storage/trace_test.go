package storage_test

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hdmaps/internal/core"
	"hdmaps/internal/geo"
	"hdmaps/internal/obs"
	"hdmaps/internal/resilience"
	"hdmaps/internal/storage"
)

// syncBuffer is a goroutine-safe log sink: the server handler logs from
// its own goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// logRecords decodes a JSON-lines log buffer.
func logRecords(t *testing.T, raw string) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(raw), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

// findRecord returns the first record with the given msg, polling
// briefly: the server's request log is written after the response body
// is flushed, so it can trail the client's return by a moment.
func findRecord(t *testing.T, buf *syncBuffer, msg string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		for _, rec := range logRecords(t, buf.String()) {
			if rec["msg"] == msg {
				return rec
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no %q record in log:\n%s", msg, buf.String())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTraceEndToEnd proves one trace ID joins every observation point
// of a single tile fetch: the client's structured log, the server's
// structured log, the HTTP response header, and — on errors — the JSON
// error body.
func TestTraceEndToEnd(t *testing.T) {
	store := storage.NewMemStore()
	m := core.NewMap("traced")
	m.AddPoint(core.PointElement{Class: core.ClassSign, Pos: geo.V3(1, 2, 0)})
	key := storage.TileKey{Layer: "base", TX: 1, TY: 2}
	if err := store.Put(key, storage.EncodeBinary(m)); err != nil {
		t.Fatal(err)
	}

	var serverLog, clientLog syncBuffer
	handler := resilience.NewHandler(storage.NewTileServer(store), resilience.Config{
		Log:     obs.NewLogger(&serverLog, "tile-server", slog.LevelInfo),
		Metrics: obs.NewRegistry(),
	})
	srv := httptest.NewServer(handler)
	defer srv.Close()

	client := &storage.Client{
		Base: srv.URL,
		Log:  obs.NewLogger(&clientLog, "client", slog.LevelInfo),
	}

	// Mint the trace on the caller's context so the expected ID is known
	// up front; the client must propagate, not replace, it.
	ctx, trace := obs.EnsureTraceID(context.Background())
	if _, err := client.GetTile(ctx, key); err != nil {
		t.Fatal(err)
	}

	crec := findRecord(t, &clientLog, "tile fetched")
	if got := crec["trace_id"]; got != trace {
		t.Errorf("client log trace_id = %v, want %s", got, trace)
	}
	if got := crec["component"]; got != "client" {
		t.Errorf("client log component = %v", got)
	}
	srec := findRecord(t, &serverLog, "request")
	if got := srec["trace_id"]; got != trace {
		t.Errorf("server log trace_id = %v, want %s", got, trace)
	}

	// Response-header leg: the server echoes the inbound trace ID.
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/tiles/base/1/2", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceHeader, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got != trace {
		t.Errorf("response %s = %q, want %q", obs.TraceHeader, got, trace)
	}

	// Error leg: a miss carries the trace in the JSON error body too, so
	// a vehicle can report exactly which failed exchange it saw.
	req, err = http.NewRequest(http.MethodGet, srv.URL+"/v1/tiles/base/9/9", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceHeader, trace)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing tile status = %d", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["trace_id"] != trace {
		t.Errorf("error body trace_id = %q, want %q", body["trace_id"], trace)
	}
	if body["error"] == "" {
		t.Error("error body lost its error message")
	}
	if got := resp.Header.Get(obs.TraceHeader); got != trace {
		t.Errorf("error response header trace = %q, want %q", got, trace)
	}

	// A request with no inbound trace still gets one minted server-side.
	resp, err = http.Get(srv.URL + "/v1/tiles/base/1/2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if minted := resp.Header.Get(obs.TraceHeader); minted == "" || minted == trace {
		t.Errorf("server minted trace = %q (client sent none, prior trace %s)", minted, trace)
	}
}
