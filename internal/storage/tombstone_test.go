package storage

import (
	"bytes"
	"errors"
	"testing"

	"hdmaps/internal/core"
)

func testTombstone() Tombstone {
	return Tombstone{Layer: "base", TX: 3, TY: -7, Clock: 42, Created: 1754000000, TTLSeconds: 86400}
}

func TestTombstoneRoundTrip(t *testing.T) {
	ts := testTombstone()
	data := EncodeTombstone(ts)
	got, err := DecodeTombstone(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != ts {
		t.Fatalf("round trip: got %+v want %+v", got, ts)
	}
	if !bytes.Equal(EncodeTombstone(got), data) {
		t.Fatal("re-encode is not byte-identical")
	}
	if !IsTombstone(data) {
		t.Fatal("IsTombstone(marker) = false")
	}
}

func TestTombstoneNeverDecodesAsTile(t *testing.T) {
	data := EncodeTombstone(testTombstone())
	if _, err := DecodeBinary(data); err == nil {
		t.Fatal("tombstone decoded as a live tile")
	}
	// And the reverse: a live tile is not a tombstone.
	tile := EncodeBinary(core.NewMap("v1"))
	if _, err := DecodeTombstone(tile); !errors.Is(err, ErrNotTombstone) {
		t.Fatalf("tile decoded as tombstone: err=%v", err)
	}
	if IsTombstone(tile) {
		t.Fatal("IsTombstone(tile) = true")
	}
}

func TestTombstoneDecodeTruncated(t *testing.T) {
	data := EncodeTombstone(testTombstone())
	for i := 0; i < len(data); i++ {
		if _, err := DecodeTombstone(data[:i]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", i)
		}
	}
}

func TestTombstoneDecodeMutated(t *testing.T) {
	orig := EncodeTombstone(testTombstone())
	for i := 0; i < len(orig); i++ {
		data := append([]byte(nil), orig...)
		data[i] ^= 0xff
		got, err := DecodeTombstone(data)
		if err == nil && got != testTombstone() {
			t.Fatalf("bit flip at %d decoded to different marker %+v", i, got)
		}
	}
}

func TestTombstoneDecodeTrailing(t *testing.T) {
	data := append(EncodeTombstone(testTombstone()), 0x00)
	if _, err := DecodeTombstone(data); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("trailing byte: err=%v, want ErrBadFormat", err)
	}
}

func TestTombstoneDecodeNonCanonical(t *testing.T) {
	// Re-pad the final CRC uvarint: same value, longer encoding, and the
	// CRC still verifies (it covers only bytes before itself). Canonical
	// form must reject it.
	ts := testTombstone()
	canon := EncodeTombstone(ts)
	w := &writer{}
	w.uvarint(tombstoneMagic)
	w.uvarint(tombstoneVersion)
	w.str(ts.Layer)
	w.varint(int64(ts.TX))
	w.varint(int64(ts.TY))
	w.uvarint(ts.Clock)
	w.uvarint(ts.Created)
	w.uvarint(ts.TTLSeconds)
	body := w.buf.Bytes()
	crc := canon[len(body):]
	// Pad: uvarint continuation — rewrite last CRC byte with high bit set
	// plus an extra 0x00 group encodes the same value in more bytes.
	padded := append(append([]byte(nil), body...), crc[:len(crc)-1]...)
	padded = append(padded, crc[len(crc)-1]|0x80, 0x00)
	if bytes.Equal(padded, canon) {
		t.Fatal("padding did not change encoding")
	}
	if _, err := DecodeTombstone(padded); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("non-canonical encoding: err=%v, want ErrBadFormat", err)
	}
}

func TestParseReplicaState(t *testing.T) {
	cases := []ReplicaState{
		{},
		{Tomb: true, Clock: 7},
		{Found: true, Clock: 12, Sum: "00c0ffee"},
	}
	for _, c := range cases {
		got, err := ParseReplicaState(c.String())
		if err != nil {
			t.Fatalf("parse %q: %v", c.String(), err)
		}
		if got != c {
			t.Fatalf("parse %q: got %+v want %+v", c.String(), got, c)
		}
	}
	for _, bad := range []string{"", "alive", "tomb:", "tomb:x", "live:1", "live:x:aa"} {
		if _, err := ParseReplicaState(bad); err == nil {
			t.Fatalf("parse %q succeeded", bad)
		}
	}
}

func TestFresherState(t *testing.T) {
	// Clock dominates.
	if !FresherState(false, 2, []byte("a"), true, 1, []byte("z")) {
		t.Fatal("higher clock should win regardless of kind")
	}
	// Clock tie: tombstone beats live.
	if !FresherState(true, 5, []byte("a"), false, 5, []byte("z")) {
		t.Fatal("tombstone should win a clock tie")
	}
	if FresherState(false, 5, []byte("z"), true, 5, []byte("a")) {
		t.Fatal("live tile should lose a clock tie against a tombstone")
	}
	// Same kind, same clock: bytes decide.
	if !FresherState(false, 5, []byte("b"), false, 5, []byte("a")) {
		t.Fatal("byte-greater payload should win a same-kind tie")
	}
	// Full tie: not fresher (stable).
	if FresherState(true, 5, []byte("a"), true, 5, []byte("a")) {
		t.Fatal("identical states must not be 'fresher'")
	}
}

func FuzzTombstoneDecode(f *testing.F) {
	f.Add(EncodeTombstone(testTombstone()))
	f.Add(EncodeTombstone(Tombstone{Layer: "", Clock: 0}))
	f.Add(EncodeTombstone(Tombstone{Layer: "x", TX: -1 << 31, TY: 1<<31 - 1, Clock: ^uint64(0), Created: 1, TTLSeconds: 2}))
	f.Add([]byte{})
	f.Add([]byte{0xd4, 0xaa, 0x91, 0xc2, 0x04})
	f.Add(EncodeBinary(core.NewMap("fuzz")))
	f.Fuzz(func(t *testing.T, data []byte) {
		ts, err := DecodeTombstone(data) // must never panic
		if err != nil {
			if !errors.Is(err, ErrNotTombstone) && !errors.Is(err, ErrBadFormat) && !errors.Is(err, ErrVersion) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		// Anything that decodes must round-trip byte-identically...
		if !bytes.Equal(EncodeTombstone(ts), data) {
			t.Fatalf("accepted non-canonical encoding: %+v", ts)
		}
		// ...and must never also parse as a live tile.
		if _, err := DecodeBinary(data); err == nil {
			t.Fatal("payload decodes as both tombstone and tile")
		}
	})
}
