package storage

import (
	"sort"
	"sync"
	"time"
)

// TileCache keeps last-known-good tile payloads on the vehicle so the
// map stack can keep working — explicitly flagged as degraded — when
// the distribution server is unreachable. It is a bounded LRU keyed by
// TileKey and safe for concurrent use.
type TileCache struct {
	mu    sync.Mutex
	max   int
	seq   uint64
	tiles map[TileKey]*cacheEntry
}

type cacheEntry struct {
	data     []byte
	storedAt time.Time
	seq      uint64
}

// NewTileCache creates a cache holding at most max tiles (<=0 means
// 1024).
func NewTileCache(max int) *TileCache {
	if max <= 0 {
		max = 1024
	}
	return &TileCache{max: max, tiles: make(map[TileKey]*cacheEntry)}
}

// Put stores (a copy of) a tile payload as the last-known-good version
// for its key, evicting the least recently used entry when full.
func (c *TileCache) Put(key TileKey, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	if _, ok := c.tiles[key]; !ok && len(c.tiles) >= c.max {
		var victim TileKey
		var oldest uint64 = ^uint64(0)
		for k, e := range c.tiles {
			if e.seq < oldest {
				oldest, victim = e.seq, k
			}
		}
		delete(c.tiles, victim)
	}
	c.tiles[key] = &cacheEntry{data: cp, storedAt: time.Now(), seq: c.seq}
}

// Get returns a copy of the cached payload, when it was stored, and
// whether it was present. A hit refreshes recency.
func (c *TileCache) Get(key TileKey) ([]byte, time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.tiles[key]
	if !ok {
		return nil, time.Time{}, false
	}
	c.seq++
	e.seq = c.seq
	cp := make([]byte, len(e.data))
	copy(cp, e.data)
	return cp, e.storedAt, true
}

// Keys lists cached tiles of a layer in Morton order — the offline
// fallback for region listing when the server is down.
func (c *TileCache) Keys(layer string) []TileKey {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []TileKey
	for k := range c.tiles {
		if k.Layer == layer {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Morton() < out[j].Morton() })
	return out
}

// Len reports how many tiles are cached.
func (c *TileCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.tiles)
}
