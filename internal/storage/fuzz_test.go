package storage

import (
	"errors"
	"testing"

	"hdmaps/internal/core"
	"hdmaps/internal/geo"
)

// hostileSeeds crafts inputs that historically break length-prefixed
// decoders: valid headers followed by forged huge counts.
func hostileSeeds() [][]byte {
	var out [][]byte
	header := func() *writer {
		w := &writer{}
		w.uvarint(binaryMagic)
		w.uvarint(binaryVersion)
		w.str("x")
		w.uvarint(0) // clock
		return w
	}
	// Huge point count with no payload behind it.
	w := header()
	w.uvarint(1 << 62)
	out = append(out, w.buf.Bytes())
	// One line whose polyline claims 2^40 vertices.
	w = header()
	w.uvarint(0)       // points
	w.uvarint(1)       // lines
	w.uvarint(1)       // id
	w.uvarint(0)       // class
	w.uvarint(0)       // boundary
	w.uvarint(1 << 40) // polyline vertex count — must not allocate
	out = append(out, w.buf.Bytes())
	// Huge string length in the map name.
	w = &writer{}
	w.uvarint(binaryMagic)
	w.uvarint(binaryVersion)
	w.uvarint(1 << 50) // name length
	out = append(out, w.buf.Bytes())
	return out
}

// FuzzDecodeBinary asserts the decode path is total: arbitrary bytes
// either decode to a re-encodable map or return a wrapped ErrBadFormat/
// ErrVersion — never a panic, never an unbounded allocation. This is
// the tile server's trust boundary: every uploaded tile and every
// cached payload goes through DecodeBinary.
func FuzzDecodeBinary(f *testing.F) {
	m := testWorld(f, 777)
	valid := EncodeBinary(m)
	f.Add(valid)
	for _, cut := range []int{0, 1, 2, 4, 8, len(valid) / 4, len(valid) / 2, len(valid) - 1} {
		f.Add(valid[:cut])
	}
	tiny := core.NewMap("t")
	tiny.AddPoint(core.PointElement{Class: core.ClassSign, Pos: geo.V3(1, 2, 3)})
	f.Add(EncodeBinary(tiny))
	for _, s := range hostileSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dm, err := DecodeBinary(data)
		if err != nil {
			if !errors.Is(err, ErrBadFormat) && !errors.Is(err, ErrVersion) {
				t.Fatalf("decode error is not a codec sentinel: %v", err)
			}
			return
		}
		// A successful decode must survive a round trip.
		re := EncodeBinary(dm)
		if _, err := DecodeBinary(re); err != nil {
			t.Fatalf("re-encode of decoded map does not decode: %v", err)
		}
	})
}

// TestDecodeBinaryTruncation truncates a real tile at every byte
// offset: every strict prefix must fail cleanly (the format has no
// trailing padding, so no prefix is a complete map) and never panic.
func TestDecodeBinaryTruncation(t *testing.T) {
	m := testWorld(t, 778)
	data := EncodeBinary(m)
	if _, err := DecodeBinary(data); err != nil {
		t.Fatalf("full tile does not decode: %v", err)
	}
	for i := 0; i < len(data); i++ {
		dm, err := DecodeBinary(data[:i])
		if err == nil {
			t.Fatalf("truncation at %d/%d decoded cleanly (%d elements)", i, len(data), dm.NumElements())
		}
		if !errors.Is(err, ErrBadFormat) && !errors.Is(err, ErrVersion) {
			t.Fatalf("truncation at %d: non-sentinel error %v", i, err)
		}
	}
}

// TestDecodeBinaryHostileCounts runs the crafted over-allocation
// probes directly (the fuzz corpus, minus the fuzzer).
func TestDecodeBinaryHostileCounts(t *testing.T) {
	for i, s := range hostileSeeds() {
		if _, err := DecodeBinary(s); err == nil {
			t.Errorf("hostile seed %d decoded cleanly", i)
		} else if !errors.Is(err, ErrBadFormat) {
			t.Errorf("hostile seed %d: non-sentinel error %v", i, err)
		}
	}
}

// TestDecodeBinaryBitFlips flips each byte of a real tile in turn —
// the single-tile analogue of wire corruption. Decoding may succeed
// (the flip can land in a float) but must never panic, and a reported
// error must be a codec sentinel.
func TestDecodeBinaryBitFlips(t *testing.T) {
	m := testWorld(t, 779)
	data := EncodeBinary(m)
	for i := 0; i < len(data); i++ {
		cp := make([]byte, len(data))
		copy(cp, data)
		cp[i] ^= 0x55
		dm, err := DecodeBinary(cp)
		if err != nil {
			if !errors.Is(err, ErrBadFormat) && !errors.Is(err, ErrVersion) {
				t.Fatalf("flip at %d: non-sentinel error %v", i, err)
			}
			continue
		}
		_ = EncodeBinary(dm)
	}
}
