package resilience

import (
	"container/list"
	"sync"
)

// responseCache is a bounded LRU of captured 200-responses keyed by
// request path — the server-side hot-tile cache. Unlike the vehicle's
// storage.TileCache (which exists to serve *stale* data in outages),
// this cache must never serve stale data: the handler invalidates a
// path the moment a PUT or DELETE for it is accepted, so a read-through
// hit is always byte-identical to what the store would return. The
// racing case — a detached singleflight leader holding pre-write bytes
// when the write's invalidation runs — is closed on the flightGroup
// side: writes poison in-flight calls for the path, and the leader's
// put is skipped atomically with that check (see flightGroup.finish),
// so an invalidation can never be undone by a stale late insert.
type responseCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recent; values are *cacheItem
	m   map[string]*list.Element
}

type cacheItem struct {
	key  string
	resp *capturedResponse
}

// newResponseCache creates a cache holding at most max responses
// (max <= 0 means 1024).
func newResponseCache(max int) *responseCache {
	if max <= 0 {
		max = 1024
	}
	return &responseCache{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the cached response for key, refreshing recency.
func (c *responseCache) get(key string) (*capturedResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*cacheItem).resp, true
}

// put stores a response, evicting the least recently used entry when
// full. The capture must not be mutated after insertion.
func (c *responseCache) put(key string, resp *capturedResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		e.Value.(*cacheItem).resp = resp
		c.ll.MoveToFront(e)
		return
	}
	if c.ll.Len() >= c.max {
		back := c.ll.Back()
		if back != nil {
			c.ll.Remove(back)
			delete(c.m, back.Value.(*cacheItem).key)
		}
	}
	c.m[key] = c.ll.PushFront(&cacheItem{key: key, resp: resp})
}

// invalidate drops key (a no-op when absent).
func (c *responseCache) invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		c.ll.Remove(e)
		delete(c.m, key)
	}
}

// len reports the number of cached responses (diagnostic).
func (c *responseCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
