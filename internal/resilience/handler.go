package resilience

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"hdmaps/internal/obs"
	"hdmaps/internal/obs/eventlog"
)

// ClientIDHeader names the requesting client for per-client rate
// limiting. Absent, the client is identified by remote address, so
// anonymous stampedes are still contained per source host.
const ClientIDHeader = "X-Client-Id"

// ShedHeader marks a response shed by the resilience layer's admission
// policy, naming the stage that refused it: "draining", "admission",
// or "rate-limit". The header partitions responses exactly as the
// counters do: it is present iff the request was counted in
// Stats.Shed, so load tooling classifying by header agrees with
// /statz. Deadline expiries are errors (counted in Errored) and carry
// Retry-After but no ShedHeader.
const ShedHeader = "X-Overload"

// Config tunes the overload policy. The zero value resolves to the
// defaults documented per field.
type Config struct {
	// MaxConcurrent is the admission semaphore capacity in weight units
	// (default 64).
	MaxConcurrent int64
	// WriteWeight is the admission weight of a mutating request —
	// decode-validating a tile PUT costs more than serving a cached GET
	// (default 4, clamped to MaxConcurrent). Reads weigh 1.
	WriteWeight int64
	// MaxWait bounds how long a request may queue for admission before
	// being shed (default 100ms). Shedding beats queueing: a vehicle
	// would rather hear "retry in 1s" than wait unboundedly.
	MaxWait time.Duration
	// RequestTimeout is the per-request deadline once admitted
	// (default 5s).
	RequestTimeout time.Duration
	// RetryAfter is the hint attached to shed responses (default 1s).
	// Rate-limited responses use the limiter's exact refill time when
	// it is longer.
	RetryAfter time.Duration
	// RatePerClient is each client's sustained request rate in
	// requests/second; 0 disables per-client limiting.
	RatePerClient float64
	// RateBurst is the per-client burst allowance (default
	// ceil(RatePerClient), at least 1).
	RateBurst int
	// MaxClients bounds the rate-limiter's client map (default 4096).
	MaxClients int
	// CacheSize is the hot-tile response cache capacity in responses
	// (default 1024; negative disables caching).
	CacheSize int
	// Now is the clock used by the rate limiter (wall clock when nil);
	// tests inject a stepped fake.
	Now func() time.Time
	// Metrics is the registry the handler's counters and latency
	// histograms register in. Nil gets a private registry — the handler
	// still serves /metricz, but its series don't mix into the
	// process-wide namespace, which is what tests asserting exact
	// counts want. Production callers pass obs.Default().
	Metrics *obs.Registry
	// Tracer, when set, wraps every proxied request in a span tree
	// (server.request → ratelimit.check / admission.wait / cache.lookup
	// / coalesce.wait / store.read / response.write), tail-sampled into
	// the tracer's flight recorder and served on /tracez. Slow, errored,
	// and shed requests are kept; everything else takes the tracer's
	// near-free drop path. Nil disables tracing entirely.
	Tracer *obs.Tracer
	// Log receives structured request/shed records; nil discards them.
	Log *slog.Logger
	// Events, when set, receives cluster-journal entries for the
	// handler's lifecycle edges: drain start, drain completion, and
	// recovered handler panics. Typically the cluster router's journal
	// so serving-layer faults share the /eventz timeline; nil discards.
	Events *eventlog.Log
}

func (c Config) maxConcurrent() int64 {
	if c.MaxConcurrent <= 0 {
		return 64
	}
	return c.MaxConcurrent
}

func (c Config) writeWeight() int64 {
	w := c.WriteWeight
	if w <= 0 {
		w = 4
	}
	if m := c.maxConcurrent(); w > m {
		w = m
	}
	return w
}

func (c Config) maxWait() time.Duration {
	if c.MaxWait <= 0 {
		return 100 * time.Millisecond
	}
	return c.MaxWait
}

func (c Config) requestTimeout() time.Duration {
	if c.RequestTimeout <= 0 {
		return 5 * time.Second
	}
	return c.RequestTimeout
}

func (c Config) retryAfter() time.Duration {
	if c.RetryAfter <= 0 {
		return time.Second
	}
	return c.RetryAfter
}

func (c Config) rateBurst() int {
	if c.RateBurst > 0 {
		return c.RateBurst
	}
	b := int(c.RatePerClient)
	if float64(b) < c.RatePerClient {
		b++
	}
	if b < 1 {
		b = 1
	}
	return b
}

// Handler wraps an http.Handler (in this repo: storage.TileServer) in
// the full overload pipeline:
//
//	draining? -> rate limit -> admission -> timeout -> coalesce -> cache -> inner
//
// plus the meta endpoints outside the pipeline:
//
//	GET /healthz  -> 200 while the process is alive
//	GET /readyz   -> 200 while accepting traffic, 503 once draining
//	GET /statz    -> JSON StatsSnapshot
//	GET /metricz  -> JSON registry snapshot
//	GET /tracez   -> flight-recorder span trees (404s per trace when
//	                 no Tracer is configured)
//
// Every proxied request resolves to exactly one of accepted, shed, or
// errored (see Stats), and shed responses always carry Retry-After.
type Handler struct {
	inner   http.Handler
	cfg     Config
	sem     *Semaphore
	limiter *ClientLimiter
	cache   *responseCache // nil when disabled
	flight  *flightGroup
	stats   *Stats

	metrics *obs.Registry
	tracer  *obs.Tracer
	log     *slog.Logger
	events  *eventlog.Log
	metricz http.Handler
	tracez  http.Handler
	// latency is the per-request duration by route × status class,
	// observed exactly once per proxied request, so the bucket totals
	// across all series sum to Stats.Submitted at quiescence.
	latency *obs.HistogramVec2
	// admissionWait is time spent queued at the admission semaphore
	// (both admitted and shed-after-waiting requests observe it).
	admissionWait *obs.Histogram
	// shedReason partitions Stats.Shed by refusing stage.
	shedReason *obs.CounterVec

	// leaders tracks detached singleflight leader goroutines, which
	// outlive the requests that spawned them and are not part of
	// inflight; Drain waits for them so shutdown never abandons a store
	// read mid-flight.
	leaders sync.WaitGroup

	mu       sync.Mutex
	draining bool
	inflight int
	idle     chan struct{} // non-nil while a Drain() waits for quiescence
}

// routeClasses and statusClasses are the label domains of the request
// latency family — fixed here so the series count is bounded no matter
// what paths or statuses traffic produces.
var (
	routeClasses  = []string{"tile", "list", "layers"}
	statusClasses = []string{"2xx", "3xx", "4xx", "429", "5xx", "503"}
)

// NewHandler wraps inner in the overload pipeline.
func NewHandler(inner http.Handler, cfg Config) *Handler {
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	h := &Handler{
		inner:         inner,
		cfg:           cfg,
		sem:           NewSemaphore(cfg.maxConcurrent()),
		flight:        newFlightGroup(),
		metrics:       reg,
		tracer:        cfg.Tracer,
		log:           obs.OrNop(cfg.Log),
		events:        cfg.Events,
		metricz:       obs.MetricsHandler(reg),
		tracez:        obs.TracezHandler(cfg.Tracer),
		stats:         newStats(reg),
		latency:       reg.HistogramVec2("resilience.http.latency_seconds", nil, routeClasses, statusClasses),
		admissionWait: reg.Histogram("resilience.admission.wait_seconds", nil),
		shedReason:    reg.CounterVec("resilience.shed.reason", []string{"draining", "admission", "rate_limit"}),
	}
	if cfg.RatePerClient > 0 {
		h.limiter = NewClientLimiter(cfg.RatePerClient, cfg.rateBurst(), cfg.MaxClients, cfg.Now)
	}
	if cfg.CacheSize >= 0 {
		h.cache = newResponseCache(cfg.CacheSize)
	}
	return h
}

// Stats exposes the serving counters.
func (h *Handler) Stats() StatsSnapshot {
	snap := h.stats.Snapshot()
	h.mu.Lock()
	snap.Draining = h.draining
	h.mu.Unlock()
	return snap
}

// Metrics returns the handler's registry — what /metricz serves, and
// where callers mount additional instruments (e.g. the storage client
// of a co-located ingest worker) so one scrape covers the process.
func (h *Handler) Metrics() *obs.Registry { return h.metrics }

// StartDrain stops admitting new requests: from now on every proxied
// request is shed with 503 + Retry-After and /readyz reports 503, while
// requests already in flight run to completion. Idempotent.
func (h *Handler) StartDrain() {
	h.mu.Lock()
	first := !h.draining
	h.draining = true
	h.mu.Unlock()
	if first {
		h.event(eventlog.TypeDrainStart, "admission gate closed", "")
	}
}

// event appends one entry to the shared cluster journal; a no-op when
// no journal was configured.
func (h *Handler) event(typ, detail, traceID string) {
	if h.events != nil {
		h.events.Append(typ, "", detail, traceID)
	}
}

// Drain performs graceful shutdown of the handler: StartDrain, then
// wait until every in-flight request — and every detached singleflight
// leader still reading the store on their behalf — has completed or
// ctx expires. A nil return means zero requests were abandoned and no
// goroutine is still touching the store.
func (h *Handler) Drain(ctx context.Context) error {
	h.StartDrain()
	h.mu.Lock()
	var idle chan struct{}
	if h.inflight > 0 {
		if h.idle == nil {
			h.idle = make(chan struct{})
		}
		idle = h.idle
	}
	h.mu.Unlock()
	if idle != nil {
		select {
		case <-idle:
		case <-ctx.Done():
			return fmt.Errorf("resilience: drain deadline with %d requests in flight: %w",
				h.Stats().Inflight, ctx.Err())
		}
	}
	// Inflight is now zero and the drain gate sheds new arrivals, so no
	// further leaders can be spawned — the WaitGroup can only count down.
	leadersDone := make(chan struct{})
	go func() {
		h.leaders.Wait()
		close(leadersDone)
	}()
	select {
	case <-leadersDone:
		h.event(eventlog.TypeDrainDone, "all in-flight requests and detached reads complete", "")
		return nil
	case <-ctx.Done():
		return fmt.Errorf("resilience: drain deadline with detached store reads still running: %w",
			ctx.Err())
	}
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/healthz":
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
		return
	case "/readyz":
		h.mu.Lock()
		draining := h.draining
		h.mu.Unlock()
		if draining {
			w.Header().Set("Retry-After", retryAfterValue(h.cfg.retryAfter()))
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte("draining\n"))
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ready\n"))
		return
	case "/statz":
		data, _ := json.Marshal(h.Stats())
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(append(data, '\n'))
		return
	case "/metricz":
		h.metricz.ServeHTTP(w, r)
		return
	case "/tracez":
		h.tracez.ServeHTTP(w, r)
		return
	}

	// Resolve the request's trace before any counter or response: the
	// ID is echoed on the response header (and read back from there by
	// error writers into JSON bodies), so client, server log, and wire
	// all agree on one ID per request.
	r, trace := obs.EnsureRequestTrace(r)
	w.Header().Set(obs.TraceHeader, trace)
	// Start the request's root span. A span ID the caller stamped on the
	// wire (a client retry attempt) becomes the root's remote parent, so
	// the server-side tree nests under the exact attempt that reached
	// us. With no tracer configured all span calls below no-op.
	ctx := r.Context()
	if h.tracer != nil {
		if parent := obs.SanitizeTraceID(r.Header.Get(obs.SpanHeader)); parent != "" {
			ctx = obs.WithRemoteParent(ctx, parent)
		}
	}
	ctx, root := h.tracer.StartSpan(ctx, "server.request")
	if root != nil {
		root.SetAttr("method", r.Method)
		r = r.WithContext(ctx)
	}
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	defer func() {
		dur := time.Since(start)
		route, status := routeClass(r.URL.Path), statusClass(sw.Status())
		root.SetAttr("route", route)
		root.SetAttrInt("status", int64(sw.Status()))
		if code := sw.Status(); code == http.StatusTooManyRequests || code >= 500 {
			root.Fail("http " + status)
		}
		// The root span and the latency histogram observe the one
		// measured duration, and the bucket exemplar records the trace
		// only when tail sampling actually kept it — every exemplar on
		// /metricz resolves on /tracez.
		root.EndWith(dur)
		h.latency.With(route, status).ObserveWithExemplar(dur.Seconds(), root.SampledTraceID())
		h.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("method", r.Method), slog.String("path", r.URL.Path),
			slog.String("route", route), slog.Int("status", sw.Status()),
			slog.Duration("dur", dur))
	}()
	w = sw

	h.stats.submitted.Inc()
	h.beginInflight()
	defer h.endInflight()

	h.mu.Lock()
	draining := h.draining
	h.mu.Unlock()
	if draining {
		h.shed(w, r, http.StatusServiceUnavailable, "draining", h.cfg.retryAfter(), false)
		return
	}

	if h.limiter != nil {
		lsp := root.StartChild("ratelimit.check")
		ok, retryIn := h.limiter.Allow(clientID(r))
		lsp.End()
		if !ok {
			if retryIn < h.cfg.retryAfter() {
				retryIn = h.cfg.retryAfter()
			}
			h.shed(w, r, http.StatusTooManyRequests, "rate-limit", retryIn, true)
			return
		}
	}

	weight := int64(1)
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		weight = h.cfg.writeWeight()
	}
	actx, acancel := context.WithTimeout(r.Context(), h.cfg.maxWait())
	asp := root.StartChild("admission.wait")
	waitStart := time.Now()
	err := h.sem.Acquire(actx, weight)
	// One measurement feeds both views, so the histogram and the span
	// can never disagree about how long this request queued.
	wait := time.Since(waitStart)
	h.admissionWait.Observe(wait.Seconds())
	asp.EndWith(wait)
	acancel()
	if err != nil {
		h.shed(w, r, http.StatusServiceUnavailable, "admission", h.cfg.retryAfter(), false)
		return
	}
	defer h.sem.Release(weight)

	rctx, rcancel := context.WithTimeout(r.Context(), h.cfg.requestTimeout())
	defer rcancel()
	if r.Method == http.MethodGet && isTilePath(r.URL.Path) {
		h.serveRead(w, r, rctx)
	} else {
		h.serveDirect(w, r, rctx)
	}
}

// statusWriter records the status line so the deferred latency
// observation can label by status class. A body write without an
// explicit WriteHeader means 200, per net/http.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (s *statusWriter) WriteHeader(code int) {
	if s.status == 0 {
		s.status = code
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusWriter) Write(b []byte) (int, error) {
	if s.status == 0 {
		s.status = http.StatusOK
	}
	return s.ResponseWriter.Write(b)
}

// Status returns the response status, 200 when the handler wrote a
// body without one, 0 when nothing was written at all (classified as
// "other" by statusClass).
func (s *statusWriter) Status() int {
	if s.status == 0 {
		return http.StatusOK
	}
	return s.status
}

// routeClass buckets a request path into the bounded route label:
// single-tile reads, tile listings, the layer index, or other.
func routeClass(path string) string {
	switch {
	case isTilePath(path):
		return "tile"
	case strings.HasPrefix(path, "/v1/tiles"):
		return "list"
	case strings.HasPrefix(path, "/v1/layers"):
		return "layers"
	default:
		return obs.OtherLabel
	}
}

// statusClass buckets a status code: the overload-relevant exact codes
// (429, 503) get their own series, everything else its century class.
func statusClass(code int) string {
	switch {
	case code == http.StatusTooManyRequests:
		return "429"
	case code == http.StatusServiceUnavailable:
		return "503"
	case code >= 200 && code < 300:
		return "2xx"
	case code >= 300 && code < 400:
		return "3xx"
	case code >= 400 && code < 500:
		return "4xx"
	case code >= 500 && code < 600:
		return "5xx"
	default:
		return obs.OtherLabel
	}
}

// serveRead answers a tile GET through cache and singleflight. Only
// tile paths take this route: their responses depend on nothing but
// the path (plus query, which joins the flight key), so coalescing
// cannot leak one client's response to another — the documented
// contract for wrapping arbitrary handlers. The actual store read runs
// detached from any one client's context: a coalesced read serves
// every waiter, so the leader hanging up must not poison the herd
// behind it.
func (h *Handler) serveRead(w http.ResponseWriter, r *http.Request, ctx context.Context) {
	path := r.URL.Path
	key := path
	if q := r.URL.RawQuery; q != "" {
		// Distinct queries are distinct requests; they must neither
		// coalesce with nor be cached as the bare path.
		key += "?" + q
	}
	root := obs.SpanFromContext(ctx)
	cacheable := h.cache != nil && key == path
	if cacheable {
		csp := root.StartChild("cache.lookup")
		resp, ok := h.cache.get(path)
		csp.End()
		if ok {
			h.stats.cacheHits.Add(1)
			h.stats.accepted.Add(1)
			wsp := root.StartChild("response.write")
			resp.writeTo(w)
			wsp.End()
			return
		}
		h.stats.cacheMisses.Add(1)
	}

	call, leader := h.flight.join(key)
	if leader {
		ictx, icancel := context.WithTimeout(context.Background(), h.cfg.requestTimeout())
		req := r.Clone(ictx)
		// The detached read must not touch the origin connection's body.
		req.Body = http.NoBody
		// The store read belongs to this request's trace even though it
		// runs detached; if it outlives the root span the exporter
		// records it as unfinished rather than waiting.
		rsp := root.StartChild("store.read")
		h.leaders.Add(1)
		go func() {
			defer h.leaders.Done()
			defer icancel()
			resp, err := h.runInner(req)
			if err != nil {
				rsp.Fail(err.Error())
			}
			rsp.End()
			var put func()
			if err == nil && cacheable && resp.status == http.StatusOK {
				// The insert runs inside finish, atomically with the
				// poison check, so a PUT that completed after this read
				// can never have its invalidation undone by a stale
				// re-insert (cache.go's freshness invariant).
				put = func() { h.cache.put(path, resp) }
			}
			h.flight.finish(key, call, resp, err, put)
		}()
	} else {
		h.stats.coalesced.Add(1)
	}

	wsp := root.StartChild("coalesce.wait")
	select {
	case <-call.done:
		wsp.End()
		if call.err != nil {
			h.stats.errored.Add(1)
			writeOverloadError(w, http.StatusInternalServerError, call.err.Error(), "", 0)
			return
		}
		h.stats.accepted.Add(1)
		osp := root.StartChild("response.write")
		call.resp.writeTo(w)
		osp.End()
	case <-ctx.Done():
		wsp.Fail("request deadline exceeded")
		wsp.End()
		h.stats.errored.Add(1)
		writeOverloadError(w, http.StatusServiceUnavailable, "request deadline exceeded",
			"", h.cfg.retryAfter())
	}
}

// serveDirect runs a request synchronously on its own connection: all
// mutations (their bodies cannot be detached) and any GET that is not
// a single-tile read (list endpoints and unknown inner routes, whose
// responses may vary by header and so must never be shared across
// clients). Writes poison in-flight reads of the touched path and
// invalidate its cache entry.
func (h *Handler) serveDirect(w http.ResponseWriter, r *http.Request, ctx context.Context) {
	root := obs.SpanFromContext(ctx)
	xsp := root.StartChild("store.exec")
	resp, err := h.runInner(r.WithContext(ctx))
	if err != nil {
		xsp.Fail(err.Error())
	}
	xsp.End()
	if r.Method == http.MethodPut || r.Method == http.MethodDelete {
		// Order matters: poison first, then invalidate. A leader that
		// read pre-write bytes either sees the poison (its insert is
		// skipped) or already inserted (the invalidation removes it).
		h.flight.poisonPath(r.URL.Path)
		if h.cache != nil {
			h.cache.invalidate(r.URL.Path)
		}
	}
	if err != nil {
		h.stats.errored.Add(1)
		writeOverloadError(w, http.StatusInternalServerError, err.Error(), "", 0)
		return
	}
	if ctx.Err() != nil {
		// The deadline expired while the store worked; the mutation may
		// have landed, but this client cannot be told so in time.
		h.stats.errored.Add(1)
		writeOverloadError(w, http.StatusServiceUnavailable, "request deadline exceeded",
			"", h.cfg.retryAfter())
		return
	}
	h.stats.accepted.Add(1)
	wsp := root.StartChild("response.write")
	resp.writeTo(w)
	wsp.End()
}

// runInner executes the wrapped handler into a buffered capture,
// converting a panic into an error so one poisoned request cannot take
// the serving process down.
func (h *Handler) runInner(r *http.Request) (resp *capturedResponse, err error) {
	h.stats.innerReqs.Add(1)
	defer func() {
		if p := recover(); p != nil {
			resp, err = nil, fmt.Errorf("handler panic: %v", p)
			h.event(eventlog.TypeHandlerPanic, fmt.Sprintf("%s %s: %v", r.Method, r.URL.Path, p),
				obs.SpanFromContext(r.Context()).TraceID())
		}
	}()
	c := newCapture()
	h.inner.ServeHTTP(c, r)
	return c, nil
}

// shed refuses a request with the policy's status, a Retry-After, and
// a JSON error body. reason is the wire spelling (ShedHeader value);
// the metric label replaces '-' to fit the label charset.
func (h *Handler) shed(w http.ResponseWriter, r *http.Request, status int, reason string, retryIn time.Duration, rateLimited bool) {
	// A shed request is exactly the kind of trace an operator wants
	// post-hoc: mark it failed so tail sampling keeps it.
	if sp := obs.SpanFromContext(r.Context()); sp != nil {
		sp.Fail("shed: " + reason)
	}
	h.stats.shed.Inc()
	if rateLimited {
		h.stats.rateLimited.Inc()
	}
	h.shedReason.With(strings.ReplaceAll(reason, "-", "_")).Inc()
	h.log.LogAttrs(r.Context(), slog.LevelWarn, "request shed",
		slog.String("reason", reason), slog.Int("status", status),
		slog.String("client", clientID(r)))
	writeOverloadError(w, status, "overloaded: "+reason, reason, retryIn)
}

// writeOverloadError emits a resilience-layer JSON error; retryIn > 0
// adds Retry-After, reason != "" adds ShedHeader. The trace ID the
// pipeline stamped on the response header is repeated in the body, so
// a client that only kept the payload can still quote the ID when
// filing a report.
func writeOverloadError(w http.ResponseWriter, status int, msg, reason string, retryIn time.Duration) {
	w.Header().Set("Content-Type", "application/json")
	if reason != "" {
		w.Header().Set(ShedHeader, reason)
	}
	if retryIn > 0 {
		w.Header().Set("Retry-After", retryAfterValue(retryIn))
	}
	w.WriteHeader(status)
	if trace := w.Header().Get(obs.TraceHeader); trace != "" {
		_, _ = fmt.Fprintf(w, "{\"error\":%q,\"trace_id\":%q}\n", msg, trace)
		return
	}
	_, _ = fmt.Fprintf(w, "{\"error\":%q}\n", msg)
}

// retryAfterValue renders a duration as whole seconds, rounded up so
// the client never retries early (the header has one-second
// granularity).
func retryAfterValue(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// clientID identifies the requester: the explicit header when set,
// else the remote host.
func clientID(r *http.Request) string {
	if id := r.Header.Get(ClientIDHeader); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// isTilePath reports whether path addresses a single tile
// (/v1/tiles/{layer}/{tx}/{ty}) — the only responses worth caching:
// they are immutable until the exact same path is PUT or DELETEd.
func isTilePath(path string) bool {
	parts := strings.Split(strings.TrimPrefix(path, "/"), "/")
	return len(parts) == 5 && parts[0] == "v1" && parts[1] == "tiles"
}

// beginInflight/endInflight track requests inside the handler for the
// drain barrier and the Inflight gauge.
func (h *Handler) beginInflight() {
	h.mu.Lock()
	h.inflight++
	h.mu.Unlock()
	h.stats.inflight.Add(1)
}

func (h *Handler) endInflight() {
	h.stats.inflight.Add(-1)
	h.mu.Lock()
	h.inflight--
	if h.inflight == 0 && h.idle != nil {
		close(h.idle)
		h.idle = nil
	}
	h.mu.Unlock()
}
