// Package resilience makes the tile-distribution server survive its own
// clients. PR 1's chaos work assumed the network fails; this package
// assumes the fleet stampedes: a token-bucket per-client rate limiter,
// a weighted-semaphore admission controller that sheds load with
// 503 + Retry-After instead of collapsing, singleflight coalescing of
// identical in-flight reads, a hot-tile read-through LRU, per-request
// timeouts, and graceful drain. The survey's distribution sub-area
// (§IV) assumes one central map server feeding fleets of vehicles — at
// that scale overload is a certainty, not an anomaly, so the overload
// path gets the same treatment PR 1 gave the failure path: explicit,
// bounded, and testable on demand.
package resilience

import (
	"container/list"
	"sync"
	"time"
)

// TokenBucket is a classic token-bucket rate limiter: capacity Burst
// tokens, refilled at Rate tokens/second. The zero value is unusable;
// construct with NewTokenBucket. Safe for concurrent use.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

// NewTokenBucket creates a bucket that starts full. rate <= 0 is
// treated as unlimited (Allow always succeeds); burst <= 0 defaults
// to 1. now may be nil for the wall clock — tests inject a stepped
// fake so refill behaviour is deterministic.
func NewTokenBucket(rate float64, burst int, now func() time.Time) *TokenBucket {
	if burst <= 0 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	b := &TokenBucket{rate: rate, burst: float64(burst), now: now}
	b.tokens = b.burst
	b.last = now()
	return b
}

// Allow consumes one token if available and reports whether it could.
func (b *TokenBucket) Allow() bool {
	if b.rate <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// RetryIn reports how long until one token will be available — the
// honest value for a Retry-After header. Zero when a token is ready
// now.
func (b *TokenBucket) RetryIn() time.Duration {
	if b.rate <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill()
	if b.tokens >= 1 {
		return 0
	}
	return time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// refill advances the bucket to now; callers hold b.mu.
func (b *TokenBucket) refill() {
	t := b.now()
	dt := t.Sub(b.last).Seconds()
	if dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = t
}

// ClientLimiter maintains one TokenBucket per client identity so one
// hot vehicle (or a buggy updater in a retry loop) cannot starve the
// rest of the fleet. The client set is a hard-bounded LRU: a new
// identity past maxClients evicts the least-recently-seen bucket in
// O(1), so a flood of unique spoofed X-Client-Id values can neither
// grow the map past the cap nor trigger repeated O(n) scans under the
// lock. The tradeoff is that such a flood can evict an actively
// rate-limited client's bucket, forgetting its debt — acceptable
// because the admission semaphore still bounds total concurrency, and
// an attacker minting fresh identities was never held by per-identity
// buckets in the first place.
type ClientLimiter struct {
	rate       float64
	burst      int
	maxClients int
	now        func() time.Time

	mu      sync.Mutex
	ll      *list.List               // front = most recently seen; values are *clientEntry
	buckets map[string]*list.Element
}

type clientEntry struct {
	id string
	b  *TokenBucket
}

// NewClientLimiter creates a limiter granting each client rate
// requests/second with the given burst. rate <= 0 disables limiting
// (Allow always succeeds). maxClients <= 0 defaults to 4096.
func NewClientLimiter(rate float64, burst, maxClients int, now func() time.Time) *ClientLimiter {
	if maxClients <= 0 {
		maxClients = 4096
	}
	if now == nil {
		now = time.Now
	}
	return &ClientLimiter{
		rate: rate, burst: burst, maxClients: maxClients, now: now,
		ll:      list.New(),
		buckets: make(map[string]*list.Element),
	}
}

// Allow consumes one token from id's bucket, reporting whether the
// request may proceed and, when it may not, how long the client should
// wait before retrying.
func (l *ClientLimiter) Allow(id string) (ok bool, retryIn time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	var b *TokenBucket
	if e, found := l.buckets[id]; found {
		l.ll.MoveToFront(e)
		b = e.Value.(*clientEntry).b
	} else {
		if len(l.buckets) >= l.maxClients {
			back := l.ll.Back()
			if back != nil {
				l.ll.Remove(back)
				delete(l.buckets, back.Value.(*clientEntry).id)
			}
		}
		b = NewTokenBucket(l.rate, l.burst, l.now)
		l.buckets[id] = l.ll.PushFront(&clientEntry{id: id, b: b})
	}
	l.mu.Unlock()
	if b.Allow() {
		return true, 0
	}
	return false, b.RetryIn()
}

// Len reports how many client buckets are live (diagnostic).
func (l *ClientLimiter) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
