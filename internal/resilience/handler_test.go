package resilience

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gatedHandler is an inner handler whose requests block until released,
// counting every execution.
type gatedHandler struct {
	calls   atomic.Int64
	entered chan struct{} // receives one value per request that starts
	release chan struct{} // each request waits for one value (nil = no gate)
	status  int
	body    string
}

func (g *gatedHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.calls.Add(1)
	if g.entered != nil {
		g.entered <- struct{}{}
	}
	if g.release != nil {
		<-g.release
	}
	status := g.status
	if status == 0 {
		status = http.StatusOK
	}
	w.WriteHeader(status)
	_, _ = w.Write([]byte(g.body))
}

// checkInvariant asserts the accounting identity on a quiescent handler.
func checkInvariant(t *testing.T, h *Handler) {
	t.Helper()
	s := h.Stats()
	if s.Inflight != 0 {
		t.Fatalf("checkInvariant on a busy handler: %d in flight", s.Inflight)
	}
	if s.Submitted != s.Accepted+s.Shed+s.Errored {
		t.Errorf("accounting broken: submitted %d != accepted %d + shed %d + errored %d",
			s.Submitted, s.Accepted, s.Shed, s.Errored)
	}
}

func get(t *testing.T, h http.Handler, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	req.RemoteAddr = "192.0.2.1:1234"
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestHandlerMetaEndpoints(t *testing.T) {
	h := NewHandler(&gatedHandler{body: "tile"}, Config{})
	if w := get(t, h, "/healthz", nil); w.Code != http.StatusOK {
		t.Errorf("healthz = %d", w.Code)
	}
	if w := get(t, h, "/readyz", nil); w.Code != http.StatusOK {
		t.Errorf("readyz = %d", w.Code)
	}
	h.StartDrain()
	if w := get(t, h, "/readyz", nil); w.Code != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d", w.Code)
	} else if w.Header().Get("Retry-After") == "" {
		t.Error("draining readyz missing Retry-After")
	}
	w := get(t, h, "/statz", nil)
	var snap StatsSnapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("statz not JSON: %v", err)
	}
	if !snap.Draining {
		t.Error("statz does not report draining")
	}
	// Meta endpoints are outside the accounting.
	if snap.Submitted != 0 {
		t.Errorf("meta endpoints counted as submitted: %d", snap.Submitted)
	}
}

func TestHandlerCacheReadThrough(t *testing.T) {
	inner := &gatedHandler{body: "tile-bytes"}
	h := NewHandler(inner, Config{})
	path := "/v1/tiles/base/1/2"

	for i := 0; i < 5; i++ {
		w := get(t, h, path, nil)
		if w.Code != http.StatusOK || w.Body.String() != "tile-bytes" {
			t.Fatalf("GET %d: %d %q", i, w.Code, w.Body.String())
		}
	}
	if got := inner.calls.Load(); got != 1 {
		t.Fatalf("inner calls = %d, want 1 (cache read-through)", got)
	}

	// PUT invalidates exactly that tile.
	req := httptest.NewRequest(http.MethodPut, path, strings.NewReader("new"))
	req.RemoteAddr = "192.0.2.1:1234"
	h.ServeHTTP(httptest.NewRecorder(), req)
	get(t, h, path, nil)
	if got := inner.calls.Load(); got != 3 { // 1 GET + 1 PUT + 1 refill GET
		t.Fatalf("inner calls after PUT = %d, want 3", got)
	}

	s := h.Stats()
	if s.CacheHits != 4 || s.CacheMisses != 2 {
		t.Errorf("cache hits/misses = %d/%d, want 4/2", s.CacheHits, s.CacheMisses)
	}
	checkInvariant(t, h)
}

func TestHandlerListResponsesNotCached(t *testing.T) {
	inner := &gatedHandler{body: "[]"}
	h := NewHandler(inner, Config{})
	get(t, h, "/v1/tiles/base", nil)
	get(t, h, "/v1/tiles/base", nil)
	get(t, h, "/v1/layers", nil)
	if got := inner.calls.Load(); got != 3 {
		t.Fatalf("list endpoints served from cache: %d inner calls, want 3", got)
	}
	checkInvariant(t, h)
}

func TestHandlerCoalescing(t *testing.T) {
	inner := &gatedHandler{
		entered: make(chan struct{}, 64),
		release: make(chan struct{}),
		body:    "hot",
	}
	// Cache disabled so coalescing alone carries the load.
	h := NewHandler(inner, Config{CacheSize: -1, MaxConcurrent: 64})

	const herd = 16
	var wg sync.WaitGroup
	codes := make(chan int, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := get(t, h, "/v1/tiles/base/0/0", nil)
			codes <- w.Code
		}()
	}
	<-inner.entered // the leader reached the store
	// Wait until every follower has joined the flight, then release.
	deadline := time.After(5 * time.Second)
	for h.Stats().Coalesced < herd-1 {
		select {
		case <-deadline:
			t.Fatalf("only %d coalesced", h.Stats().Coalesced)
		case <-time.After(time.Millisecond):
		}
	}
	close(inner.release)
	wg.Wait()
	close(codes)
	for c := range codes {
		if c != http.StatusOK {
			t.Errorf("herd member got %d", c)
		}
	}
	if got := inner.calls.Load(); got != 1 {
		t.Errorf("inner calls = %d, want 1 (coalesced)", got)
	}
	s := h.Stats()
	if s.Coalesced != herd-1 {
		t.Errorf("coalesced = %d, want %d", s.Coalesced, herd-1)
	}
	checkInvariant(t, h)
}

// mutableStore is an inner handler backed by one mutable body: GETs
// capture the current body then block until released (modelling a slow
// store read), PUTs replace the body immediately. It reproduces the
// read/write race window the cache must survive.
type mutableStore struct {
	mu      sync.Mutex
	body    string
	gets    atomic.Int64
	entered chan struct{}
	release chan struct{}
}

func (s *mutableStore) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPut {
		s.mu.Lock()
		s.body = "new"
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	s.gets.Add(1)
	s.mu.Lock()
	body := s.body
	s.mu.Unlock()
	_, _ = w.Write([]byte(body)) // bytes captured; possibly stale by release time
	s.entered <- struct{}{}
	<-s.release
}

// TestHandlerWriteDuringReadNotCachedStale pins the stale-cache race:
// a detached GET leader captures pre-PUT bytes, the PUT completes and
// invalidates the cache, and only then does the leader finish. Its
// late insert must be suppressed, or the cache would serve the old
// tile indefinitely.
func TestHandlerWriteDuringReadNotCachedStale(t *testing.T) {
	store := &mutableStore{
		body:    "old",
		entered: make(chan struct{}, 4),
		release: make(chan struct{}),
	}
	h := NewHandler(store, Config{MaxConcurrent: 8})
	path := "/v1/tiles/base/1/2"

	first := make(chan string, 1)
	go func() {
		w := get(t, h, path, nil)
		first <- w.Body.String()
	}()
	<-store.entered // leader holds "old" and is parked inside the store

	// The PUT lands while the read is in flight: store now says "new",
	// the cache entry (none yet) is invalidated, the flight poisoned.
	req := httptest.NewRequest(http.MethodPut, path, strings.NewReader("new"))
	req.RemoteAddr = "192.0.2.1:1234"
	h.ServeHTTP(httptest.NewRecorder(), req)

	close(store.release)
	// The racing reader may legitimately see the pre-write bytes...
	if got := <-first; got != "old" {
		t.Fatalf("racing read = %q, want the pre-write %q", got, "old")
	}
	// ...but the cache must not keep them: the next read goes back to
	// the store and returns the post-PUT bytes.
	w := get(t, h, path, nil)
	if got := w.Body.String(); got != "new" {
		t.Fatalf("post-PUT read = %q, want %q (stale bytes re-entered the cache)", got, "new")
	}
	if got := store.gets.Load(); got != 2 {
		t.Errorf("store gets = %d, want 2 (poisoned insert must not satisfy the refill)", got)
	}
	// The fresh bytes are cacheable as usual.
	w = get(t, h, path, nil)
	if got := w.Body.String(); got != "new" || store.gets.Load() != 2 {
		t.Errorf("refill not cached: body=%q gets=%d", got, store.gets.Load())
	}
	checkInvariant(t, h)
}

// TestHandlerQueryStringKeying pins that a tile GET with a query
// string neither coalesces with nor populates the bare path's cache
// entry, and is itself never cached.
func TestHandlerQueryStringKeying(t *testing.T) {
	inner := &gatedHandler{
		entered: make(chan struct{}, 2),
		release: make(chan struct{}),
		body:    "tile",
	}
	h := NewHandler(inner, Config{MaxConcurrent: 8})

	var wg sync.WaitGroup
	for _, target := range []string{"/v1/tiles/base/1/2?v=1", "/v1/tiles/base/1/2?v=2"} {
		wg.Add(1)
		go func(target string) {
			defer wg.Done()
			get(t, h, target, nil)
		}(target)
	}
	// Both variants must reach the inner handler — distinct queries are
	// distinct requests and may not share one flight.
	<-inner.entered
	<-inner.entered
	close(inner.release)
	wg.Wait()
	if got := h.Stats().Coalesced; got != 0 {
		t.Errorf("coalesced = %d, want 0 across distinct queries", got)
	}
	// Query responses were not cached — neither under their own key nor
	// under the bare path.
	get(t, h, "/v1/tiles/base/1/2?v=1", nil)
	get(t, h, "/v1/tiles/base/1/2", nil)
	if got := inner.calls.Load(); got != 4 {
		t.Errorf("inner calls = %d, want 4 (query responses leaked into the cache)", got)
	}
	checkInvariant(t, h)
}

// TestHandlerNonTileGetsNotCoalesced pins that coalescing is restricted
// to tile paths: responses of arbitrary inner routes may vary by
// header, so sharing one captured response across clients would leak.
func TestHandlerNonTileGetsNotCoalesced(t *testing.T) {
	inner := &gatedHandler{
		entered: make(chan struct{}, 2),
		release: make(chan struct{}),
		body:    "[]",
	}
	h := NewHandler(inner, Config{MaxConcurrent: 8, CacheSize: -1})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			get(t, h, "/v1/layers", nil)
		}()
	}
	<-inner.entered
	<-inner.entered // both concurrent list GETs reached the inner handler
	close(inner.release)
	wg.Wait()
	if got := h.Stats().Coalesced; got != 0 {
		t.Errorf("coalesced = %d, want 0 on non-tile paths", got)
	}
	checkInvariant(t, h)
}

func TestHandlerRateLimit(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	inner := &gatedHandler{body: "x"}
	h := NewHandler(inner, Config{RatePerClient: 1, RateBurst: 2, Now: clk.now, CacheSize: -1})

	hdrA := map[string]string{ClientIDHeader: "vehicle-a"}
	for i := 0; i < 2; i++ {
		if w := get(t, h, "/v1/layers", hdrA); w.Code != http.StatusOK {
			t.Fatalf("burst %d = %d", i, w.Code)
		}
	}
	w := get(t, h, "/v1/layers", hdrA)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-rate = %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	if w.Header().Get(ShedHeader) != "rate-limit" {
		t.Errorf("shed header = %q", w.Header().Get(ShedHeader))
	}
	// Another client is unaffected.
	if w := get(t, h, "/v1/layers", map[string]string{ClientIDHeader: "vehicle-b"}); w.Code != http.StatusOK {
		t.Errorf("vehicle-b punished: %d", w.Code)
	}
	// Time heals vehicle-a.
	clk.advance(2 * time.Second)
	if w := get(t, h, "/v1/layers", hdrA); w.Code != http.StatusOK {
		t.Errorf("post-refill = %d", w.Code)
	}
	s := h.Stats()
	if s.Shed != 1 || s.RateLimited != 1 {
		t.Errorf("shed/rateLimited = %d/%d, want 1/1", s.Shed, s.RateLimited)
	}
	checkInvariant(t, h)
}

func TestHandlerAdmissionShedding(t *testing.T) {
	inner := &gatedHandler{
		entered: make(chan struct{}, 8),
		release: make(chan struct{}),
		body:    "x",
	}
	h := NewHandler(inner, Config{MaxConcurrent: 1, MaxWait: 5 * time.Millisecond, CacheSize: -1})

	done := make(chan int, 1)
	go func() {
		w := get(t, h, "/v1/tiles/base/0/0", nil)
		done <- w.Code
	}()
	<-inner.entered // the slot is held

	// Distinct path: no coalescing, must fight for admission and lose.
	w := get(t, h, "/v1/tiles/base/9/9", nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("shed = %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("503 missing Retry-After")
	}
	if w.Header().Get(ShedHeader) != "admission" {
		t.Errorf("shed header = %q", w.Header().Get(ShedHeader))
	}
	close(inner.release)
	if c := <-done; c != http.StatusOK {
		t.Errorf("admitted request = %d", c)
	}
	checkInvariant(t, h)
}

func TestHandlerRequestTimeout(t *testing.T) {
	inner := &gatedHandler{
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
		body:    "slow",
	}
	h := NewHandler(inner, Config{RequestTimeout: 20 * time.Millisecond, CacheSize: -1})
	w := get(t, h, "/v1/tiles/base/0/0", nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("timeout = %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("timeout 503 missing Retry-After")
	}
	// Deadline expiries are counted in Errored, not Shed, so they must
	// not carry the shed marker: X-Overload present iff counted shed.
	if got := w.Header().Get(ShedHeader); got != "" {
		t.Errorf("deadline response carries %s=%q, but is counted errored", ShedHeader, got)
	}
	close(inner.release)
	s := h.Stats()
	if s.Errored != 1 {
		t.Errorf("errored = %d, want 1", s.Errored)
	}
	if s.Shed != 0 {
		t.Errorf("shed = %d, want 0", s.Shed)
	}
	checkInvariant(t, h)
}

func TestHandlerPanicIsolation(t *testing.T) {
	h := NewHandler(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("poisoned tile")
	}), Config{CacheSize: -1})
	w := get(t, h, "/v1/tiles/base/0/0", nil)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panic = %d, want 500", w.Code)
	}
	// Writes panic too — and must not leak the panic to the server.
	req := httptest.NewRequest(http.MethodPut, "/v1/tiles/base/0/0", strings.NewReader("x"))
	req.RemoteAddr = "192.0.2.1:1234"
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusInternalServerError {
		t.Fatalf("panic on PUT = %d, want 500", rw.Code)
	}
	s := h.Stats()
	if s.Errored != 2 {
		t.Errorf("errored = %d, want 2", s.Errored)
	}
	checkInvariant(t, h)
}

func TestHandlerDrain(t *testing.T) {
	inner := &gatedHandler{
		entered: make(chan struct{}, 4),
		release: make(chan struct{}),
		body:    "x",
	}
	h := NewHandler(inner, Config{CacheSize: -1, MaxConcurrent: 8})

	const inflight = 3
	codes := make(chan int, inflight)
	for i := 0; i < inflight; i++ {
		path := fmt.Sprintf("/v1/tiles/base/%d/0", i)
		go func() {
			w := get(t, h, path, nil)
			codes <- w.Code
		}()
	}
	for i := 0; i < inflight; i++ {
		<-inner.entered
	}
	h.StartDrain()

	// New traffic is refused with Retry-After while old traffic drains.
	w := get(t, h, "/v1/tiles/base/9/9", nil)
	if w.Code != http.StatusServiceUnavailable || w.Header().Get("Retry-After") == "" {
		t.Fatalf("drain shed: %d, Retry-After=%q", w.Code, w.Header().Get("Retry-After"))
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- h.Drain(ctx)
	}()
	close(inner.release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i := 0; i < inflight; i++ {
		if c := <-codes; c != http.StatusOK {
			t.Errorf("in-flight request dropped during drain: %d", c)
		}
	}
	checkInvariant(t, h)

	// Drain on an idle handler returns immediately; deadline exceeded is
	// reported when requests cannot finish.
	if err := h.Drain(context.Background()); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
}

// TestHandlerDrainWaitsForDetachedLeader pins that Drain does not
// certify quiescence while a detached singleflight leader — whose
// spawning client already hung up — is still reading the store.
func TestHandlerDrainWaitsForDetachedLeader(t *testing.T) {
	inner := &gatedHandler{
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
		body:    "x",
	}
	h := NewHandler(inner, Config{CacheSize: -1, RequestTimeout: time.Minute})

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/v1/tiles/base/0/0", nil).WithContext(ctx)
	req.RemoteAddr = "192.0.2.1:1234"
	done := make(chan int, 1)
	go func() {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		done <- w.Code
	}()
	<-inner.entered // the leader is inside the store
	cancel()        // the client abandons the read; the leader keeps going
	if code := <-done; code != http.StatusServiceUnavailable {
		t.Fatalf("abandoned read = %d, want 503", code)
	}
	if got := h.Stats().Inflight; got != 0 {
		t.Fatalf("inflight = %d after the client left, want 0", got)
	}

	// Zero inflight, yet the store is still being read: Drain must not
	// return nil until the leader finishes.
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer scancel()
	if err := h.Drain(sctx); err == nil {
		t.Fatal("drain certified quiescence with a detached store read still running")
	}
	close(inner.release)
	if err := h.Drain(context.Background()); err != nil {
		t.Fatalf("drain after leader finished: %v", err)
	}
}

func TestHandlerDrainDeadline(t *testing.T) {
	inner := &gatedHandler{
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	h := NewHandler(inner, Config{CacheSize: -1, RequestTimeout: time.Minute})
	go get(t, h, "/v1/tiles/base/0/0", nil)
	<-inner.entered
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := h.Drain(ctx); err == nil {
		t.Fatal("drain met its deadline with a stuck request in flight")
	}
	close(inner.release)
}
