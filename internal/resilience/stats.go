package resilience

import "hdmaps/internal/obs"

// Stats is the serving accounting, backed by the handler's obs
// registry so the same counters appear in /statz (this snapshot shape)
// and /metricz (the raw registry export). The accounting invariant the
// overload soak enforces: every request that enters the handler is
// counted in Submitted and leaves through exactly one of Accepted,
// Shed, or Errored — no request is ever lost silently, even under
// stampede or drain.
type Stats struct {
	submitted   *obs.Counter
	accepted    *obs.Counter
	shed        *obs.Counter
	rateLimited *obs.Counter
	errored     *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	coalesced   *obs.Counter
	innerReqs   *obs.Counter
	inflight    *obs.Gauge
}

// newStats registers the serving counters in reg. The metric names are
// the registry-side spelling of the StatsSnapshot fields; both views
// read the same atomic cells, so /statz and /metricz can never
// disagree.
func newStats(reg *obs.Registry) *Stats {
	return &Stats{
		submitted:   reg.Counter("resilience.http.submitted"),
		accepted:    reg.Counter("resilience.http.accepted"),
		shed:        reg.Counter("resilience.http.shed"),
		rateLimited: reg.Counter("resilience.http.rate_limited"),
		errored:     reg.Counter("resilience.http.errored"),
		cacheHits:   reg.Counter("resilience.cache.hits"),
		cacheMisses: reg.Counter("resilience.cache.misses"),
		coalesced:   reg.Counter("resilience.flight.coalesced"),
		innerReqs:   reg.Counter("resilience.http.inner_requests"),
		inflight:    reg.Gauge("resilience.http.inflight"),
	}
}

// StatsSnapshot is one consistent-enough read of the counters — what
// /statz serves. Consistency is per-counter (each is atomic); the
// invariant Submitted == Accepted+Shed+Errored holds exactly once the
// server is quiescent (Inflight == 0).
type StatsSnapshot struct {
	// Submitted counts every proxied request that entered the handler
	// (health/stats endpoints excluded).
	Submitted uint64 `json:"submitted"`
	// Accepted counts requests answered by the pipeline: cache hit,
	// coalesced read, or an inner-handler response of any status.
	Accepted uint64 `json:"accepted"`
	// Shed counts policy rejections: draining, admission queue full or
	// wait exceeded (503), and per-client rate limiting (429). Every
	// shed response carries Retry-After and the X-Overload header —
	// and only shed responses carry X-Overload, so header-based
	// classification agrees with this counter.
	Shed uint64 `json:"shed"`
	// RateLimited is the 429 subset of Shed.
	RateLimited uint64 `json:"rate_limited"`
	// Errored counts requests that failed inside the pipeline: the
	// per-request deadline expired or the inner handler panicked.
	// Deadline responses carry Retry-After but no X-Overload.
	Errored uint64 `json:"errored"`
	// CacheHits/CacheMisses count hot-tile cache lookups.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// Coalesced counts requests that piggybacked on another request's
	// in-flight read instead of reaching the store.
	Coalesced uint64 `json:"coalesced"`
	// InnerRequests counts executions of the wrapped handler — with a
	// pass-through store this equals store operations issued.
	InnerRequests uint64 `json:"inner_requests"`
	// Inflight is the live gauge of requests inside the handler.
	Inflight int64 `json:"inflight"`
	// Draining reports whether the handler has begun graceful drain.
	Draining bool `json:"draining"`
}

// Snapshot reads the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Submitted:     s.submitted.Value(),
		Accepted:      s.accepted.Value(),
		Shed:          s.shed.Value(),
		RateLimited:   s.rateLimited.Value(),
		Errored:       s.errored.Value(),
		CacheHits:     s.cacheHits.Value(),
		CacheMisses:   s.cacheMisses.Value(),
		Coalesced:     s.coalesced.Value(),
		InnerRequests: s.innerReqs.Value(),
		Inflight:      s.inflight.Value(),
	}
}
