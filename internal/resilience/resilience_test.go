package resilience

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a stepped test clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestTokenBucketRefill(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewTokenBucket(2, 3, clk.now) // 2 tokens/s, burst 3
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("burst token %d refused", i)
		}
	}
	if b.Allow() {
		t.Fatal("allowed past burst with no time elapsed")
	}
	if ri := b.RetryIn(); ri <= 0 || ri > time.Second {
		t.Fatalf("RetryIn = %v, want (0, 1s]", ri)
	}
	clk.advance(500 * time.Millisecond) // refills exactly 1 token
	if !b.Allow() {
		t.Fatal("refused after refill")
	}
	if b.Allow() {
		t.Fatal("allowed a token that has not refilled yet")
	}
	// Refill never exceeds burst.
	clk.advance(time.Hour)
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("post-idle token %d refused", i)
		}
	}
	if b.Allow() {
		t.Fatal("idle refill exceeded burst")
	}
}

func TestTokenBucketUnlimited(t *testing.T) {
	b := NewTokenBucket(0, 1, nil)
	for i := 0; i < 1000; i++ {
		if !b.Allow() {
			t.Fatal("unlimited bucket refused")
		}
	}
	if b.RetryIn() != 0 {
		t.Fatal("unlimited bucket has nonzero RetryIn")
	}
}

func TestClientLimiterIsolation(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	l := NewClientLimiter(1, 2, 0, clk.now)
	// Client a exhausts its burst; client b is unaffected.
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("a"); !ok {
			t.Fatalf("a burst %d refused", i)
		}
	}
	if ok, retryIn := l.Allow("a"); ok || retryIn <= 0 {
		t.Fatalf("a over budget: ok=%v retryIn=%v", ok, retryIn)
	}
	if ok, _ := l.Allow("b"); !ok {
		t.Fatal("b punished for a's stampede")
	}
}

func TestClientLimiterBoundedLRU(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	l := NewClientLimiter(1, 1, 8, clk.now)
	// A flood of unique identities (spoofed X-Client-Id) never grows the
	// map past the cap.
	for i := 0; i < 1000; i++ {
		l.Allow(fmt.Sprintf("spoof-%d", i))
		if n := l.Len(); n > 8 {
			t.Fatalf("client map exceeded cap: %d live after %d inserts", n, i+1)
		}
	}
	if n := l.Len(); n != 8 {
		t.Fatalf("len = %d, want 8 (full cap)", n)
	}
	// Eviction is least-recently-seen: an identity kept active survives
	// a flood that displaces the idle ones.
	l.Allow("vehicle-hot")
	for i := 0; i < 7; i++ {
		l.Allow(fmt.Sprintf("new-%d", i))
		l.Allow("vehicle-hot") // refresh recency (refused — no tokens — but seen)
	}
	l.Allow("new-last")
	if ok, _ := l.Allow("vehicle-hot"); ok {
		t.Fatal("active limited client was evicted by the flood (debt forgotten)")
	}
}

func TestSemaphoreWeighted(t *testing.T) {
	s := NewSemaphore(4)
	ctx := context.Background()
	if err := s.Acquire(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if !s.TryAcquire(1) {
		t.Fatal("unit did not fit beside weight-3")
	}
	if s.TryAcquire(1) {
		t.Fatal("acquired past capacity")
	}
	// A waiter too heavy for the whole semaphore fails fast.
	if err := s.Acquire(ctx, 5); err == nil {
		t.Fatal("over-capacity acquire succeeded")
	}
	// A bounded wait on a full semaphore times out.
	tctx, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	if err := s.Acquire(tctx, 1); err == nil {
		t.Fatal("acquire on full semaphore returned without capacity")
	}
	s.Release(3)
	s.Release(1)
	if got := s.InUse(); got != 0 {
		t.Fatalf("InUse = %d after full release", got)
	}
}

func TestSemaphoreFIFO(t *testing.T) {
	s := NewSemaphore(2)
	ctx := context.Background()
	if err := s.Acquire(ctx, 2); err != nil {
		t.Fatal(err)
	}
	// Heavy waiter queues first; light waiter must not overtake it.
	order := make(chan string, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := s.Acquire(ctx, 2); err == nil {
			order <- "heavy"
			s.Release(2)
		}
	}()
	// Give the heavy waiter time to enqueue before the light one.
	time.Sleep(20 * time.Millisecond)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := s.Acquire(ctx, 1); err == nil {
			order <- "light"
			s.Release(1)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	if s.TryAcquire(1) {
		t.Fatal("TryAcquire jumped the waiter queue")
	}
	s.Release(2)
	wg.Wait()
	close(order)
	var got []string
	for o := range order {
		got = append(got, o)
	}
	if len(got) != 2 || got[0] != "heavy" || got[1] != "light" {
		t.Fatalf("admission order = %v, want [heavy light]", got)
	}
}

func TestSemaphoreCancelledWaiterUnblocksQueue(t *testing.T) {
	s := NewSemaphore(2)
	ctx := context.Background()
	if err := s.Acquire(ctx, 2); err != nil {
		t.Fatal(err)
	}
	// Head waiter wants 2 (won't fit after partial release); it cancels,
	// and the waiter behind it (wants 1) must be granted.
	hctx, hcancel := context.WithCancel(ctx)
	headErr := make(chan error, 1)
	go func() { headErr <- s.Acquire(hctx, 2) }()
	time.Sleep(20 * time.Millisecond)
	got := make(chan error, 1)
	go func() { got <- s.Acquire(ctx, 1) }()
	time.Sleep(20 * time.Millisecond)
	s.Release(1) // 1 unit free: not enough for head (2), enough for second (1)
	hcancel()
	if err := <-headErr; err == nil {
		t.Fatal("cancelled head waiter acquired")
	}
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued waiter after cancelled head: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter behind cancelled head never granted")
	}
}

func TestResponseCacheLRU(t *testing.T) {
	c := newResponseCache(2)
	r := func(s string) *capturedResponse {
		cp := newCapture()
		_, _ = cp.Write([]byte(s))
		return cp
	}
	c.put("a", r("A"))
	c.put("b", r("B"))
	if _, ok := c.get("a"); !ok { // refresh a
		t.Fatal("a missing")
	}
	c.put("c", r("C")) // evicts b (LRU)
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently-used a evicted")
	}
	c.invalidate("a")
	if _, ok := c.get("a"); ok {
		t.Fatal("a survived invalidation")
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
}
