package resilience

import (
	"net/http"
	"strings"
	"sync"
)

// capturedResponse is a fully-buffered HTTP response: what a
// singleflight leader records from the inner handler and every
// coalesced waiter replays. The body and headers are treated as
// immutable once the capture completes, so sharing one capture across
// waiters is race-free.
type capturedResponse struct {
	status int
	header http.Header
	body   []byte
}

// newCapture makes an empty capture that doubles as the
// http.ResponseWriter handed to the inner handler.
func newCapture() *capturedResponse {
	return &capturedResponse{status: http.StatusOK, header: make(http.Header)}
}

// Header implements http.ResponseWriter.
func (c *capturedResponse) Header() http.Header { return c.header }

// WriteHeader implements http.ResponseWriter.
func (c *capturedResponse) WriteHeader(status int) { c.status = status }

// Write implements http.ResponseWriter.
func (c *capturedResponse) Write(p []byte) (int, error) {
	c.body = append(c.body, p...)
	return len(p), nil
}

// writeTo replays the capture onto a real ResponseWriter. Headers the
// outer pipeline already stamped on w win over captured ones: a cache
// hit or coalesced follower replays the leader's capture, and the
// leader's detached request carried the leader's trace ID — copying it
// blindly would overwrite this request's X-Trace-Id with another
// request's.
func (c *capturedResponse) writeTo(w http.ResponseWriter) {
	h := w.Header()
	for k, vs := range c.header {
		if _, exists := h[k]; exists {
			continue
		}
		h[k] = vs
	}
	w.WriteHeader(c.status)
	_, _ = w.Write(c.body)
}

// flightCall is one in-flight coalesced execution.
type flightCall struct {
	done chan struct{} // closed when resp/err are final
	resp *capturedResponse
	err  error
	// poisoned (guarded by flightGroup.mu) is set when a write to the
	// flight's path completes while the read is in flight: the leader's
	// captured bytes may predate the write, so they must not enter the
	// cache. Waiters still receive them — a read racing a write may
	// legitimately see either side — but the cache may not keep them.
	poisoned bool
}

// flightGroup coalesces concurrent identical reads: the first caller
// for a key becomes the leader and executes; everyone else arriving
// before the leader finishes piggybacks on the same response. When a
// thundering herd hits one hot tile, the store sees one read, not a
// thousand.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flightCall)}
}

// join returns the call for key and whether this caller is the leader.
// The leader must run the work and then call finish.
func (g *flightGroup) join(key string) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c, false
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	return c, true
}

// finish publishes the leader's result and retires the key so the next
// miss starts a fresh flight. put, when non-nil, inserts the response
// into the read-through cache; it runs under g.mu and is skipped if a
// write poisoned the call, so the check-then-insert is atomic against
// poisonPath — a leader that read pre-write bytes can never re-cache
// them after the write's invalidation has run.
func (g *flightGroup) finish(key string, c *flightCall, resp *capturedResponse, err error, put func()) {
	c.resp, c.err = resp, err
	g.mu.Lock()
	delete(g.m, key)
	if put != nil && !c.poisoned {
		put()
	}
	g.mu.Unlock()
	close(c.done)
}

// poisonPath marks every in-flight call for path (with or without a
// query string) poisoned. Writers call it after the store mutation
// completes and before invalidating the cache.
func (g *flightGroup) poisonPath(path string) {
	prefix := path + "?"
	g.mu.Lock()
	for key, c := range g.m {
		if key == path || strings.HasPrefix(key, prefix) {
			c.poisoned = true
		}
	}
	g.mu.Unlock()
}
