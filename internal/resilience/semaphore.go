package resilience

import (
	"container/list"
	"context"
	"sync"
)

// Semaphore is a weighted counting semaphore with FIFO waiters — the
// admission controller's core. Weights let one expensive request (a
// tile PUT that decodes and validates the payload) count for several
// cheap ones (a cached GET). FIFO ordering means a heavy request
// cannot be starved by a stream of light ones slipping past it.
type Semaphore struct {
	size int64

	mu      sync.Mutex
	cur     int64
	waiters list.List // of *semWaiter
}

type semWaiter struct {
	n     int64
	ready chan struct{} // closed when the waiter holds its weight
}

// NewSemaphore creates a semaphore admitting at most size units of
// weight concurrently (size <= 0 defaults to 1).
func NewSemaphore(size int64) *Semaphore {
	if size <= 0 {
		size = 1
	}
	return &Semaphore{size: size}
}

// TryAcquire takes n units without waiting, reporting success. It
// fails when the semaphore lacks capacity *or* earlier waiters are
// queued (overtaking them would break FIFO fairness).
func (s *Semaphore) TryAcquire(n int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur+n <= s.size && s.waiters.Len() == 0 {
		s.cur += n
		return true
	}
	return false
}

// Acquire takes n units, waiting in FIFO order until capacity frees or
// ctx is done. A request heavier than the whole semaphore can never be
// admitted; Acquire fails fast on it rather than deadlocking.
func (s *Semaphore) Acquire(ctx context.Context, n int64) error {
	if n > s.size {
		return context.DeadlineExceeded
	}
	s.mu.Lock()
	if s.cur+n <= s.size && s.waiters.Len() == 0 {
		s.cur += n
		s.mu.Unlock()
		return nil
	}
	w := &semWaiter{n: n, ready: make(chan struct{})}
	elem := s.waiters.PushBack(w)
	s.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case <-w.ready:
			// Lost the race: the weight was granted between ctx firing
			// and taking the lock. Keep it — the caller gets admission.
			s.mu.Unlock()
			return nil
		default:
		}
		s.waiters.Remove(elem)
		// Removing a waiter at the queue head may unblock those behind it.
		s.grantLocked()
		s.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns n units and wakes any waiters that now fit.
func (s *Semaphore) Release(n int64) {
	s.mu.Lock()
	s.cur -= n
	if s.cur < 0 {
		panic("resilience: semaphore released more than held")
	}
	s.grantLocked()
	s.mu.Unlock()
}

// grantLocked admits queued waiters from the front while they fit;
// callers hold s.mu.
func (s *Semaphore) grantLocked() {
	for {
		front := s.waiters.Front()
		if front == nil {
			return
		}
		w := front.Value.(*semWaiter)
		if s.cur+w.n > s.size {
			return
		}
		s.cur += w.n
		s.waiters.Remove(front)
		close(w.ready)
	}
}

// InUse reports the weight currently admitted (diagnostic).
func (s *Semaphore) InUse() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur
}
