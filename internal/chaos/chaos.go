// Package chaos injects deterministic, seedable faults into the map
// distribution stack: latency, server errors, connection failures,
// payload corruption (bit flips), truncation, and partial reads. It
// wraps either side of the wire — a storage.TileStore (server-side
// faults) or an http.RoundTripper (network faults) — so the same fault
// model exercises every hop of tiler→server→client→planner. The survey's
// data-management thread (§IV) makes the point bluntly: an HD map is
// only as good as its delivery under real network conditions, so the
// failure path is the hot path and must be testable on demand.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hdmaps/internal/obs"
	"hdmaps/internal/storage"
)

// Config sets per-fault-type probabilities (each in [0,1], rolled
// independently per operation) and fault parameters.
type Config struct {
	// Seed makes the fault sequence reproducible.
	Seed int64
	// LatencyProb injects Latency of extra delay before the operation.
	LatencyProb float64
	// Latency is the injected delay (default 50ms).
	Latency time.Duration
	// ErrorProb fails the operation: a transport roll returns either a
	// connection error or a synthesized 503; a store roll returns an
	// I/O error.
	ErrorProb float64
	// CorruptProb flips one random bit of the payload.
	CorruptProb float64
	// TruncateProb drops the tail of the payload.
	TruncateProb float64
	// PartialProb makes the response body fail mid-read (connection
	// reset after some bytes).
	PartialProb float64
	// Sleep replaces the wall-clock wait used for injected latency. It
	// must wait d or return early with an error when done closes. Nil
	// uses a real timer; tests inject an instant (or stepped fake) clock
	// so latency-heavy chaos plans run fast and deterministic.
	Sleep func(d time.Duration, done <-chan struct{}) error
	// Metrics mirrors the injected-fault counters into an obs registry
	// (obs.Default() when nil), so a soak can reconcile what the
	// injector says it did against what the system under test observed
	// — from the same /metricz scrape.
	Metrics *obs.Registry
}

// Stats counts injected faults by type, plus operations passed through
// untouched. Counters are atomic so chaos wrappers can be hit
// concurrently under the race detector.
type Stats struct {
	Latencies, Errors, Corruptions, Truncations, Partials, Passthroughs uint64
}

// Injector is a deterministic fault source shared by any number of
// Store/Transport wrappers. The zero value is unusable; construct with
// New.
type Injector struct {
	cfg  Config
	down atomic.Bool

	mu  sync.Mutex
	rng *rand.Rand

	latencies, errors, corruptions, truncations, partials, passthroughs atomic.Uint64

	om injectorMetrics
}

// injectorMetrics are the registry-side mirrors of the Stats counters.
type injectorMetrics struct {
	latencies, errors, corruptions, truncations, partials, passthroughs *obs.Counter
}

// New creates an injector with the given fault plan.
func New(cfg Config) *Injector {
	if cfg.Latency <= 0 {
		cfg.Latency = 50 * time.Millisecond
	}
	if cfg.Sleep == nil {
		cfg.Sleep = realSleep
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	return &Injector{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		om: injectorMetrics{
			latencies:    reg.Counter("chaos.inject.latencies"),
			errors:       reg.Counter("chaos.inject.errors"),
			corruptions:  reg.Counter("chaos.inject.corruptions"),
			truncations:  reg.Counter("chaos.inject.truncations"),
			partials:     reg.Counter("chaos.inject.partials"),
			passthroughs: reg.Counter("chaos.inject.passthroughs"),
		},
	}
}

// The count* helpers bump the atomic Stats cell and its registry
// mirror together, so Injector.Stats() and /metricz can never drift.
func (in *Injector) countLatency()     { in.latencies.Add(1); in.om.latencies.Inc() }
func (in *Injector) countError()       { in.errors.Add(1); in.om.errors.Inc() }
func (in *Injector) countCorruption()  { in.corruptions.Add(1); in.om.corruptions.Inc() }
func (in *Injector) countTruncation()  { in.truncations.Add(1); in.om.truncations.Inc() }
func (in *Injector) countPartial()     { in.partials.Add(1); in.om.partials.Inc() }
func (in *Injector) countPassthrough() { in.passthroughs.Add(1); in.om.passthroughs.Inc() }

// sleep waits the injected latency through the configured clock; done
// may be nil for uncancellable waits (store-side faults).
func (in *Injector) sleep(d time.Duration, done <-chan struct{}) error {
	return in.cfg.Sleep(d, done)
}

// SetDown toggles total outage: every operation fails immediately with
// a connection error regardless of probabilities.
func (in *Injector) SetDown(down bool) { in.down.Store(down) }

// Down reports whether total outage is active.
func (in *Injector) Down() bool { return in.down.Load() }

// Stats snapshots the fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Latencies:    in.latencies.Load(),
		Errors:       in.errors.Load(),
		Corruptions:  in.corruptions.Load(),
		Truncations:  in.truncations.Load(),
		Partials:     in.partials.Load(),
		Passthroughs: in.passthroughs.Load(),
	}
}

// roll holds one operation's fault decisions, drawn under the lock so
// the sequence is deterministic for a given seed and operation order.
type roll struct {
	latency                            bool
	fail                               bool
	failConn                           bool // connection error vs 503/ErrIO
	corrupt, truncate, partial         bool
	corruptBit                         int
	truncateFrac, partialFrac, bitFrac float64
}

func (in *Injector) roll() roll {
	in.mu.Lock()
	defer in.mu.Unlock()
	r := roll{
		latency:      in.rng.Float64() < in.cfg.LatencyProb,
		fail:         in.rng.Float64() < in.cfg.ErrorProb,
		failConn:     in.rng.Float64() < 0.5,
		corrupt:      in.rng.Float64() < in.cfg.CorruptProb,
		truncate:     in.rng.Float64() < in.cfg.TruncateProb,
		partial:      in.rng.Float64() < in.cfg.PartialProb,
		truncateFrac: in.rng.Float64(),
		partialFrac:  in.rng.Float64(),
		bitFrac:      in.rng.Float64(),
	}
	return r
}

// flipBit corrupts one bit of a copy of data (data returned unchanged
// when empty).
func flipBit(data []byte, frac float64) []byte {
	if len(data) == 0 {
		return data
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	bit := int(frac * float64(len(cp)*8))
	if bit >= len(cp)*8 {
		bit = len(cp)*8 - 1
	}
	cp[bit/8] ^= 1 << (bit % 8)
	return cp
}

// cut truncates a copy of data to a strict prefix.
func cut(data []byte, frac float64) []byte {
	if len(data) == 0 {
		return data
	}
	n := int(frac * float64(len(data)))
	if n >= len(data) {
		n = len(data) - 1
	}
	cp := make([]byte, n)
	copy(cp, data[:n])
	return cp
}

// ErrInjected marks a chaos-injected connection/store failure.
type ErrInjected struct{ Op string }

func (e *ErrInjected) Error() string { return fmt.Sprintf("chaos: injected failure: %s", e.Op) }

// realSleep is the default Config.Sleep: a wall-clock wait that ends
// early if done closes first (a real slow link does not outlive its
// caller).
func realSleep(d time.Duration, done <-chan struct{}) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return fmt.Errorf("chaos: context done during injected latency")
	case <-t.C:
		return nil
	}
}

// ---- storage.TileStore wrapper ----

// Store wraps a TileStore so reads come back late, failed, corrupted,
// or truncated according to the injector's plan. Writes only see
// latency and errors — a store that silently mangles writes is a
// different failure class than a flaky wire.
func (in *Injector) Store(s storage.TileStore) storage.TileStore {
	return &chaosStore{in: in, next: s}
}

type chaosStore struct {
	in   *Injector
	next storage.TileStore
}

func (c *chaosStore) pre(op string) error {
	if c.in.Down() {
		c.in.countError()
		return &ErrInjected{Op: op}
	}
	r := c.in.roll()
	if r.latency {
		c.in.countLatency()
		_ = c.in.sleep(c.in.cfg.Latency, nil)
	}
	if r.fail {
		c.in.countError()
		return &ErrInjected{Op: op}
	}
	return nil
}

func (c *chaosStore) Put(key storage.TileKey, data []byte) error {
	if err := c.pre("put"); err != nil {
		return err
	}
	c.in.countPassthrough()
	return c.next.Put(key, data)
}

func (c *chaosStore) Get(key storage.TileKey) ([]byte, error) {
	if c.in.Down() {
		c.in.countError()
		return nil, &ErrInjected{Op: "get"}
	}
	r := c.in.roll()
	if r.latency {
		c.in.countLatency()
		_ = c.in.sleep(c.in.cfg.Latency, nil)
	}
	if r.fail {
		c.in.countError()
		return nil, &ErrInjected{Op: "get"}
	}
	data, err := c.next.Get(key)
	if err != nil {
		return nil, err
	}
	switch {
	case r.corrupt:
		c.in.countCorruption()
		return flipBit(data, r.bitFrac), nil
	case r.truncate:
		c.in.countTruncation()
		return cut(data, r.truncateFrac), nil
	}
	c.in.countPassthrough()
	return data, nil
}

func (c *chaosStore) Keys(layer string) ([]storage.TileKey, error) {
	if err := c.pre("keys"); err != nil {
		return nil, err
	}
	c.in.countPassthrough()
	return c.next.Keys(layer)
}

func (c *chaosStore) ListLayers() ([]string, error) {
	if err := c.pre("list-layers"); err != nil {
		return nil, err
	}
	c.in.countPassthrough()
	return c.next.ListLayers()
}

func (c *chaosStore) Delete(key storage.TileKey) error {
	if err := c.pre("delete"); err != nil {
		return err
	}
	c.in.countPassthrough()
	return c.next.Delete(key)
}

// ---- http.RoundTripper wrapper ----

// Transport wraps a RoundTripper (http.DefaultTransport when nil) so
// requests through it experience the injector's network faults. Give
// the result to a storage.Client via &http.Client{Transport: ...}.
func (in *Injector) Transport(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &chaosTransport{in: in, next: next}
}

type chaosTransport struct {
	in   *Injector
	next http.RoundTripper
}

func (c *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if c.in.Down() {
		c.in.countError()
		return nil, &ErrInjected{Op: "connect " + req.URL.Path}
	}
	r := c.in.roll()
	if r.latency {
		c.in.countLatency()
		if err := c.in.sleep(c.in.cfg.Latency, req.Context().Done()); err != nil {
			return nil, req.Context().Err()
		}
	}
	if r.fail {
		c.in.countError()
		if r.failConn {
			return nil, &ErrInjected{Op: "connect " + req.URL.Path}
		}
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header:     http.Header{"Content-Type": []string{"text/plain"}},
			Body:       io.NopCloser(bytes.NewReader([]byte("chaos: injected 503"))),
			Request:    req,
		}, nil
	}
	resp, err := c.next.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	// Payload faults only make sense on successful bodies.
	if resp.StatusCode != http.StatusOK || resp.Body == nil {
		c.in.countPassthrough()
		return resp, nil
	}
	switch {
	case r.corrupt:
		c.in.countCorruption()
		return rewriteBody(resp, func(b []byte) []byte { return flipBit(b, r.bitFrac) })
	case r.truncate:
		c.in.countTruncation()
		return rewriteBody(resp, func(b []byte) []byte { return cut(b, r.truncateFrac) })
	case r.partial:
		c.in.countPartial()
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		n := int(r.partialFrac * float64(len(body)))
		resp.Body = io.NopCloser(&partialReader{data: body, n: n})
		return resp, nil
	}
	c.in.countPassthrough()
	return resp, nil
}

// rewriteBody replaces a response body with fn applied to its full
// contents, fixing Content-Length so the damage reaches the client
// instead of tripping transport-layer length checks.
func rewriteBody(resp *http.Response, fn func([]byte) []byte) (*http.Response, error) {
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	out := fn(body)
	resp.Body = io.NopCloser(bytes.NewReader(out))
	resp.ContentLength = int64(len(out))
	resp.Header.Set("Content-Length", fmt.Sprint(len(out)))
	return resp, nil
}

// partialReader yields n bytes then fails like a reset connection.
type partialReader struct {
	data []byte
	n    int
	off  int
}

func (p *partialReader) Read(b []byte) (int, error) {
	if p.off >= p.n {
		return 0, fmt.Errorf("chaos: connection reset after %d bytes: %w", p.n, io.ErrUnexpectedEOF)
	}
	n := copy(b, p.data[p.off:p.n])
	p.off += n
	return n, nil
}
