package chaos

import (
	"math"
	"math/rand"
	"sync"

	"hdmaps/internal/obs"
	"hdmaps/internal/update/incremental"
	"hdmaps/internal/update/ingest"
)

// ReportChaosConfig sets per-fault probabilities for the maintenance
// ingestion path: the adversary is no longer the wire but the fleet
// itself, so the faults are hostile report payloads rather than damaged
// bytes. Probabilities are rolled independently per report.
type ReportChaosConfig struct {
	// Seed makes the fault sequence reproducible.
	Seed int64
	// MalformProb poisons one observation with NaN/Inf coordinates or
	// variance.
	MalformProb float64
	// ByzantineProb shifts the whole report by Offset metres — a
	// mis-georeferenced or fabricated batch.
	ByzantineProb float64
	// Offset is the Byzantine displacement (default 500 m).
	Offset float64
	// DuplicateProb re-emits the report verbatim (a replayed upload).
	DuplicateProb float64
	// StaleProb rewinds the report stamp by StaleBy (default 10_000).
	StaleProb float64
	// StaleBy is the stale rewind in logical time (default 10000).
	StaleBy uint64
	// Metrics mirrors the injected-fault counters into an obs registry
	// (obs.Default() when nil) under chaos.reports.*.
	Metrics *obs.Registry
}

// ReportStats counts injected report faults.
type ReportStats struct {
	Malformed, Byzantine, Duplicates, Stale, Passthroughs uint64
}

// ReportInjector mangles ingestion reports deterministically. Construct
// with NewReportInjector.
type ReportInjector struct {
	cfg ReportChaosConfig

	mu    sync.Mutex
	rng   *rand.Rand
	stats ReportStats

	om reportMetrics
}

// reportMetrics are the registry-side mirrors of ReportStats.
type reportMetrics struct {
	malformed, byzantine, duplicates, stale, passthroughs *obs.Counter
}

// NewReportInjector creates a seeded report corrupter.
func NewReportInjector(cfg ReportChaosConfig) *ReportInjector {
	if cfg.Offset <= 0 {
		cfg.Offset = 500
	}
	if cfg.StaleBy == 0 {
		cfg.StaleBy = 10_000
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	return &ReportInjector{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		om: reportMetrics{
			malformed:    reg.Counter("chaos.reports.malformed"),
			byzantine:    reg.Counter("chaos.reports.byzantine"),
			duplicates:   reg.Counter("chaos.reports.duplicates"),
			stale:        reg.Counter("chaos.reports.stale"),
			passthroughs: reg.Counter("chaos.reports.passthroughs"),
		},
	}
}

// Stats snapshots the fault counters.
func (ri *ReportInjector) Stats() ReportStats {
	ri.mu.Lock()
	defer ri.mu.Unlock()
	return ri.stats
}

// Mangle applies the fault plan to one report, returning the report(s)
// to deliver — duplication yields two — and the injected fault kinds.
// The input is never aliased: mangled reports carry copied observation
// slices.
func (ri *ReportInjector) Mangle(r ingest.Report) ([]ingest.Report, []string) {
	ri.mu.Lock()
	defer ri.mu.Unlock()

	malform := ri.rng.Float64() < ri.cfg.MalformProb
	byzantine := ri.rng.Float64() < ri.cfg.ByzantineProb
	duplicate := ri.rng.Float64() < ri.cfg.DuplicateProb
	stale := ri.rng.Float64() < ri.cfg.StaleProb
	poisonIdx := 0
	poisonKind := 0
	if len(r.Observations) > 0 {
		poisonIdx = ri.rng.Intn(len(r.Observations))
		poisonKind = ri.rng.Intn(3)
	}

	var kinds []string
	out := r
	switch {
	case malform:
		ri.stats.Malformed++
		ri.om.malformed.Inc()
		kinds = append(kinds, "malformed")
		out = cloneReport(r)
		if len(out.Observations) > 0 {
			o := &out.Observations[poisonIdx]
			switch poisonKind {
			case 0:
				o.P.X = math.NaN()
			case 1:
				o.P.Y = math.Inf(1)
			default:
				o.PosVar = math.Inf(-1)
			}
		}
	case byzantine:
		ri.stats.Byzantine++
		ri.om.byzantine.Inc()
		kinds = append(kinds, "byzantine")
		out = cloneReport(r)
		for i := range out.Observations {
			out.Observations[i].P.X += ri.cfg.Offset
			out.Observations[i].P.Y += ri.cfg.Offset
		}
	case stale:
		ri.stats.Stale++
		ri.om.stale.Inc()
		kinds = append(kinds, "stale")
		out = cloneReport(r)
		if out.Stamp > ri.cfg.StaleBy {
			out.Stamp -= ri.cfg.StaleBy
		} else {
			out.Stamp = 0
		}
	}

	reports := []ingest.Report{out}
	if duplicate {
		ri.stats.Duplicates++
		ri.om.duplicates.Inc()
		kinds = append(kinds, "duplicate")
		reports = append(reports, cloneReport(out))
	}
	if len(kinds) == 0 {
		ri.stats.Passthroughs++
		ri.om.passthroughs.Inc()
	}
	return reports, kinds
}

// cloneReport deep-copies a report so mangling never aliases the
// caller's observations.
func cloneReport(r ingest.Report) ingest.Report {
	cp := r
	cp.Observations = append([]incremental.Observation(nil), r.Observations...)
	return cp
}
