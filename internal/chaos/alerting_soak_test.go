package chaos_test

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"hdmaps/internal/chaos"
	"hdmaps/internal/cluster"
	"hdmaps/internal/obs"
	"hdmaps/internal/obs/eventlog"
	"hdmaps/internal/obs/incident"
	"hdmaps/internal/obs/notify"
	"hdmaps/internal/resilience"
	"hdmaps/internal/storage"
)

// dumpEventz / dumpIncidentz land the cluster event journal and the
// incident table next to the clusterz/fleetz artifacts when an
// alerting soak fails: the timeline an operator would read is exactly
// the evidence a red CI run needs.
func dumpEventz(t *testing.T, rt *cluster.Router) {
	path := os.Getenv("EVENTZ_DUMP")
	if path == "" || !t.Failed() {
		return
	}
	if j := rt.EventLog(); j != nil {
		writeDump(t, path, j.Since(0, "", 0))
	}
}

func dumpIncidentz(t *testing.T, rt *cluster.Router) {
	path := os.Getenv("INCIDENTZ_DUMP")
	if path == "" || !t.Failed() {
		return
	}
	if m := rt.Incidents(); m != nil {
		writeDump(t, path, m.Incidents())
	}
}

// TestAlertingSoak proves the active observability plane end to end
// under injected faults:
//
//  1. Fault arcs: every node is killed under read load until the
//     availability SLO degrades, then revived until it recovers. Each
//     arc must mint exactly one availability incident, and the
//     resolved incident must bundle the kill and revival journal
//     events of every victim plus an exemplar trace resolvable on
//     /tracez.
//  2. Push delivery: a webhook sink reached through a chaos transport
//     (30% injected connection errors / synthesized 503s) must keep
//     its ledger balanced — fired == delivered + dropped with zero
//     pending after Close — and the receiver must have seen exactly
//     the delivered count.
//  3. Flap damping: an objective oscillating inside the min-hold
//     window through the real engine + notifier produces exactly one
//     notification; every further transition is suppressed as dedup
//     or flap.
//
// Volume is bounded: default 2 fault arcs, overridable via
// SOAK_ALERT_ARCS.
func TestAlertingSoak(t *testing.T) {
	arcs := 2
	if v := os.Getenv("SOAK_ALERT_ARCS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad SOAK_ALERT_ARCS %q", v)
		}
		arcs = n
	}
	const (
		nNodes = 3
		nTiles = 8
	)

	// ---- fleet ----
	nodes := make([]*clusterNode, nNodes)
	cfgNodes := make([]cluster.Node, nNodes)
	transport := &perHostTransport{byHost: map[string]http.RoundTripper{}}
	for i := range nodes {
		st := storage.NewMemStore()
		inj := chaos.New(chaos.Config{Seed: int64(9100 + i), Metrics: obs.NewRegistry()})
		handler := resilience.NewHandler(storage.NewTileServer(st), resilience.Config{
			MaxConcurrent:  64,
			MaxWait:        time.Second,
			RequestTimeout: 5 * time.Second,
			RetryAfter:     50 * time.Millisecond,
			CacheSize:      -1,
			Metrics:        obs.NewRegistry(),
		})
		srv := httptest.NewServer(handler)
		defer srv.Close()
		n := &clusterNode{name: fmt.Sprintf("node%d", i), st: st, inj: inj, srv: srv}
		nodes[i] = n
		cfgNodes[i] = cluster.Node{Name: n.name, Base: srv.URL}
		transport.byHost[srv.Listener.Addr().String()] = inj.Transport(nil)
	}

	// ---- webhook sink behind its own chaos link ----
	var webhookHits atomic.Uint64
	hook := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		webhookHits.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer hook.Close()
	hookInj := chaos.New(chaos.Config{Seed: 9555, ErrorProb: 0.3, Metrics: obs.NewRegistry()})
	hookClient := &http.Client{
		Transport: hookInj.Transport(nil),
		Timeout:   2 * time.Second,
	}

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.TracerConfig{
		SlowThreshold: 50 * time.Millisecond,
		Capacity:      16,
		MaxSpans:      32,
		Metrics:       reg,
	})
	rt, err := cluster.NewRouter(cluster.Config{
		Nodes:         cfgNodes,
		Replicas:      nNodes,
		Transport:     transport,
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  250 * time.Millisecond,
		ShardTimeout:  2 * time.Second,
		Registry:      reg,
		Tracer:        tracer,
		// Soak-speed plane: tight sampling and burn windows so every
		// arc completes in wall-clock seconds.
		SampleInterval: 50 * time.Millisecond,
		SLOFastWindow:  250 * time.Millisecond,
		SLOSlowWindow:  time.Second,
		EventLogPath:   filepath.Join(t.TempDir(), "events.jsonl"),
		IncidentWindow: time.Hour,
		NotifySinks:    []notify.Sink{notify.NewWebhookSink("webhook", hook.URL, hookClient)},
		// Effectively no hold: every real transition notifies, so the
		// chaos link sees steady delivery traffic. Flap damping gets
		// its own phase below.
		NotifyMinHold: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dumpEventz(t, rt)
	defer dumpIncidentz(t, rt)
	defer dumpTracez(t, tracer)
	rt.Start()
	defer rt.Close() // idempotent; the ledger check below closes first
	front := httptest.NewServer(rt)
	defer front.Close()

	httpc := &http.Client{Timeout: 10 * time.Second}
	paths := make([]string, nTiles)
	for i := range paths {
		paths[i] = fmt.Sprintf("/v1/tiles/base/%d/0", i)
		if err := putTile(httpc, front.URL+paths[i], clusterTile(1, i)); err != nil {
			t.Fatalf("seed %s: %v", paths[i], err)
		}
	}
	get := func(i int) {
		resp, err := httpc.Get(front.URL + paths[i%len(paths)])
		if err == nil {
			resp.Body.Close()
		}
	}

	availabilityIncidents := func(state string) []incident.Incident {
		var out []incident.Incident
		for _, inc := range rt.Incidents().Incidents() {
			if inc.Objective == "slo.read.availability" && inc.State == state {
				out = append(out, inc)
			}
		}
		return out
	}

	// ---- fault arcs ----
	for arc := 0; arc < arcs; arc++ {
		// Healthy warm-up so the burn windows start clean.
		for i := 0; i < 50; i++ {
			get(i)
		}

		for _, n := range nodes {
			n.inj.SetDown(true)
		}
		deadline := time.Now().Add(30 * time.Second)
		for i := 0; ; i++ {
			get(i)
			if len(availabilityIncidents(incident.StateOpen)) > 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("arc %d: no availability incident opened under total shed", arc)
			}
			time.Sleep(5 * time.Millisecond)
		}
		if n := len(availabilityIncidents(incident.StateOpen)); n != 1 {
			t.Fatalf("arc %d: %d open availability incidents, want exactly 1", arc, n)
		}

		for _, n := range nodes {
			n.inj.SetDown(false)
		}
		deadline = time.Now().Add(30 * time.Second)
		for i := 0; ; i++ {
			get(i)
			if len(availabilityIncidents(incident.StateOpen)) == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("arc %d: availability incident never resolved after revival", arc)
			}
			time.Sleep(5 * time.Millisecond)
		}

		resolved := availabilityIncidents(incident.StateResolved)
		if len(resolved) != arc+1 {
			t.Fatalf("after arc %d: %d resolved availability incidents, want %d",
				arc, len(resolved), arc+1)
		}
		// Incidents() returns resolved newest-first: [0] is this arc's.
		inc := resolved[0]
		dead, revived := map[string]bool{}, map[string]bool{}
		for _, e := range inc.Events {
			switch e.Type {
			case eventlog.TypeNodeDead:
				dead[e.Node] = true
			case eventlog.TypeNodeRevived:
				revived[e.Node] = true
			}
		}
		for _, n := range nodes {
			if !dead[n.name] || !revived[n.name] {
				t.Errorf("arc %d: incident %s missing kill/revival events for %s (dead=%v revived=%v)",
					arc, inc.ID, n.name, dead, revived)
			}
		}
		if len(inc.Arc) < 2 {
			t.Errorf("arc %d: incident %s alert arc has %d steps, want the degrade and the recovery",
				arc, inc.ID, len(inc.Arc))
		}
		if inc.ExemplarTraceID == "" {
			t.Errorf("arc %d: incident %s carries no exemplar trace", arc, inc.ID)
		} else {
			resp, err := httpc.Get(front.URL + "/tracez?trace=" + inc.ExemplarTraceID)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("arc %d: exemplar trace %s not resolvable on /tracez: %d",
					arc, inc.ExemplarTraceID, resp.StatusCode)
			}
		}
	}

	// ---- webhook ledger at quiesce ----
	notifier := rt.Notifier()
	if notifier == nil {
		t.Fatal("router built without a notifier despite NotifySinks")
	}
	// Close the router: the observability loop stops first, then the
	// notifier drains its queues — pending must reach zero, not be
	// abandoned.
	rt.Close()
	led := notifier.Ledger()
	if led.Fired == 0 {
		t.Error("webhook ledger: no notifications fired across the soak")
	}
	if led.Pending != 0 {
		t.Errorf("webhook ledger: %d pending after Close, want 0", led.Pending)
	}
	if led.Fired != led.Delivered+led.Dropped+led.Pending {
		t.Errorf("webhook ledger does not balance: fired=%d delivered=%d dropped=%d pending=%d",
			led.Fired, led.Delivered, led.Dropped, led.Pending)
	}
	if got := webhookHits.Load(); got != led.Delivered {
		t.Errorf("webhook receiver saw %d deliveries, ledger says %d", got, led.Delivered)
	}
	hookStats := hookInj.Stats()
	t.Logf("alerting soak: %d arcs, webhook fired=%d delivered=%d dropped=%d (chaos errors injected=%d)",
		arcs, led.Fired, led.Delivered, led.Dropped, hookStats.Errors)

	// ---- flap damping through the real engine + notifier ----
	flapDampingPhase(t)
}

// putTile PUTs one tile with its checksum; the seeding helper for the
// alerting soak (the cluster soak carries its own inline variant with
// request accounting this soak does not need).
func putTile(httpc *http.Client, url string, data []byte) error {
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set(storage.ChecksumHeader, storage.Checksum(data))
	resp, err := httpc.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("put %s: status %d", url, resp.StatusCode)
	}
	return nil
}

// flapDampingPhase oscillates the availability objective of an
// unstarted router between healthy and shedding through the real SLO
// engine and notifier, with a min-hold far wider than the oscillation
// period: exactly one notification may reach the sink; every further
// transition must be suppressed as dedup or flap.
func flapDampingPhase(t *testing.T) {
	t.Helper()
	var hits atomic.Uint64
	hook := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer hook.Close()

	fake := httptest.NewServer(http.NotFoundHandler())
	defer fake.Close()
	reg := obs.NewRegistry()
	rt, err := cluster.NewRouter(cluster.Config{
		Nodes:          []cluster.Node{{Name: "n1", Base: fake.URL}},
		Registry:       reg,
		SampleInterval: time.Second, // driven manually via ObserveNow
		SLOFastWindow:  5 * time.Second,
		SLOSlowWindow:  20 * time.Second,
		NotifySinks:    []notify.Sink{notify.NewWebhookSink("webhook", hook.URL, nil)},
		NotifyMinHold:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	routed := reg.Counter("cluster.router.routed")
	shed := reg.Counter("cluster.router.shed")
	base := time.Unix(300000, 0)
	tick := 0
	step := func(shedding bool) {
		rt.ObserveNow(base.Add(time.Duration(tick) * time.Second))
		tick++
		routed.Add(100)
		if shedding {
			shed.Add(100)
		}
	}

	for i := 0; i < 25; i++ {
		step(false) // clean baseline
	}
	// Oscillate: repeated degrade/recover cycles, all inside the hold.
	for cycle := 0; cycle < 3; cycle++ {
		for i := 0; i < 10; i++ {
			step(true)
		}
		for i := 0; i < 45; i++ {
			step(false)
		}
	}
	rt.Close() // drain the notifier before reading receiver + ledger

	led := rt.Notifier().Ledger()
	if got := hits.Load(); got != 1 {
		t.Errorf("flap damping: sink received %d notifications under oscillation, want exactly 1 (ledger %+v)", got, led)
	}
	if led.Delivered != 1 {
		t.Errorf("flap damping ledger delivered=%d, want 1: %+v", led.Delivered, led)
	}
	if led.Seen < 6 {
		t.Errorf("flap damping: engine produced %d transitions, oscillation plan expected at least 6", led.Seen)
	}
	if led.SuppressedDedup+led.SuppressedFlap != led.Seen-1 {
		t.Errorf("flap damping: suppressed dedup=%d flap=%d of %d seen, want all but the first",
			led.SuppressedDedup, led.SuppressedFlap, led.Seen)
	}
	t.Logf("flap damping: %d transitions -> 1 notification (dedup=%d flap=%d)",
		led.Seen, led.SuppressedDedup, led.SuppressedFlap)
}
