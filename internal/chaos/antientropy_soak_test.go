package chaos_test

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"testing"
	"time"

	"hdmaps/internal/chaos"
	"hdmaps/internal/cluster"
	"hdmaps/internal/obs"
	"hdmaps/internal/resilience"
	"hdmaps/internal/storage"
)

// TestAntiEntropySoak runs the delete-resurrection chaos scenario the
// tombstone design exists for, end to end:
//
//	delete while an owner is dead → the router crashes → the owner
//	revives holding the erased tile → a FRESH router converges every
//	owner back to absent, using sweeps alone — zero client reads.
//
// Two acts:
//
//  1. Cold divergence: replicas fork behind the router's back and no
//     client ever reads the keys. Bounded sweep rounds must converge
//     every owner byte-identical, with the read counter untouched.
//  2. Delete-resurrection: the victim keys' shared primary owner is
//     killed, each key deleted through router #1 (marker to the live
//     owners, durable tombstone hint parked; the delete's clock probe
//     still reaches its read quorum on the two survivors), router #1
//     crashes. For
//     half the keys the parked hints are wiped too — simulating total
//     hint loss — so sweeps are provably the only repair channel.
//     Router #2 starts cold, the owner revives stale, and bounded
//     sweep rounds converge every owner to absent; GC then reclaims
//     every marker and the tombstone ledger balances to zero.
//
// Throughout: routed == served + shed + errored on both routers, hint
// books balance, written == reclaimed + pending on the tombstone
// ledger. Volume is bounded: default 8 deleted keys, overridable via
// SOAK_AE_DELETES.
func TestAntiEntropySoak(t *testing.T) {
	nDeletes := 8
	if v := os.Getenv("SOAK_AE_DELETES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad SOAK_AE_DELETES %q", v)
		}
		nDeletes = n
	}
	const (
		nNodes   = 5
		replicas = 3
		nCold    = 12 // cold-divergence keys (act 1)
	)

	// ---- fleet ----
	nodes := make([]*clusterNode, nNodes)
	cfgNodes := make([]cluster.Node, nNodes)
	transport := &perHostTransport{byHost: map[string]http.RoundTripper{}}
	for i := range nodes {
		st := storage.NewMemStore()
		inj := chaos.New(chaos.Config{Seed: int64(7001 + i)})
		handler := resilience.NewHandler(storage.NewTileServer(st), resilience.Config{
			MaxConcurrent:  64,
			MaxWait:        time.Second,
			RequestTimeout: 5 * time.Second,
			RetryAfter:     50 * time.Millisecond,
			CacheSize:      -1,
			Metrics:        obs.NewRegistry(),
		})
		srv := httptest.NewServer(handler)
		defer srv.Close()
		n := &clusterNode{name: fmt.Sprintf("node%d", i), st: st, inj: inj, srv: srv}
		nodes[i] = n
		cfgNodes[i] = cluster.Node{Name: n.name, Base: srv.URL}
		transport.byHost[srv.Listener.Addr().String()] = inj.Transport(nil)
	}
	byName := map[string]*clusterNode{}
	for _, n := range nodes {
		byName[n.name] = n
	}
	baseCfg := cluster.Config{
		Nodes:         cfgNodes,
		Replicas:      replicas,
		Transport:     transport,
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  250 * time.Millisecond,
		ShardTimeout:  2 * time.Second,
		SweepInterval: -1, // sweeps fired by hand: rounds must be countable
		TombstoneTTL:  time.Millisecond,
		// Observability plane at soak speed so /fleetz and /alertz land
		// as failure artifacts and the no-critical-alert assertion at
		// the end judges a realistic cadence.
		SampleInterval: 50 * time.Millisecond,
		SLOFastWindow:  250 * time.Millisecond,
		SLOSlowWindow:  time.Second,
	}

	newRouter := func() *cluster.Router {
		cfg := baseCfg
		cfg.Registry = obs.NewRegistry()
		cfg.Tracer = obs.NewTracer(obs.TracerConfig{
			SlowThreshold: 50 * time.Millisecond,
			Capacity:      16,
			MaxSpans:      32,
			Metrics:       cfg.Registry,
		})
		tr := cfg.Tracer
		t.Cleanup(func() { dumpTracez(t, tr) })
		rt, err := cluster.NewRouter(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	checkAccounting := func(rt *cluster.Router, who string) {
		s := rt.Stats()
		if s.Routed != s.Served+s.Shed+s.Errored {
			t.Errorf("%s accounting: routed %d != served %d + shed %d + errored %d",
				who, s.Routed, s.Served, s.Shed, s.Errored)
		}
	}

	rt1 := newRouter()
	defer dumpClusterz(t, rt1)
	defer dumpFleetz(t, rt1)
	defer dumpAlertz(t, rt1)
	rt1.Start()
	front1 := httptest.NewServer(rt1)
	defer front1.Close()
	httpc := &http.Client{Timeout: 10 * time.Second}
	put := func(base, path string, data []byte) int {
		req, err := http.NewRequest(http.MethodPut, base+path, bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(storage.ChecksumHeader, storage.Checksum(data))
		resp, err := httpc.Do(req)
		if err != nil {
			t.Fatalf("put %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// ---- seed ----
	type soakKey struct {
		key  storage.TileKey
		path string
		data []byte
	}
	seedKey := func(i int) *soakKey {
		k := storage.TileKey{Layer: "base", TX: int32(i), TY: 0}
		sk := &soakKey{
			key:  k,
			path: fmt.Sprintf("/v1/tiles/base/%d/0", i),
			data: clusterTile(1, i),
		}
		if code := put(front1.URL, sk.path, sk.data); code != http.StatusNoContent {
			t.Fatalf("seed put %s: %d", sk.path, code)
		}
		return sk
	}
	cold := make([]*soakKey, nCold)
	for i := range cold {
		cold[i] = seedKey(i)
	}
	// Every victim shares one primary owner. The delete path requires a
	// read quorum of definitive clock probes before minting a marker,
	// so the soak keeps exactly one owner dead per victim key — a
	// second dead owner would (correctly) shed the delete instead.
	victims := make([]*soakKey, 0, nDeletes)
	deadOwner := ""
	for i := nCold; len(victims) < nDeletes; i++ {
		if i > nCold+1000 {
			t.Fatalf("could not find %d victim keys owned by %s", nDeletes, deadOwner)
		}
		sk := seedKey(i)
		primary := rt1.Ring().Owners(sk.key, replicas)[0]
		if deadOwner == "" {
			deadOwner = primary
		}
		if primary == deadOwner {
			victims = append(victims, sk)
		}
	}

	// ---- act 1: cold divergence, sweeps alone ----
	// Fork one replica of every cold key behind the router's back with a
	// fresher version — written through the node's own HTTP surface so
	// its write-time checksum is honest.
	for i, sk := range cold {
		owners := rt1.Ring().Owners(sk.key, replicas)
		n := byName[owners[i%len(owners)]]
		fresh := clusterTile(2, 1000+i)
		req, err := http.NewRequest(http.MethodPut, n.srv.URL+sk.path, bytes.NewReader(fresh))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := httpc.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("divergent put: %d", resp.StatusCode)
		}
		sk.data = fresh
	}
	readsBefore := rt1.Stats().Reads
	const maxRounds = 3
	coldConverged := func() bool {
		for _, sk := range cold {
			for _, o := range rt1.Ring().Owners(sk.key, replicas) {
				got, err := byName[o].st.Get(sk.key)
				if err != nil || !bytes.Equal(got, sk.data) {
					return false
				}
			}
		}
		return true
	}
	rounds := 0
	for ; rounds < maxRounds && !coldConverged(); rounds++ {
		rt1.SweepNow()
	}
	if !coldConverged() {
		t.Fatalf("cold keys did not converge within %d sweep rounds", maxRounds)
	}
	if got := rt1.Stats().Reads; got != readsBefore {
		t.Fatalf("act 1 consumed client reads: %d -> %d", readsBefore, got)
	}
	t.Logf("act 1: %d cold keys converged in %d sweep round(s)", nCold, rounds)

	// ---- act 2: delete-resurrection across a router crash ----
	// Every victim's primary owner goes down, the delete lands on the
	// survivors, and the marker for the dead owner is parked durably.
	downs := map[string]*clusterNode{}
	for _, sk := range victims {
		owner := byName[rt1.Ring().Owners(sk.key, replicas)[0]]
		if _, dead := downs[owner.name]; !dead {
			owner.inj.SetDown(true)
			downs[owner.name] = owner
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			alive := false
			for _, m := range rt1.Status().Members {
				if m.Name == owner.name {
					alive = m.Alive
				}
			}
			if !alive {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("owner %s never marked down", owner.name)
			}
			time.Sleep(5 * time.Millisecond)
		}
		req, err := http.NewRequest(http.MethodDelete, front1.URL+sk.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := httpc.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("delete %s: %d", sk.path, resp.StatusCode)
		}
		// The dead owner still holds the erased tile — the resurrection
		// seed this soak exists to kill.
		if _, err := byName[owner.name].st.Get(sk.key); err != nil {
			t.Fatalf("dead owner %s lost %v prematurely", owner.name, sk.key)
		}
	}
	s1 := rt1.Stats()
	if s1.TombstonesWritten != uint64(len(victims)) || s1.TombstonesPending != len(victims) {
		t.Fatalf("rt1 tombstone ledger: %+v", s1)
	}
	checkAccounting(rt1, "rt1")

	// Router #1 crashes, taking its hint buffer and ledger with it.
	front1.Close()
	rt1.Close()

	// For half the victims, wipe the durable parked hints everywhere —
	// total hint loss. Those keys converge by sweep or not at all.
	for i, sk := range victims {
		if i%2 == 0 {
			continue
		}
		for _, n := range nodes {
			layers, err := n.st.ListLayers()
			if err != nil {
				t.Fatal(err)
			}
			for _, l := range layers {
				if len(l) > 6 && l[:6] == "hint--" {
					_ = n.st.Delete(storage.TileKey{Layer: l, TX: sk.key.TX, TY: sk.key.TY})
				}
			}
		}
	}

	// Owners revive with stale state; router #2 starts cold.
	for _, n := range downs {
		n.inj.SetDown(false)
	}
	rt2 := newRouter()
	defer dumpClusterz(t, rt2)
	defer dumpFleetz(t, rt2)
	defer dumpAlertz(t, rt2)
	rt2.Start()
	defer rt2.Close()

	// Hint recovery + drain settle first (kept hints replay their
	// markers); then sweeps must finish the job for the wiped half.
	settleDeadline := time.Now().Add(10 * time.Second)
	for {
		s := rt2.Stats()
		if s.HintsPending == 0 && s.HintsQueued == s.HintsDrained+s.HintsSuperseded+s.HintsDropped {
			break
		}
		if time.Now().After(settleDeadline) {
			t.Fatalf("rt2 hints never settled: %+v", s)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resurrected := func() []string {
		var bad []string
		for _, sk := range victims {
			for _, o := range rt2.Ring().Owners(sk.key, replicas) {
				if _, err := byName[o].st.Get(sk.key); err == nil {
					bad = append(bad, fmt.Sprintf("%s@%s", sk.path, o))
				}
			}
		}
		return bad
	}
	rounds = 0
	for ; rounds < maxRounds && len(resurrected()) > 0; rounds++ {
		rt2.SweepNow()
	}
	if bad := resurrected(); len(bad) > 0 {
		t.Fatalf("deleted tiles resurrected after %d sweep rounds: %v", maxRounds, bad)
	}
	if got := rt2.Stats().Reads; got != 0 {
		t.Fatalf("act 2 convergence consumed client reads: %d", got)
	}
	t.Logf("act 2: %d deletes converged to absent in %d sweep round(s), zero reads", len(victims), rounds)

	// GC: with TTL expired and every owner alive + holding its marker,
	// bounded extra rounds reclaim every marker.
	gcDeadline := time.Now().Add(10 * time.Second)
	for rt2.Stats().TombstonesPending > 0 {
		if time.Now().After(gcDeadline) {
			t.Fatalf("tombstones never reclaimed: %+v pending=%v", rt2.Stats(), rt2.Status().Tombstones)
		}
		rt2.SweepNow()
		time.Sleep(5 * time.Millisecond)
	}
	s2 := rt2.Stats()
	if s2.TombstonesWritten != s2.TombstonesReclaimed+uint64(s2.TombstonesPending) {
		t.Errorf("tombstone books: written %d != reclaimed %d + pending %d",
			s2.TombstonesWritten, s2.TombstonesReclaimed, s2.TombstonesPending)
	}
	// No marker, hint copy, or live tile survives anywhere for any
	// deleted key — absence converged and was then garbage-collected.
	for _, sk := range victims {
		for _, n := range nodes {
			layers, err := n.st.ListLayers()
			if err != nil {
				t.Fatal(err)
			}
			for _, l := range layers {
				k := storage.TileKey{Layer: l, TX: sk.key.TX, TY: sk.key.TY}
				if l == sk.key.Layer || len(l) > 6 && (l[:6] == "hint--" || l[:6] == "tomb--") {
					if _, err := n.st.Get(k); err == nil && l != sk.key.Layer {
						t.Errorf("node %s still holds %v on internal layer %s", n.name, sk.key, l)
					}
				}
			}
			if _, err := n.st.Get(sk.key); err == nil {
				t.Errorf("node %s resurrected %v after GC", n.name, sk.key)
			}
		}
	}

	// Client contract through the fresh router: deleted keys 404, cold
	// keys serve their winners CRC-verified.
	front2 := httptest.NewServer(rt2)
	defer front2.Close()
	for _, sk := range victims {
		resp, err := httpc.Get(front2.URL + sk.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("deleted %s read %d, want 404", sk.path, resp.StatusCode)
		}
	}
	for _, sk := range cold {
		resp, err := httpc.Get(front2.URL + sk.path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := readBody(resp)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || !bytes.Equal(body, sk.data) {
			t.Errorf("cold key %s: %d, body match=%v", sk.path, resp.StatusCode, bytes.Equal(body, sk.data))
		}
	}
	checkAccounting(rt2, "rt2")

	// The observability plane rode along the whole heal: a critical
	// alert at the end of a clean convergence is a false alarm the SLO
	// engine must not raise — sweeps and hint replay are maintenance,
	// not an outage.
	for _, a := range rt2.SLOAlerts() {
		if a.State == "critical" {
			t.Errorf("objective %s critical after a clean anti-entropy heal (burn fast=%.2f slow=%.2f)",
				a.Name, a.BurnFast, a.BurnSlow)
		}
	}

	s2 = rt2.Stats()
	t.Logf("anti-entropy soak: rounds=%d ranges diffed=%d mismatches=%d keys synced=%d repairs done=%d tombstones written=%d reclaimed=%d hints recovered=%d",
		s2.AERounds, s2.AERangesDiffed, s2.AERangeMismatches, s2.AEKeysSynced,
		s2.AERepairsDone, s2.TombstonesWritten, s2.TombstonesReclaimed, s2.HintsRecovered)
}
