package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hdmaps/internal/storage"
)

func tileBytes(t *testing.T) []byte {
	t.Helper()
	// Any payload works for the wrappers; realistic tiles are exercised
	// by the integration tests.
	return []byte("0123456789abcdefghijklmnopqrstuvwxyz")
}

func TestInjectorDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, ErrorProb: 0.5, CorruptProb: 0.5, TruncateProb: 0.3}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 100; i++ {
		ra, rb := a.roll(), b.roll()
		if ra != rb {
			t.Fatalf("roll %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestFlipBitChangesExactlyOneBit(t *testing.T) {
	data := tileBytes(t)
	out := flipBit(data, 0.37)
	if len(out) != len(data) {
		t.Fatalf("length changed: %d -> %d", len(data), len(out))
	}
	diff := 0
	for i := range data {
		x := data[i] ^ out[i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("flipped %d bits, want 1", diff)
	}
}

func TestCutIsStrictPrefix(t *testing.T) {
	data := tileBytes(t)
	for _, frac := range []float64{0, 0.25, 0.5, 0.999999} {
		out := cut(data, frac)
		if len(out) >= len(data) {
			t.Fatalf("frac %v: not a strict prefix (%d >= %d)", frac, len(out), len(data))
		}
		if string(out) != string(data[:len(out)]) {
			t.Fatalf("frac %v: not a prefix", frac)
		}
	}
}

func TestChaosStoreFaults(t *testing.T) {
	inner := storage.NewMemStore()
	key := storage.TileKey{Layer: "base", TX: 1, TY: 2}
	orig := tileBytes(t)
	if err := inner.Put(key, orig); err != nil {
		t.Fatal(err)
	}

	// Always-corrupt store: every read differs from the original.
	in := New(Config{Seed: 1, CorruptProb: 1})
	st := in.Store(inner)
	got, err := st.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) == string(orig) {
		t.Fatal("corruption injected but payload unchanged")
	}
	if st := in.Stats(); st.Corruptions == 0 {
		t.Fatalf("stats did not record corruption: %+v", st)
	}

	// Always-error store.
	in = New(Config{Seed: 1, ErrorProb: 1})
	st = in.Store(inner)
	if _, err := st.Get(key); err == nil {
		t.Fatal("error fault not injected")
	}
	var inj *ErrInjected
	if _, err := st.Get(key); !errors.As(err, &inj) {
		t.Fatalf("injected error has wrong type: %v", err)
	}

	// Down dominates everything, including writes and listings.
	in = New(Config{Seed: 1})
	st = in.Store(inner)
	in.SetDown(true)
	if _, err := st.Get(key); err == nil {
		t.Fatal("down store served a read")
	}
	if err := st.Put(key, orig); err == nil {
		t.Fatal("down store accepted a write")
	}
	if _, err := st.Keys("base"); err == nil {
		t.Fatal("down store listed keys")
	}
	if _, err := st.ListLayers(); err == nil {
		t.Fatal("down store listed layers")
	}
	in.SetDown(false)
	if got, err := st.Get(key); err != nil || string(got) != string(orig) {
		t.Fatalf("store did not recover: %v", err)
	}
}

func TestChaosTransportFaults(t *testing.T) {
	payload := tileBytes(t)
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(payload)
	}))
	defer backend.Close()

	get := func(rt http.RoundTripper) ([]byte, error) {
		c := &http.Client{Transport: rt}
		resp, err := c.Get(backend.URL)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, errors.New(resp.Status)
		}
		return io.ReadAll(resp.Body)
	}

	// Corruption: same length, different bytes.
	in := New(Config{Seed: 5, CorruptProb: 1})
	got, err := get(in.Transport(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) || string(got) == string(payload) {
		t.Fatalf("corrupt transport: len %d vs %d, equal=%v", len(got), len(payload), string(got) == string(payload))
	}

	// Truncation: strict prefix.
	in = New(Config{Seed: 5, TruncateProb: 1})
	got, err = get(in.Transport(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= len(payload) || string(got) != string(payload[:len(got)]) {
		t.Fatalf("truncated transport returned %d bytes of %d", len(got), len(payload))
	}

	// Partial read: the body errors mid-stream.
	in = New(Config{Seed: 5, PartialProb: 1})
	if _, err = get(in.Transport(nil)); err == nil {
		t.Fatal("partial-read fault produced a clean body")
	}

	// Errors: either a connection error or a 503 — never a clean 200.
	in = New(Config{Seed: 5, ErrorProb: 1})
	for i := 0; i < 10; i++ {
		if _, err := get(in.Transport(nil)); err == nil {
			t.Fatal("error fault produced a clean response")
		}
	}

	// Down: immediate connection failure; recovery after SetDown(false).
	in = New(Config{Seed: 5})
	rt := in.Transport(nil)
	in.SetDown(true)
	if _, err := get(rt); err == nil {
		t.Fatal("down transport connected")
	}
	in.SetDown(false)
	if got, err := get(rt); err != nil || string(got) != string(payload) {
		t.Fatalf("transport did not recover: %v", err)
	}
}

func TestInjectableSleepAvoidsWallClock(t *testing.T) {
	// A fake clock records every injected latency instead of waiting, so
	// a plan with seconds of injected delay completes instantly.
	var slept []time.Duration
	in := New(Config{
		Seed: 7, LatencyProb: 1, Latency: 5 * time.Second,
		Sleep: func(d time.Duration, done <-chan struct{}) error {
			slept = append(slept, d)
			return nil
		},
	})
	inner := storage.NewMemStore()
	key := storage.TileKey{Layer: "base", TX: 0, TY: 0}
	if err := inner.Put(key, tileBytes(t)); err != nil {
		t.Fatal(err)
	}
	st := in.Store(inner)
	start := time.Now()
	for i := 0; i < 20; i++ {
		if _, err := st.Get(key); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("fake clock still waited %v of wall time", elapsed)
	}
	if len(slept) != 20 {
		t.Fatalf("fake clock saw %d sleeps, want 20", len(slept))
	}
	for _, d := range slept {
		if d != 5*time.Second {
			t.Fatalf("fake clock saw latency %v, want 5s", d)
		}
	}
	if st := in.Stats(); st.Latencies != 20 {
		t.Fatalf("latency counter = %d, want 20", st.Latencies)
	}
}

func TestChaosTransportLatencyRespectsContext(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	}))
	defer backend.Close()
	in := New(Config{Seed: 5, LatencyProb: 1, Latency: 10 * time.Second})
	c := &http.Client{Transport: in.Transport(nil), Timeout: 50 * time.Millisecond}
	start := time.Now()
	_, err := c.Get(backend.URL)
	if err == nil {
		t.Fatal("latency-injected request succeeded within timeout")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("injected latency ignored the deadline: took %v", elapsed)
	}
}
