package chaos_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hdmaps/internal/chaos"
	"hdmaps/internal/core"
	"hdmaps/internal/geo"
	"hdmaps/internal/obs"
	"hdmaps/internal/resilience"
	"hdmaps/internal/storage"
)

// countingStore counts reads that actually reach the backing store —
// the denominator of the coalescing-efficiency assertion.
type countingStore struct {
	storage.TileStore
	gets atomic.Uint64
}

func (c *countingStore) Get(key storage.TileKey) ([]byte, error) {
	c.gets.Add(1)
	return c.TileStore.Get(key)
}

// publishTiles puts n tiny tiles on layer "base" and returns their GET
// paths, hottest-first.
func publishTiles(t *testing.T, store storage.TileStore, n int) []string {
	t.Helper()
	paths := make([]string, 0, n)
	for i := 0; i < n; i++ {
		m := core.NewMap(fmt.Sprintf("tile-%d", i))
		m.AddPoint(core.PointElement{Class: core.ClassSign, Pos: geo.V3(float64(i), 1, 0)})
		key := storage.TileKey{Layer: "base", TX: int32(i), TY: 0}
		if err := store.Put(key, storage.EncodeBinary(m)); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, fmt.Sprintf("/v1/tiles/base/%d/0", i))
	}
	return paths
}

// metricz fetches and decodes the handler's /metricz snapshot.
func metricz(t *testing.T, base string) obs.RegistrySnapshot {
	t.Helper()
	resp, err := http.Get(base + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.RegistrySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// tracez fetches and decodes the handler's /tracez snapshot.
func tracez(t *testing.T, base string) obs.TracezSnapshot {
	t.Helper()
	resp, err := http.Get(base + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.TracezSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// dumpTracez writes the tracer's final flight-recorder contents to the
// file named by TRACEZ_DUMP when the test failed — the hook CI uses to
// upload a post-mortem artifact.
func dumpTracez(t *testing.T, tracer *obs.Tracer) {
	path := os.Getenv("TRACEZ_DUMP")
	if path == "" || !t.Failed() {
		return
	}
	data, err := json.MarshalIndent(tracer.TracezSnap(), "", "  ")
	if err != nil {
		t.Logf("tracez dump failed: %v", err)
		return
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Logf("tracez dump failed: %v", err)
		return
	}
	t.Logf("tracez dump written to %s", path)
}

// statz fetches and decodes the handler's /statz snapshot.
func statz(t *testing.T, base string) resilience.StatsSnapshot {
	t.Helper()
	resp, err := http.Get(base + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap resilience.StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestOverloadSoak stampedes an admission-controlled tile server with a
// zipfian closed-loop fleet over a chaos-injected store (latency +
// occasional I/O errors) and asserts the overload contract:
//
//  1. no request lost silently — client-side and server-side accounting
//     both close exactly (submitted == accepted + shed + errored);
//  2. every shed response carries Retry-After;
//  3. the coalesce+cache pipeline keeps store reads >= 5x below client
//     reads on the hot tile set.
//
// Volume is bounded: default 4000 GETs, overridable via SOAK_GETS.
func TestOverloadSoak(t *testing.T) {
	total := 4000
	if v := os.Getenv("SOAK_GETS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad SOAK_GETS %q", v)
		}
		total = n
	}
	clients := 40
	if total < clients {
		clients = total
	}
	perClient := total / clients

	mem := &countingStore{TileStore: storage.NewMemStore()}
	paths := publishTiles(t, mem, 24)
	// One registry shared by the overload pipeline and the chaos
	// injector, so /metricz carries both views and the soak can check
	// them against each other.
	reg := obs.NewRegistry()
	injector := chaos.New(chaos.Config{
		Seed:        1009,
		LatencyProb: 0.2, Latency: time.Millisecond,
		ErrorProb: 0.01,
		Metrics:   reg,
	})
	// The tracer rides the stampede with deliberately tiny caps so the
	// bounded-memory claim is exercised under real load; shed and
	// errored requests tail-sample, so the flight recorder must end the
	// soak non-empty but never over its caps.
	const traceCap, spanCap = 8, 24
	tracer := obs.NewTracer(obs.TracerConfig{
		SlowThreshold: 10 * time.Millisecond,
		Capacity:      traceCap,
		MaxSpans:      spanCap,
		Metrics:       reg,
	})
	defer dumpTracez(t, tracer)
	handler := resilience.NewHandler(storage.NewTileServer(injector.Store(mem)), resilience.Config{
		MaxConcurrent:  8,
		MaxWait:        2 * time.Millisecond,
		RequestTimeout: 2 * time.Second,
		RetryAfter:     50 * time.Millisecond,
		RatePerClient:  25,
		RateBurst:      5,
		CacheSize:      64,
		Metrics:        reg,
		Tracer:         tracer,
	})
	srv := httptest.NewServer(handler)
	defer srv.Close()

	res, err := chaos.RunLoad(context.Background(), chaos.LoadConfig{
		Seed:              1013,
		Clients:           clients,
		RequestsPerClient: perClient,
		Paths:             paths,
		BurstEvery:        10,
		Base:              srv.URL,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Client-side accounting closes.
	if res.Submitted != res.OK+res.Shed+res.Errored {
		t.Errorf("client accounting: submitted %d != ok %d + shed %d + errored %d",
			res.Submitted, res.OK, res.Shed, res.Errored)
	}
	if want := uint64(clients * perClient); res.Submitted != want {
		t.Errorf("submitted = %d, want %d", res.Submitted, want)
	}
	// Server-side accounting closes and agrees on volume.
	snap := statz(t, srv.URL)
	if snap.Inflight != 0 {
		t.Errorf("inflight = %d after load drained", snap.Inflight)
	}
	if snap.Submitted != snap.Accepted+snap.Shed+snap.Errored {
		t.Errorf("server accounting: submitted %d != accepted %d + shed %d + errored %d",
			snap.Submitted, snap.Accepted, snap.Shed, snap.Errored)
	}
	if snap.Submitted != res.Submitted {
		t.Errorf("server saw %d submitted, clients sent %d", snap.Submitted, res.Submitted)
	}
	// The overload was real, and every refusal told the client when to
	// come back.
	if res.Shed == 0 {
		t.Error("no load was shed — the stampede did not overload the server; tighten the config")
	}
	if res.ShedMissingRetryAfter != 0 {
		t.Errorf("%d shed responses lacked Retry-After", res.ShedMissingRetryAfter)
	}
	// Coalesce+cache efficiency: the store served >= 5x fewer reads than
	// the fleet received.
	gets := mem.gets.Load()
	if gets*5 > res.OK {
		t.Errorf("store reads %d vs client reads %d: pipeline absorbed < 5x", gets, res.OK)
	}
	if snap.CacheHits == 0 {
		t.Error("hot-tile cache never hit")
	}
	// Telemetry invariants: /metricz must tell exactly the same story as
	// /statz — the two views read the same atomic cells.
	ms := metricz(t, srv.URL)
	for name, want := range map[string]uint64{
		"resilience.http.submitted":    snap.Submitted,
		"resilience.http.accepted":     snap.Accepted,
		"resilience.http.shed":         snap.Shed,
		"resilience.http.rate_limited": snap.RateLimited,
		"resilience.http.errored":      snap.Errored,
		"resilience.cache.hits":        snap.CacheHits,
		"resilience.flight.coalesced":  snap.Coalesced,
	} {
		if got := ms.Counters[name]; got != want {
			t.Errorf("/metricz %s = %d, /statz says %d", name, got, want)
		}
	}
	// Every submitted request was observed in exactly one latency
	// histogram series: sum of histogram counts == submitted.
	var latTotal uint64
	for name, h := range ms.Histograms {
		if !strings.HasPrefix(name, "resilience.http.latency_seconds.") {
			continue
		}
		latTotal += h.Count
		if bt := h.BucketTotal(); bt < h.Count {
			t.Errorf("%s: bucket total %d < count %d", name, bt, h.Count)
		}
	}
	if latTotal != snap.Submitted {
		t.Errorf("latency histogram counts sum to %d, submitted = %d", latTotal, snap.Submitted)
	}
	// The chaos injector's own accounting surfaced on the same registry.
	ist := injector.Stats()
	for name, want := range map[string]uint64{
		"chaos.inject.latencies":    ist.Latencies,
		"chaos.inject.errors":       ist.Errors,
		"chaos.inject.corruptions":  ist.Corruptions,
		"chaos.inject.truncations":  ist.Truncations,
		"chaos.inject.partials":     ist.Partials,
		"chaos.inject.passthroughs": ist.Passthroughs,
	} {
		if got := ms.Counters[name]; got != want {
			t.Errorf("/metricz %s = %d, injector.Stats() says %d", name, got, want)
		}
	}
	if ist.Latencies+ist.Errors+ist.Passthroughs == 0 {
		t.Error("chaos injector saw no store traffic — the soak exercised nothing")
	}
	// Tracing invariants under load: every request was traced (sampled +
	// dropped close against submitted), the flight recorder never grew
	// past its construction-time caps, shed/errored traffic guarantees
	// tail sampling kept something, and a /metricz latency exemplar
	// resolves to its span tree on /tracez.
	tz := tracez(t, srv.URL)
	if tz.Sampled+tz.Dropped != snap.Submitted {
		t.Errorf("trace accounting: sampled %d + dropped %d != submitted %d",
			tz.Sampled, tz.Dropped, snap.Submitted)
	}
	if tz.Sampled == 0 {
		t.Error("tail sampling kept nothing from an overloaded soak")
	}
	if len(tz.Traces) > traceCap {
		t.Errorf("flight recorder holds %d traces, cap is %d", len(tz.Traces), traceCap)
	}
	for _, ts := range tz.Traces {
		if len(ts.Spans) > spanCap {
			t.Errorf("trace %s exported %d spans, cap is %d", ts.TraceID, len(ts.Spans), spanCap)
		}
	}
	var exemplarIDs []string
	for name, h := range ms.Histograms {
		if !strings.HasPrefix(name, "resilience.http.latency_seconds.") {
			continue
		}
		for _, b := range h.Buckets {
			if b.Exemplar != nil {
				exemplarIDs = append(exemplarIDs, b.Exemplar.TraceID)
			}
		}
		if h.OverflowExemplar != nil {
			exemplarIDs = append(exemplarIDs, h.OverflowExemplar.TraceID)
		}
	}
	if len(exemplarIDs) == 0 {
		t.Error("no latency bucket recorded an exemplar despite sampled traces")
	}
	resolved := false
	for _, id := range exemplarIDs {
		resp, err := http.Get(srv.URL + "/tracez?trace=" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			resolved = true
			break
		}
	}
	if !resolved && len(exemplarIDs) > 0 {
		t.Errorf("none of %d exemplar trace IDs resolved on /tracez", len(exemplarIDs))
	}
	t.Logf("tracez: sampled=%d dropped=%d recorder=%d exemplars=%d",
		tz.Sampled, tz.Dropped, len(tz.Traces), len(exemplarIDs))
	t.Logf("soak: submitted=%d ok=%d shed=%d (rate-limited=%d) errored=%d store-reads=%d cache-hits=%d coalesced=%d",
		res.Submitted, res.OK, res.Shed, snap.RateLimited, res.Errored, gets, snap.CacheHits, snap.Coalesced)
}

// TestCoalescingAbsorbsHerd isolates singleflight (cache disabled): a
// closed-loop herd hammering one hot tile through a slow store must be
// served by a handful of actual store reads.
func TestCoalescingAbsorbsHerd(t *testing.T) {
	mem := &countingStore{TileStore: storage.NewMemStore()}
	paths := publishTiles(t, mem, 1)
	injector := chaos.New(chaos.Config{
		Seed:        4243,
		LatencyProb: 1, Latency: 2 * time.Millisecond,
	})
	handler := resilience.NewHandler(storage.NewTileServer(injector.Store(mem)), resilience.Config{
		MaxConcurrent:  64,
		MaxWait:        time.Second,
		RequestTimeout: 5 * time.Second,
		CacheSize:      -1, // no cache: singleflight alone carries the herd
	})
	srv := httptest.NewServer(handler)
	defer srv.Close()

	res, err := chaos.RunLoad(context.Background(), chaos.LoadConfig{
		Seed:              47,
		Clients:           20,
		RequestsPerClient: 30,
		Paths:             paths,
		Base:              srv.URL,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != res.Submitted {
		t.Fatalf("herd outcomes: %+v", res)
	}
	gets := mem.gets.Load()
	if gets*5 > res.OK {
		t.Errorf("coalescing absorbed < 5x: %d store reads for %d client reads", gets, res.OK)
	}
	snap := statz(t, srv.URL)
	if snap.Coalesced == 0 {
		t.Error("no request was coalesced")
	}
	t.Logf("herd: %d client reads served by %d store reads (%d coalesced)", res.OK, gets, snap.Coalesced)
}

// TestGracefulDrainUnderLoad starts slow in-flight GETs, begins drain,
// and asserts: new traffic is shed with Retry-After, every in-flight
// request completes with 200 (zero dropped, no connection resets), and
// the drain finishes within its deadline.
func TestGracefulDrainUnderLoad(t *testing.T) {
	mem := &countingStore{TileStore: storage.NewMemStore()}
	paths := publishTiles(t, mem, 8)
	injector := chaos.New(chaos.Config{
		Seed:        5,
		LatencyProb: 1, Latency: 50 * time.Millisecond,
	})
	handler := resilience.NewHandler(storage.NewTileServer(injector.Store(mem)), resilience.Config{
		MaxConcurrent:  16,
		MaxWait:        time.Second,
		RequestTimeout: 5 * time.Second,
		CacheSize:      -1, // every GET must ride a real (slow) store read
	})
	srv := httptest.NewServer(handler)
	defer srv.Close()

	const inflight = 8
	type outcome struct {
		code int
		err  error
	}
	outcomes := make(chan outcome, inflight)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(srv.URL + paths[i])
			if err != nil {
				outcomes <- outcome{err: err}
				return
			}
			defer resp.Body.Close()
			outcomes <- outcome{code: resp.StatusCode}
		}(i)
	}
	// Wait until all are inside the handler, then start draining.
	deadline := time.After(5 * time.Second)
	for handler.Stats().Inflight < inflight {
		select {
		case <-deadline:
			t.Fatalf("only %d requests in flight", handler.Stats().Inflight)
		case <-time.After(time.Millisecond):
		}
	}
	handler.StartDrain()

	resp, err := http.Get(srv.URL + paths[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Errorf("post-drain request: %d, Retry-After=%q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	dctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := handler.Drain(dctx); err != nil {
		t.Fatalf("drain missed its deadline: %v", err)
	}
	wg.Wait()
	close(outcomes)
	for o := range outcomes {
		if o.err != nil {
			t.Errorf("in-flight request saw a connection error during drain: %v", o.err)
		} else if o.code != http.StatusOK {
			t.Errorf("in-flight request dropped during drain: %d", o.code)
		}
	}
	snap := statz(t, srv.URL)
	if snap.Submitted != snap.Accepted+snap.Shed+snap.Errored {
		t.Errorf("drain accounting: submitted %d != accepted %d + shed %d + errored %d",
			snap.Submitted, snap.Accepted, snap.Shed, snap.Errored)
	}
	if !snap.Draining {
		t.Error("statz does not report draining")
	}
}
