package chaos

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hdmaps/internal/obs"
	"hdmaps/internal/resilience"
)

// LoadConfig drives a seeded closed-loop fleet against a tile server.
// Closed loop means each simulated vehicle waits for its response
// before issuing the next request — the realistic overload shape,
// where server slowness throttles the offered load instead of queueing
// it to infinity. Popularity is zipfian (a city centre's tiles are hot,
// the suburbs cold) with optional thundering-herd bursts where the
// whole fleet synchronizes on the hottest tile at once, the worst case
// for a coalescing cache.
type LoadConfig struct {
	// Seed makes the request sequence reproducible.
	Seed int64
	// Clients is the number of concurrent closed-loop clients
	// (default 8).
	Clients int
	// RequestsPerClient bounds each client's loop (default 50).
	RequestsPerClient int
	// Paths are the candidate GET paths ranked hottest-first; the
	// zipfian draw indexes into it. Required, non-empty.
	Paths []string
	// ZipfS, ZipfV shape the popularity distribution (defaults 1.2, 1;
	// ZipfS must be > 1).
	ZipfS, ZipfV float64
	// BurstEvery >= 1 makes every BurstEvery-th request a thundering
	// herd: all clients rendezvous at a barrier, then fire at Paths[0]
	// simultaneously. 0 disables bursts.
	BurstEvery int
	// Base is the server URL, e.g. the httptest server's URL.
	Base string
	// HTTP is the client to use (http.DefaultClient when nil). No
	// retries are layered on: the generator measures raw outcomes, one
	// submitted request per HTTP round trip.
	HTTP *http.Client
	// ClientIDPrefix names clients ("<prefix>-<i>") via the resilience
	// ClientIDHeader so per-client rate limiting sees distinct vehicles.
	// Empty means "vehicle".
	ClientIDPrefix string
}

// LoadResult aggregates client-observed outcomes. The accounting is
// total: Submitted == OK + Shed + Errored, so comparing Submitted with
// the server's /statz proves no request was lost silently on either
// side of the wire.
type LoadResult struct {
	// Submitted counts HTTP requests issued.
	Submitted uint64
	// OK counts 200 responses.
	OK uint64
	// Shed counts 429/503 responses — load the server refused by
	// policy.
	Shed uint64
	// ShedMissingRetryAfter counts shed responses lacking a
	// Retry-After header; the overload contract demands this stay 0.
	ShedMissingRetryAfter uint64
	// Errored counts transport failures and any other status.
	Errored uint64
	// HotOK counts 200s on Paths[0], the zipf-hottest tile — the
	// denominator for the coalescing-efficiency assertion.
	HotOK uint64
	// Latency is the client-observed per-request latency distribution
	// (every submitted request observed once, success or not). Its
	// Snapshot().Summary() is what `hdmapctl loadtest` prints.
	Latency *obs.Histogram
}

// RunLoad executes the load plan and blocks until every client
// finishes or ctx is cancelled (requests already issued complete;
// cancellation surfaces as transport errors counted in Errored).
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadResult, error) {
	if len(cfg.Paths) == 0 {
		return nil, fmt.Errorf("chaos: load plan has no paths")
	}
	clients := cfg.Clients
	if clients <= 0 {
		clients = 8
	}
	perClient := cfg.RequestsPerClient
	if perClient <= 0 {
		perClient = 50
	}
	s, v := cfg.ZipfS, cfg.ZipfV
	if s <= 1 {
		s = 1.2
	}
	if v < 1 {
		v = 1
	}
	httpc := cfg.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	prefix := cfg.ClientIDPrefix
	if prefix == "" {
		prefix = "vehicle"
	}

	var (
		res     = LoadResult{Latency: obs.NewHistogram(nil)}
		barrier = newBarrier(clients)
		wg      sync.WaitGroup
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Per-client rng: deterministic, and zipf draws do not
			// contend on a shared lock.
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
			zipf := rand.NewZipf(rng, s, v, uint64(len(cfg.Paths)-1))
			id := fmt.Sprintf("%s-%d", prefix, i)
			// No early return on cancellation: a cancelled context makes
			// every remaining request fail instantly (counted in Errored),
			// so the loop still reaches each barrier and no sibling is
			// stranded waiting for a client that left.
			for n := 0; n < perClient; n++ {
				path := cfg.Paths[zipf.Uint64()]
				if cfg.BurstEvery > 0 && n%cfg.BurstEvery == cfg.BurstEvery-1 {
					// Thundering herd: the whole fleet aligns, then
					// stampedes the hottest tile in the same instant.
					barrier.await()
					path = cfg.Paths[0]
				}
				hot := path == cfg.Paths[0]
				atomic.AddUint64(&res.Submitted, 1)
				start := time.Now()
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.Base+path, nil)
				if err != nil {
					res.Latency.ObserveSince(start)
					atomic.AddUint64(&res.Errored, 1)
					continue
				}
				req.Header.Set(resilience.ClientIDHeader, id)
				resp, err := httpc.Do(req)
				if err != nil {
					res.Latency.ObserveSince(start)
					atomic.AddUint64(&res.Errored, 1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				res.Latency.ObserveSince(start)
				switch {
				case resp.StatusCode == http.StatusOK:
					atomic.AddUint64(&res.OK, 1)
					if hot {
						atomic.AddUint64(&res.HotOK, 1)
					}
				case resp.StatusCode == http.StatusTooManyRequests ||
					resp.StatusCode == http.StatusServiceUnavailable:
					atomic.AddUint64(&res.Shed, 1)
					if resp.Header.Get("Retry-After") == "" {
						atomic.AddUint64(&res.ShedMissingRetryAfter, 1)
					}
				default:
					atomic.AddUint64(&res.Errored, 1)
				}
			}
		}(i)
	}
	wg.Wait()
	return &res, nil
}

// barrier is a reusable rendezvous for n goroutines. Because every
// client runs the same request count and bursts on the same iteration
// indices, all n always reach the same barrier generation — no client
// can deadlock waiting for one that already exited.
type barrier struct {
	mu      sync.Mutex
	n       int
	waiting int
	gen     chan struct{}
}

func newBarrier(n int) *barrier {
	return &barrier{n: n, gen: make(chan struct{})}
}

func (b *barrier) await() {
	b.mu.Lock()
	b.waiting++
	gen := b.gen
	if b.waiting == b.n {
		// Last arrival releases the herd and resets for the next cycle.
		b.waiting = 0
		b.gen = make(chan struct{})
		b.mu.Unlock()
		close(gen)
		return
	}
	b.mu.Unlock()
	<-gen
}
