package chaos_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hdmaps"
	"hdmaps/internal/chaos"
	"hdmaps/internal/core"
	"hdmaps/internal/storage"
	"hdmaps/internal/worldgen"
)

// publishCity generates a city, tiles it, and stands up a tile server.
func publishCity(t *testing.T, seed int64) (*httptest.Server, *core.Map, int) {
	t.Helper()
	g, err := worldgen.GenerateGrid(worldgen.GridParams{
		Rows: 2, Cols: 3, Block: 150, Lanes: 2, TrafficLights: true,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	store := storage.NewMemStore()
	n, err := storage.Tiler{TileSize: 200}.SaveMap(store, g.Map, "base")
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(storage.NewTileServer(store))
	t.Cleanup(srv.Close)
	return srv, g.Map, n
}

// TestChaosEndToEndRecovery drives tiler→server→client→route-graph with
// 30% injected corruption and 30% injected errors on every hop of the
// wire. Retries plus checksums must recover a byte-exact region — the
// acceptance bar from the issue: never a panic, never a silently wrong
// map.
func TestChaosEndToEndRecovery(t *testing.T) {
	ctx := context.Background()
	srv, _, nTiles := publishCity(t, 901)

	// Reference fetch over a clean wire.
	clean := &storage.Client{Base: srv.URL}
	want, wantHealth, err := clean.FetchRegion(ctx, "base", -100, -100, 100, 100, "onboard")
	if err != nil {
		t.Fatal(err)
	}
	if wantHealth.Fresh != nTiles || wantHealth.Degraded {
		t.Fatalf("clean fetch unhealthy: %+v", wantHealth)
	}

	// Same fetch through a hostile wire.
	injector := chaos.New(chaos.Config{
		Seed:        17,
		ErrorProb:   0.3,
		CorruptProb: 0.3,
		LatencyProb: 0.1, Latency: time.Millisecond,
		TruncateProb: 0.1,
		PartialProb:  0.1,
	})
	chaotic := &storage.Client{
		Base:  srv.URL,
		HTTP:  &http.Client{Transport: injector.Transport(nil)},
		Retry: storage.RetryPolicy{MaxAttempts: 16, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Budget: 4096},
	}
	got, health, err := chaotic.FetchRegion(ctx, "base", -100, -100, 100, 100, "onboard")
	if err != nil {
		t.Fatalf("fetch under chaos failed: %v (stats %+v)", err, injector.Stats())
	}
	if health.Degraded || health.Fresh != nTiles {
		t.Fatalf("chaos fetch degraded despite retries: %+v (stats %+v)", health, injector.Stats())
	}
	if !bytes.Equal(storage.EncodeBinary(got), storage.EncodeBinary(want)) {
		t.Fatal("region recovered under chaos is not byte-exact")
	}
	st := injector.Stats()
	if st.Errors == 0 || st.Corruptions == 0 {
		t.Fatalf("chaos plan injected nothing: %+v", st)
	}

	// The recovered map must still support planning.
	g, err := got.BuildRouteGraph()
	if err != nil {
		t.Fatal(err)
	}
	nodes := g.Nodes()
	if len(nodes) < 2 {
		t.Fatal("recovered map has no routable lanelets")
	}
	if _, err := hdmaps.FindRoute(g, nodes[0], nodes[len(nodes)-1]); err != nil {
		t.Fatalf("routing on recovered map: %v", err)
	}
}

// TestChaosDegradedModeOutage: a vehicle that has fetched once keeps a
// usable map when the server goes completely dark — served stale from
// cache, flagged Degraded, and still routable. A cacheless client gets
// a hard error, not a panic.
func TestChaosDegradedModeOutage(t *testing.T) {
	ctx := context.Background()
	srv, _, nTiles := publishCity(t, 902)

	injector := chaos.New(chaos.Config{Seed: 3})
	cache := storage.NewTileCache(128)
	client := &storage.Client{
		Base:  srv.URL,
		HTTP:  &http.Client{Transport: injector.Transport(nil)},
		Retry: storage.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		Cache: cache,
	}
	fresh, health, err := client.FetchRegion(ctx, "base", -100, -100, 100, 100, "onboard")
	if err != nil {
		t.Fatal(err)
	}
	if health.Degraded {
		t.Fatalf("healthy fetch flagged degraded: %+v", health)
	}
	if cache.Len() != nTiles {
		t.Fatalf("cache holds %d tiles, want %d", cache.Len(), nTiles)
	}

	// Total outage.
	injector.SetDown(true)
	stale, health2, err := client.FetchRegion(ctx, "base", -100, -100, 100, 100, "onboard")
	if err != nil {
		t.Fatalf("outage fetch errored instead of degrading: %v", err)
	}
	if !health2.Degraded || health2.Stale != nTiles || health2.Fresh != 0 {
		t.Fatalf("outage health = %+v, want all-stale degraded", health2)
	}
	if !bytes.Equal(storage.EncodeBinary(stale), storage.EncodeBinary(fresh)) {
		t.Fatal("stale region differs from last-known-good")
	}
	// Routing still works on the stale map.
	g, err := stale.BuildRouteGraph()
	if err != nil {
		t.Fatal(err)
	}
	nodes := g.Nodes()
	if len(nodes) < 2 {
		t.Fatal("stale map has no routable lanelets")
	}
	if _, err := hdmaps.FindRoute(g, nodes[0], nodes[len(nodes)-1]); err != nil {
		t.Fatalf("routing on stale map: %v", err)
	}

	// Without a cache the same outage is an explicit error.
	bare := &storage.Client{
		Base:  srv.URL,
		HTTP:  &http.Client{Transport: injector.Transport(nil)},
		Retry: storage.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
	}
	if _, _, err := bare.FetchRegion(ctx, "base", -100, -100, 100, 100, "onboard"); err == nil {
		t.Fatal("cacheless outage fetch succeeded")
	}

	// Server returns; the next fetch is fully fresh again.
	injector.SetDown(false)
	_, health3, err := client.FetchRegion(ctx, "base", -100, -100, 100, 100, "onboard")
	if err != nil {
		t.Fatal(err)
	}
	if health3.Degraded || health3.Fresh != nTiles {
		t.Fatalf("post-recovery health = %+v", health3)
	}
}

// TestChaosPartialOutageStaleMix: individual tile fetches fail hard
// (every attempt) but the cache fills the holes and reports them stale.
func TestChaosPartialOutageStaleMix(t *testing.T) {
	ctx := context.Background()
	srv, _, nTiles := publishCity(t, 903)

	cache := storage.NewTileCache(128)
	warm := &storage.Client{Base: srv.URL, Cache: cache}
	if _, _, err := warm.FetchRegion(ctx, "base", -100, -100, 100, 100, "onboard"); err != nil {
		t.Fatal(err)
	}

	// Now fetch through a wire so hostile some tiles exhaust retries.
	injector := chaos.New(chaos.Config{Seed: 11, ErrorProb: 0.85})
	client := &storage.Client{
		Base:  srv.URL,
		HTTP:  &http.Client{Transport: injector.Transport(nil)},
		Retry: storage.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Budget: 1000},
		Cache: cache,
	}
	m, health, err := client.FetchRegion(ctx, "base", -100, -100, 100, 100, "onboard")
	if err != nil {
		t.Fatalf("partial outage should degrade, not fail: %v", err)
	}
	if !health.Degraded || health.Stale == 0 {
		t.Fatalf("expected a degraded stale mix, got %+v", health)
	}
	if health.Fresh+health.Stale != nTiles || len(health.Missing) != 0 {
		t.Fatalf("cache should cover every hole: %+v", health)
	}
	if m.NumElements() == 0 {
		t.Fatal("degraded region is empty")
	}
}

// TestChaosRetryBudgetExhaustion: the per-operation budget stops a
// pathological region from retrying forever.
func TestChaosRetryBudgetExhaustion(t *testing.T) {
	ctx := context.Background()
	srv, _, _ := publishCity(t, 904)
	injector := chaos.New(chaos.Config{Seed: 23, ErrorProb: 0.95})
	client := &storage.Client{
		Base:  srv.URL,
		HTTP:  &http.Client{Transport: injector.Transport(nil)},
		Retry: storage.RetryPolicy{MaxAttempts: 50, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond, Budget: 5},
	}
	_, _, err := client.FetchRegion(ctx, "base", -100, -100, 100, 100, "onboard")
	if err == nil {
		t.Fatal("95% error wire with budget 5 succeeded")
	}
	st := injector.Stats()
	total := st.Errors + st.Corruptions + st.Truncations + st.Partials + st.Passthroughs
	// Budget 5 retries + one first attempt per logical request; a
	// handful of requests at most ever hit the wire.
	if total > 40 {
		t.Fatalf("budget did not bound the retry storm: %d wire operations (%+v)", total, st)
	}
}

// TestChaosDeadlineBoundsRetries: the caller's context deadline caps
// total wall-clock even under injected latency — a vehicle asking for
// a map "within 150ms" gets an answer (or a timely error) near that
// deadline, not after the full retry schedule.
func TestChaosDeadlineBoundsRetries(t *testing.T) {
	srv, _, _ := publishCity(t, 905)
	injector := chaos.New(chaos.Config{Seed: 29, LatencyProb: 1, Latency: 200 * time.Millisecond, ErrorProb: 0.5})
	client := &storage.Client{
		Base:    srv.URL,
		HTTP:    &http.Client{Transport: injector.Transport(nil)},
		Retry:   storage.RetryPolicy{MaxAttempts: 20, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
		Timeout: time.Second,
	}
	deadline := 150 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	_, err := client.GetTile(ctx, storage.TileKey{Layer: "base", TX: 0, TY: 0})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("fetch beat a deadline shorter than the injected latency")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// Allow generous scheduling slack, but nowhere near the 20-attempt
	// retry schedule (~4s of latency alone).
	if elapsed > deadline+500*time.Millisecond {
		t.Fatalf("fetch overran its deadline: %v", elapsed)
	}
}

// TestChaosStoreServerSide runs the fault injector behind the server
// (flaky disk rather than flaky wire): 5xx responses and corrupted
// payloads must still never produce a wrong map — the client retries
// until the store yields a clean read.
func TestChaosStoreServerSide(t *testing.T) {
	ctx := context.Background()
	g, err := worldgen.GenerateGrid(worldgen.GridParams{
		Rows: 2, Cols: 2, Block: 150, Lanes: 2,
	}, rand.New(rand.NewSource(906)))
	if err != nil {
		t.Fatal(err)
	}
	store := storage.NewMemStore()
	injector := chaos.New(chaos.Config{Seed: 31, ErrorProb: 0.3, CorruptProb: 0.3, TruncateProb: 0.1})
	srv := httptest.NewServer(storage.NewTileServer(injector.Store(store)))
	defer srv.Close()

	client := &storage.Client{Base: srv.URL, Retry: storage.RetryPolicy{MaxAttempts: 16, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Budget: 4096}}
	// Publish through HTTP PUT (the real pipeline path) so the server
	// records write-time checksums; corruption at rest is then
	// detectable on every later read.
	for key, tm := range (storage.Tiler{TileSize: 200}).Split(g.Map, "base") {
		if err := client.PutTile(ctx, key, storage.EncodeBinary(tm)); err != nil {
			t.Fatal(err)
		}
	}
	want, err := storage.Tiler{}.LoadMap(store, "base", "onboard")
	if err != nil {
		t.Fatal(err)
	}
	got, health, err := client.FetchRegion(ctx, "base", -100, -100, 100, 100, "onboard")
	if err != nil {
		t.Fatalf("fetch against chaotic store failed: %v (stats %+v)", err, injector.Stats())
	}
	if health.Degraded {
		t.Fatalf("fetch degraded despite retries: %+v", health)
	}
	if !bytes.Equal(storage.EncodeBinary(got), storage.EncodeBinary(want)) {
		t.Fatal("map recovered from chaotic store is not byte-exact")
	}
}
