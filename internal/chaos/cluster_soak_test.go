package chaos_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"hdmaps/internal/chaos"
	"hdmaps/internal/cluster"
	"hdmaps/internal/core"
	"hdmaps/internal/geo"
	"hdmaps/internal/obs"
	"hdmaps/internal/obs/slo"
	"hdmaps/internal/resilience"
	"hdmaps/internal/storage"
)

// clusterNode is one member of the soak fleet: a MemStore behind the
// full production stack (TileServer + resilience pipeline, own
// registry), reachable only through its own chaos injector so a
// node-kill severs exactly this node's link without rebinding ports.
type clusterNode struct {
	name string
	st   *storage.MemStore
	inj  *chaos.Injector
	srv  *httptest.Server
}

// perHostTransport routes each outbound request through the
// destination node's chaos transport, so SetDown(true) on one injector
// looks to the router exactly like that machine dropping off the
// network — probes and shard legs alike.
type perHostTransport struct {
	byHost map[string]http.RoundTripper
}

func (p *perHostTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if rt, ok := p.byHost[req.URL.Host]; ok {
		return rt.RoundTrip(req)
	}
	return http.DefaultTransport.RoundTrip(req)
}

// clusterTile encodes a small valid tile whose logical clock is the
// cluster's replica version.
func clusterTile(clock uint64, salt int) []byte {
	m := core.NewMap(fmt.Sprintf("ct-%d", salt))
	m.Clock = clock
	m.AddPoint(core.PointElement{Class: core.ClassSign, Pos: geo.V3(float64(salt), float64(clock), 0)})
	return storage.EncodeBinary(m)
}

// dumpClusterz writes the router's final /clusterz document to the file
// named by CLUSTERZ_DUMP when the test failed — the cluster-soak
// counterpart of the tracez artifact.
func dumpClusterz(t *testing.T, rt *cluster.Router) {
	if path := os.Getenv("CLUSTERZ_DUMP"); path != "" && t.Failed() {
		writeDump(t, path, rt.Status())
	}
}

// dumpFleetz and dumpAlertz are the observability-plane counterparts:
// the federated fleet document and the SLO alert set land next to the
// clusterz artifact when a soak fails, so a red CI run shows what the
// dashboards showed.
func dumpFleetz(t *testing.T, rt *cluster.Router) {
	path := os.Getenv("FLEETZ_DUMP")
	if path == "" || !t.Failed() {
		return
	}
	if doc := rt.FleetStatus(0); doc != nil {
		writeDump(t, path, doc)
	}
}

func dumpAlertz(t *testing.T, rt *cluster.Router) {
	path := os.Getenv("ALERTZ_DUMP")
	if path == "" || !t.Failed() {
		return
	}
	if alerts := rt.SLOAlerts(); alerts != nil {
		writeDump(t, path, alerts)
	}
}

func writeDump(t *testing.T, path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Logf("dump %s failed: %v", path, err)
		return
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Logf("dump %s failed: %v", path, err)
		return
	}
	t.Logf("dump written to %s", path)
}

// TestClusterSoak runs the sharded tile cluster through repeated
// node-kills under zipfian read load with a concurrent writer, and
// asserts the replication contract end to end:
//
//  1. zero read unavailability at quorum: every fleet GET during every
//     kill window returns 200 — nothing shed, nothing errored;
//  2. the router's accounting closes exactly: routed == served + shed +
//     errored, and agrees with the client-side request count;
//  3. hinted handoff drains to empty after every victim returns
//     (queued == drained + superseded, dropped == 0, pending == 0,
//     no durable hint layers left anywhere);
//  4. replicas converge byte-identical on every owner, and a final
//     CRC-verified read through the router returns exactly the last
//     acknowledged write of every key.
//
// Volume is bounded: default 3000 GETs, overridable via
// SOAK_CLUSTER_GETS.
func TestClusterSoak(t *testing.T) {
	totalGets := 3000
	if v := os.Getenv("SOAK_CLUSTER_GETS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad SOAK_CLUSTER_GETS %q", v)
		}
		totalGets = n
	}
	const (
		nNodes   = 5
		replicas = 3
		nTiles   = 32
		rounds   = 3
	)

	// ---- fleet ----
	nodes := make([]*clusterNode, nNodes)
	cfgNodes := make([]cluster.Node, nNodes)
	transport := &perHostTransport{byHost: map[string]http.RoundTripper{}}
	for i := range nodes {
		st := storage.NewMemStore()
		inj := chaos.New(chaos.Config{Seed: int64(2027 + i)})
		handler := resilience.NewHandler(storage.NewTileServer(st), resilience.Config{
			MaxConcurrent:  64,
			MaxWait:        time.Second,
			RequestTimeout: 5 * time.Second,
			RetryAfter:     50 * time.Millisecond,
			CacheSize:      -1, // convergence is asserted against stores, not caches
			Metrics:        obs.NewRegistry(),
		})
		srv := httptest.NewServer(handler)
		defer srv.Close()
		n := &clusterNode{name: fmt.Sprintf("node%d", i), st: st, inj: inj, srv: srv}
		nodes[i] = n
		cfgNodes[i] = cluster.Node{Name: n.name, Base: srv.URL}
		transport.byHost[srv.Listener.Addr().String()] = inj.Transport(nil)
	}

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.TracerConfig{
		SlowThreshold: 50 * time.Millisecond,
		Capacity:      16,
		MaxSpans:      32,
		Metrics:       reg,
	})
	defer dumpTracez(t, tracer)
	rt, err := cluster.NewRouter(cluster.Config{
		Nodes:         cfgNodes,
		Replicas:      replicas,
		Transport:     transport,
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  250 * time.Millisecond,
		ShardTimeout:  2 * time.Second,
		Registry:      reg,
		Tracer:        tracer,
		// The observability plane rides along at soak speed: tight
		// sample cadence and burn windows so the SLO engine sees every
		// kill round, and /fleetz + /alertz land as failure artifacts.
		SampleInterval: 50 * time.Millisecond,
		SLOFastWindow:  250 * time.Millisecond,
		SLOSlowWindow:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dumpClusterz(t, rt)
	defer dumpFleetz(t, rt)
	defer dumpAlertz(t, rt)
	rt.Start()
	defer rt.Close()
	front := httptest.NewServer(rt)
	defer front.Close()

	// Every client-side round trip to the router is counted so the
	// router's Routed counter can be matched exactly at the end.
	var myReqs uint64
	httpc := &http.Client{Timeout: 10 * time.Second}
	routerPut := func(path string, data []byte) int {
		myReqs++
		req, err := http.NewRequest(http.MethodPut, front.URL+path, bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(storage.ChecksumHeader, storage.Checksum(data))
		resp, err := httpc.Do(req)
		if err != nil {
			t.Fatalf("router put %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// ---- seed ----
	type tileState struct {
		key   storage.TileKey
		path  string
		clock uint64
		data  []byte
	}
	tiles := make([]*tileState, nTiles)
	paths := make([]string, nTiles)
	for i := range tiles {
		key := storage.TileKey{Layer: "base", TX: int32(i), TY: 0}
		ts := &tileState{key: key, path: fmt.Sprintf("/v1/tiles/base/%d/0", i), clock: 1, data: clusterTile(1, i)}
		if code := routerPut(ts.path, ts.data); code != http.StatusNoContent {
			t.Fatalf("seed put %s: %d", ts.path, code)
		}
		tiles[i] = ts
		paths[i] = ts.path
	}

	// ---- background writer ----
	// One writer mutates the same keyset throughout the soak with
	// strictly increasing clocks, so every kill window has writes whose
	// dead owner must be covered by hinted handoff. expected[] tracks
	// the last acknowledged version per key under the lock.
	var (
		wmu        sync.Mutex
		writerReqs uint64
		writerBad  int
		writerStop = make(chan struct{})
		writerDone = make(chan struct{})
	)
	go func() {
		defer close(writerDone)
		i := 0
		for {
			select {
			case <-writerStop:
				return
			default:
			}
			wmu.Lock()
			ts := tiles[i%len(tiles)]
			next := ts.clock + 1
			data := clusterTile(next, i%len(tiles))
			wmu.Unlock()
			req, err := http.NewRequest(http.MethodPut, front.URL+ts.path, bytes.NewReader(data))
			if err != nil {
				panic(err)
			}
			req.Header.Set(storage.ChecksumHeader, storage.Checksum(data))
			resp, err := httpc.Do(req)
			wmu.Lock()
			writerReqs++
			if err != nil {
				writerBad++
			} else {
				resp.Body.Close()
				if resp.StatusCode == http.StatusNoContent {
					ts.clock, ts.data = next, data
				} else {
					writerBad++
				}
			}
			wmu.Unlock()
			i++
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// ---- kill/load rounds ----
	waitStatus := func(name string, wantAlive bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			alive := false
			for _, m := range rt.Status().Members {
				if m.Name == name {
					alive = m.Alive
				}
			}
			if alive == wantAlive {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %s never became alive=%v", name, wantAlive)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	perRound := totalGets / (rounds * 2)
	clients := 20
	if perRound < clients {
		clients = perRound
	}
	runChunk := func(seed int64) *chaos.LoadResult {
		res, err := chaos.RunLoad(context.Background(), chaos.LoadConfig{
			Seed:              seed,
			Clients:           clients,
			RequestsPerClient: perRound / clients,
			Paths:             paths,
			Base:              front.URL,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	var fleetSubmitted, fleetOK, fleetShed, fleetErrored uint64
	account := func(res *chaos.LoadResult) {
		fleetSubmitted += res.Submitted
		fleetOK += res.OK
		fleetShed += res.Shed
		fleetErrored += res.Errored
	}

	for round := 0; round < rounds; round++ {
		victim := nodes[(round*2)%nNodes]
		// Healthy traffic, then the kill lands mid-soak: the next chunk
		// starts while the router still believes the victim is alive, so
		// failure detection happens under fire.
		account(runChunk(int64(4000 + round)))
		victim.inj.SetDown(true)
		account(runChunk(int64(5000 + round)))
		waitStatus(victim.name, false)
		// Recovery: the victim returns and its hints must drain to zero.
		victim.inj.SetDown(false)
		waitStatus(victim.name, true)
		drainDeadline := time.Now().Add(10 * time.Second)
		for rt.Stats().HintsPending > 0 {
			if time.Now().After(drainDeadline) {
				t.Fatalf("round %d: hints never drained: %+v", round, rt.Stats())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	close(writerStop)
	<-writerDone

	// Any hints from the writer's final moments drain now; all nodes
	// are alive.
	drainDeadline := time.Now().Add(10 * time.Second)
	for rt.Stats().HintsPending > 0 {
		if time.Now().After(drainDeadline) {
			t.Fatalf("final hints never drained: %+v", rt.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Let in-flight read finishers and queued repairs quiesce before
	// convergence is judged — they all converge toward the final winner.
	time.Sleep(100 * time.Millisecond)

	// ---- assertions ----
	// 1. Zero read unavailability: every fleet GET during every phase —
	// including mid-kill — was answered 200.
	if fleetShed != 0 || fleetErrored != 0 || fleetOK != fleetSubmitted {
		t.Errorf("read availability: submitted=%d ok=%d shed=%d errored=%d",
			fleetSubmitted, fleetOK, fleetShed, fleetErrored)
	}
	wmu.Lock()
	wReqs, wBad := writerReqs, writerBad
	wmu.Unlock()
	if wBad != 0 {
		t.Errorf("writer availability: %d/%d writes not acknowledged", wBad, wReqs)
	}

	// 2. Replica convergence: every owner of every key holds the last
	// acknowledged bytes, byte-identical. Reads through the router give
	// read-repair its trigger while hints finish settling.
	byName := map[string]*clusterNode{}
	for _, n := range nodes {
		byName[n.name] = n
	}
	convergeDeadline := time.Now().Add(15 * time.Second)
	for _, ts := range tiles {
		owners := rt.Ring().Owners(ts.key, replicas)
		for {
			converged := true
			for _, o := range owners {
				got, err := byName[o].st.Get(ts.key)
				if err != nil || !bytes.Equal(got, ts.data) {
					converged = false
					break
				}
			}
			if converged {
				break
			}
			if time.Now().After(convergeDeadline) {
				t.Fatalf("replicas of %v never converged (owners %v, want clock %d)", ts.key, owners, ts.clock)
			}
			myReqs++
			resp, err := httpc.Get(front.URL + ts.path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			time.Sleep(5 * time.Millisecond)
		}
	}

	// 3. Final CRC-verified reads through the router return exactly the
	// last acknowledged write.
	for _, ts := range tiles {
		myReqs++
		resp, err := httpc.Get(front.URL + ts.path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := readBody(resp)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("final read %s: %d", ts.path, resp.StatusCode)
		}
		if got := resp.Header.Get(storage.ChecksumHeader); got != storage.Checksum(body) {
			t.Errorf("final read %s: checksum header %q does not match body", ts.path, got)
		}
		if !bytes.Equal(body, ts.data) {
			t.Errorf("final read %s: body is not the last acknowledged write (clock %d)", ts.path, ts.clock)
		}
	}

	// 4. Hinted handoff books balance and nothing was silently parked:
	// no pending hints, no drops, and no durable hint layers left on any
	// node's disk.
	s := rt.Stats()
	if s.HintsQueued == 0 {
		t.Error("soak queued no hints — the kills missed every write; raise the write rate")
	}
	if s.HintsPending != 0 || s.HintsDropped != 0 {
		t.Errorf("hint state: %+v", s)
	}
	if s.HintsQueued != s.HintsDrained+s.HintsSuperseded+s.HintsDropped {
		t.Errorf("hint books: queued %d != drained %d + superseded %d + dropped %d",
			s.HintsQueued, s.HintsDrained, s.HintsSuperseded, s.HintsDropped)
	}
	for _, n := range nodes {
		layers, err := n.st.ListLayers()
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range layers {
			if len(l) > 6 && l[:6] == "hint--" {
				keys, _ := n.st.Keys(l)
				if len(keys) > 0 {
					t.Errorf("node %s still holds %d durable hints on layer %s", n.name, len(keys), l)
				}
			}
		}
	}

	// 5. The router's accounting closes exactly and agrees with the
	// client side: routed == served + shed + errored, shed == errored
	// == 0, and the count matches every request this test ever sent.
	if s.Routed != s.Served+s.Shed+s.Errored {
		t.Errorf("router accounting: routed %d != served %d + shed %d + errored %d",
			s.Routed, s.Served, s.Shed, s.Errored)
	}
	if s.Shed != 0 || s.Errored != 0 {
		t.Errorf("router refused/errored traffic: %+v", s)
	}
	wantRouted := fleetSubmitted + myReqs + wReqs
	if s.Routed != wantRouted {
		t.Errorf("router routed %d requests, clients sent %d", s.Routed, wantRouted)
	}

	// 6. /metricz tells the same story as Stats() — same atomic cells —
	// and the per-shard families carried the load with bounded labels.
	ms := metricz(t, front.URL)
	for name, want := range map[string]uint64{
		"cluster.router.routed":  s.Routed,
		"cluster.router.served":  s.Served,
		"cluster.router.shed":    s.Shed,
		"cluster.router.errored": s.Errored,
		"cluster.hint.queued":    s.HintsQueued,
		"cluster.hint.drained":   s.HintsDrained,
	} {
		if got := ms.Counters[name]; got != want {
			t.Errorf("/metricz %s = %d, Stats() says %d", name, got, want)
		}
	}
	var shardRouted uint64
	for _, n := range nodes {
		shardRouted += ms.Counters["cluster.shard.routed."+n.name]
	}
	if shardRouted == 0 {
		t.Error("per-shard routed counters never moved")
	}
	if got := ms.Counters["cluster.shard.routed.other"]; got != 0 {
		t.Errorf("out-of-domain shard label saw %d increments", got)
	}

	// 7. The observability plane watched the whole soak: federation holds
	// a committed, non-stale scrape for every revived shard, and the
	// availability objective never left ok — the zero-shed guarantee seen
	// through the SLO engine's eyes.
	fleetDeadline := time.Now().Add(10 * time.Second)
	for {
		doc := rt.FleetStatus(1)
		committed := 0
		for _, n := range doc.Nodes {
			if n.Role == "shard" && n.Scrapes > 0 && !n.Stale {
				committed++
			}
		}
		if committed == nNodes {
			break
		}
		if time.Now().After(fleetDeadline) {
			t.Fatalf("federation never committed all %d shards: %+v", nNodes, doc.Nodes)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, a := range rt.SLOAlerts() {
		if a.Name == "slo.read.availability" && a.State != "ok" {
			t.Errorf("availability objective %s after a zero-shed soak (burn fast=%.2f slow=%.2f)",
				a.State, a.BurnFast, a.BurnSlow)
		}
	}

	t.Logf("cluster soak: reads=%d writes=%d routed=%d hints queued=%d drained=%d superseded=%d repairs done=%d skipped=%d stale=%d",
		fleetSubmitted, wReqs, s.Routed, s.HintsQueued, s.HintsDrained, s.HintsSuperseded,
		s.RepairsDone, s.RepairsSkipped, s.StaleReplicas)

	// 8. Alert lifecycle under total failure, gated behind
	// SOAK_ALERT_LIFECYCLE because it deliberately sheds traffic — it
	// must run after every accounting assertion above has settled.
	if os.Getenv("SOAK_ALERT_LIFECYCLE") != "" {
		alertLifecycle(t, front.URL, httpc, rt, nodes, paths)
	}
}

// alertLifecycle drives slo.read.availability through its full arc
// against the live fleet: every node dies, sustained shed traffic
// trips the multi-window burn rates to critical, the alert's exemplar
// trace resolves on /tracez, and revival plus healthy traffic clears
// it back to ok. Bounded by hard deadlines on both transitions.
func alertLifecycle(t *testing.T, base string, httpc *http.Client, rt *cluster.Router, nodes []*clusterNode, paths []string) {
	t.Helper()
	availability := func() (slo.Alert, bool) {
		for _, a := range rt.SLOAlerts() {
			if a.Name == "slo.read.availability" {
				return a, true
			}
		}
		return slo.Alert{}, false
	}
	get := func(i int) {
		resp, err := httpc.Get(base + paths[i%len(paths)])
		if err == nil {
			resp.Body.Close()
		}
	}

	for _, n := range nodes {
		n.inj.SetDown(true)
	}
	var critical slo.Alert
	deadline := time.Now().Add(20 * time.Second)
	for i := 0; ; i++ {
		get(i)
		if a, ok := availability(); ok && a.State == "critical" {
			critical = a
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("availability alert never went critical under total shed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if critical.ExemplarTraceID == "" {
		t.Error("critical availability alert carries no exemplar trace")
	} else {
		resp, err := httpc.Get(base + "/tracez?trace=" + critical.ExemplarTraceID)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("exemplar trace %s not resolvable on /tracez: %d",
				critical.ExemplarTraceID, resp.StatusCode)
		}
	}

	for _, n := range nodes {
		n.inj.SetDown(false)
	}
	deadline = time.Now().Add(20 * time.Second)
	for i := 0; ; i++ {
		get(i)
		a, ok := availability()
		if ok && a.State == "ok" {
			if a.Transitions < 2 {
				t.Errorf("alert cleared with %d transitions, want at least ok->critical->ok", a.Transitions)
			}
			t.Logf("alert lifecycle: critical burn fast=%.1f slow=%.1f exemplar=%s, cleared after revival",
				critical.BurnFast, critical.BurnSlow, critical.ExemplarTraceID)
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("availability alert never cleared after revival")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// readBody drains and closes a response body.
func readBody(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	buf := &bytes.Buffer{}
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}
