package filters

import "fmt"

// Kalman is a linear Kalman filter over an n-dimensional state.
//
//	x' = F·x + B·u + w,  w ~ N(0, Q)
//	z  = H·x + v,        v ~ N(0, R)
//
// It is used directly by the incremental map-update fusion (Liu et al.)
// and the smartphone mapping pipeline, and underlies the EKF in ekf.go.
type Kalman struct {
	X *Mat // state estimate (n×1)
	P *Mat // state covariance (n×n)
	F *Mat // state transition (n×n)
	B *Mat // control matrix (n×m), may be nil
	Q *Mat // process noise (n×n)
}

// NewKalman constructs a filter with initial state x0 and covariance p0.
func NewKalman(x0, p0, f, q *Mat) *Kalman {
	return &Kalman{X: x0.Clone(), P: p0.Clone(), F: f, Q: q}
}

// Predict advances the state one step with optional control input u
// (pass nil when B is nil).
func (k *Kalman) Predict(u *Mat) {
	k.X = k.F.Mul(k.X)
	if k.B != nil && u != nil {
		k.X = k.X.Add(k.B.Mul(u))
	}
	k.P = k.F.Mul(k.P).Mul(k.F.T()).Add(k.Q).Symmetrize()
}

// Update fuses measurement z with observation model H and measurement
// noise R. It returns an error when the innovation covariance is
// singular, which indicates an ill-posed model rather than bad data.
func (k *Kalman) Update(z, h, r *Mat) error {
	y := z.Sub(h.Mul(k.X))            // innovation
	s := h.Mul(k.P).Mul(h.T()).Add(r) // innovation covariance
	sInv, err := s.Inverse()
	if err != nil {
		return fmt.Errorf("kalman update: %w", err)
	}
	gain := k.P.Mul(h.T()).Mul(sInv)
	k.X = k.X.Add(gain.Mul(y))
	ikh := Eye(k.P.Rows).Sub(gain.Mul(h))
	// Joseph form keeps P positive semi-definite under rounding.
	k.P = ikh.Mul(k.P).Mul(ikh.T()).Add(gain.Mul(r).Mul(gain.T())).Symmetrize()
	return nil
}

// MahalanobisSq returns the squared Mahalanobis distance of measurement z
// under observation model (H, R) — the gating statistic used for
// validation gates in the ADAS localization fusion.
func (k *Kalman) MahalanobisSq(z, h, r *Mat) (float64, error) {
	y := z.Sub(h.Mul(k.X))
	s := h.Mul(k.P).Mul(h.T()).Add(r)
	sInv, err := s.Inverse()
	if err != nil {
		return 0, fmt.Errorf("kalman gate: %w", err)
	}
	d := y.T().Mul(sInv).Mul(y)
	return d.At(0, 0), nil
}

// EKF is an extended Kalman filter with caller-supplied nonlinear models.
// The motion and measurement functions return both the propagated value
// and the Jacobian evaluated at the linearisation point.
type EKF struct {
	X *Mat // state (n×1)
	P *Mat // covariance (n×n)
}

// NewEKF constructs an EKF with initial state and covariance.
func NewEKF(x0, p0 *Mat) *EKF {
	return &EKF{X: x0.Clone(), P: p0.Clone()}
}

// Predict propagates the state through motion model f, which must return
// the new state and its Jacobian F = ∂f/∂x; q is the process noise.
func (e *EKF) Predict(f func(x *Mat) (xNext, jacF *Mat), q *Mat) {
	xNext, jacF := f(e.X)
	e.X = xNext
	e.P = jacF.Mul(e.P).Mul(jacF.T()).Add(q).Symmetrize()
}

// Update fuses measurement z through measurement model h, which must
// return the predicted measurement and its Jacobian H = ∂h/∂x; r is the
// measurement noise. residualFn, when non-nil, post-processes the
// innovation (e.g. to wrap angles).
func (e *EKF) Update(z *Mat, h func(x *Mat) (zPred, jacH *Mat), r *Mat, residualFn func(*Mat)) error {
	zPred, jacH := h(e.X)
	y := z.Sub(zPred)
	if residualFn != nil {
		residualFn(y)
	}
	s := jacH.Mul(e.P).Mul(jacH.T()).Add(r)
	sInv, err := s.Inverse()
	if err != nil {
		return fmt.Errorf("ekf update: %w", err)
	}
	gain := e.P.Mul(jacH.T()).Mul(sInv)
	e.X = e.X.Add(gain.Mul(y))
	ikh := Eye(e.P.Rows).Sub(gain.Mul(jacH))
	e.P = ikh.Mul(e.P).Mul(ikh.T()).Add(gain.Mul(r).Mul(gain.T())).Symmetrize()
	return nil
}
