package filters

import (
	"math"
	"math/rand"
	"testing"

	"hdmaps/internal/geo"
)

// TestKalman1DConvergence tracks a static scalar with noisy measurements:
// the estimate must converge to the truth and the variance must shrink.
func TestKalman1DConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	truth := 5.0
	k := NewKalman(Vec(0), Diag(100), Eye(1), Diag(1e-6))
	h, r := Eye(1), Diag(1)
	for i := 0; i < 200; i++ {
		k.Predict(nil)
		z := Vec(truth + rng.NormFloat64())
		if err := k.Update(z, h, r); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(k.X.At(0, 0)-truth) > 0.3 {
		t.Errorf("estimate = %v, want ≈%v", k.X.At(0, 0), truth)
	}
	if k.P.At(0, 0) > 0.1 {
		t.Errorf("variance = %v, want small", k.P.At(0, 0))
	}
}

// TestKalmanConstantVelocity tracks a 1-D constant-velocity target and
// checks that the velocity state is recovered from position-only
// measurements.
func TestKalmanConstantVelocity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dt := 0.1
	f := MatFrom(2, 2, 1, dt, 0, 1)
	q := MatFrom(2, 2, 1e-4, 0, 0, 1e-4)
	k := NewKalman(Vec(0, 0), Diag(10, 10), f, q)
	h := MatFrom(1, 2, 1, 0)
	r := Diag(0.25)
	trueVel := 3.0
	pos := 0.0
	for i := 0; i < 300; i++ {
		pos += trueVel * dt
		k.Predict(nil)
		if err := k.Update(Vec(pos+rng.NormFloat64()*0.5), h, r); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(k.X.At(1, 0)-trueVel) > 0.3 {
		t.Errorf("velocity estimate = %v, want ≈%v", k.X.At(1, 0), trueVel)
	}
}

func TestKalmanControlInput(t *testing.T) {
	// x' = x + u exactly; no noise.
	k := NewKalman(Vec(0), Diag(1), Eye(1), Diag(0))
	k.B = Eye(1)
	k.Predict(Vec(2.5))
	if got := k.X.At(0, 0); got != 2.5 {
		t.Errorf("state after control = %v", got)
	}
}

func TestMahalanobisGate(t *testing.T) {
	k := NewKalman(Vec(0), Diag(1), Eye(1), Diag(0))
	h, r := Eye(1), Diag(1)
	// Innovation covariance = P+R = 2; z=2 gives d² = 4/2 = 2.
	d2, err := k.MahalanobisSq(Vec(2), h, r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d2-2) > 1e-12 {
		t.Errorf("Mahalanobis² = %v, want 2", d2)
	}
}

func TestKalmanCovarianceStaysPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	k := NewKalman(Vec(0, 0), Diag(1, 1), MatFrom(2, 2, 1, 0.1, 0, 1), Diag(0.01, 0.01))
	h := MatFrom(1, 2, 1, 0)
	r := Diag(0.5)
	for i := 0; i < 1000; i++ {
		k.Predict(nil)
		if err := k.Update(Vec(rng.NormFloat64()), h, r); err != nil {
			t.Fatal(err)
		}
		// Diagonal must stay positive and the matrix symmetric.
		if k.P.At(0, 0) <= 0 || k.P.At(1, 1) <= 0 {
			t.Fatalf("iteration %d: non-positive variance %v", i, k.P.Data)
		}
		if math.Abs(k.P.At(0, 1)-k.P.At(1, 0)) > 1e-12 {
			t.Fatalf("iteration %d: asymmetric covariance", i)
		}
	}
}

// TestEKFUnicycleLocalization runs an EKF on a unicycle robot with range-
// bearing-free position fixes and checks convergence — the structure
// shared by the ADAS localization fusion.
func TestEKFUnicycleLocalization(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	dt, v, omega := 0.1, 5.0, 0.2
	truth := geo.NewPose2(0, 0, 0)
	ekf := NewEKF(Vec(1, -1, 0.1), Diag(4, 4, 0.25)) // deliberately wrong prior
	q := Diag(0.01, 0.01, 0.001)
	r := Diag(1, 1)
	h := func(x *Mat) (*Mat, *Mat) {
		return Vec(x.At(0, 0), x.At(1, 0)), MatFrom(2, 3, 1, 0, 0, 0, 1, 0)
	}
	for i := 0; i < 400; i++ {
		// True motion.
		truth = truth.Compose(geo.NewPose2(v*dt, 0, omega*dt))
		// EKF predict with the same control.
		ekf.Predict(func(x *Mat) (*Mat, *Mat) {
			th := x.At(2, 0)
			nx := Vec(
				x.At(0, 0)+v*dt*math.Cos(th),
				x.At(1, 0)+v*dt*math.Sin(th),
				x.At(2, 0)+omega*dt,
			)
			jac := MatFrom(3, 3,
				1, 0, -v*dt*math.Sin(th),
				0, 1, v*dt*math.Cos(th),
				0, 0, 1,
			)
			return nx, jac
		}, q)
		// GPS-like fix every 5 steps.
		if i%5 == 0 {
			z := Vec(truth.P.X+rng.NormFloat64(), truth.P.Y+rng.NormFloat64())
			if err := ekf.Update(z, h, r, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	est := geo.V2(ekf.X.At(0, 0), ekf.X.At(1, 0))
	if d := est.Dist(truth.P); d > 1.5 {
		t.Errorf("EKF position error = %v m, want < 1.5", d)
	}
	if hd := math.Abs(geo.AngleDiff(ekf.X.At(2, 0), truth.Theta)); hd > 0.2 {
		t.Errorf("EKF heading error = %v rad", hd)
	}
}
