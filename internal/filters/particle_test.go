package filters

import (
	"math"
	"math/rand"
	"testing"

	"hdmaps/internal/geo"
)

func TestParticleFilterConvergesToLandmark(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	truth := geo.NewPose2(10, 20, 0.5)
	pf := NewParticleFilter(500, geo.NewPose2(8, 22, 0.3), 5, 0.5, rng)
	for step := 0; step < 30; step++ {
		pf.Predict(geo.NewPose2(0, 0, 0), 0.1, 0.01)
		pf.Weigh(func(p geo.Pose2) float64 {
			return GaussianLikelihood(p.P.Dist(truth.P), 1.0) *
				GaussianLikelihood(geo.AngleDiff(p.Theta, truth.Theta), 0.2)
		})
		pf.ResampleIfNeeded(0.5)
	}
	m := pf.Mean()
	if d := m.P.Dist(truth.P); d > 0.5 {
		t.Errorf("PF position error = %v", d)
	}
	if hd := math.Abs(geo.AngleDiff(m.Theta, truth.Theta)); hd > 0.1 {
		t.Errorf("PF heading error = %v", hd)
	}
	if pf.Spread() > 1.5 {
		t.Errorf("PF did not converge, spread = %v", pf.Spread())
	}
}

func TestParticleFilterTracksMotion(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	truth := geo.NewPose2(0, 0, 0)
	pf := NewParticleFilter(400, truth, 0.5, 0.05, rng)
	delta := geo.NewPose2(1, 0, 0.05)
	for step := 0; step < 50; step++ {
		truth = truth.Compose(delta)
		pf.Predict(delta, 0.05, 0.005)
		pf.Weigh(func(p geo.Pose2) float64 {
			return GaussianLikelihood(p.P.Dist(truth.P), 0.5)
		})
		pf.ResampleIfNeeded(0.5)
	}
	if d := pf.Mean().P.Dist(truth.P); d > 0.5 {
		t.Errorf("tracking error = %v", d)
	}
}

func TestWeightsNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	pf := NewParticleFilter(100, geo.Pose2{}, 1, 0.1, rng)
	pf.Weigh(func(p geo.Pose2) float64 { return rng.Float64() })
	var sum float64
	for _, p := range pf.Particles {
		sum += p.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v", sum)
	}
}

func TestWeighDivergence(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	pf := NewParticleFilter(50, geo.Pose2{}, 1, 0.1, rng)
	if diverged := pf.Weigh(func(geo.Pose2) float64 { return 0 }); !diverged {
		t.Error("zero likelihood must report divergence")
	}
	// Weights reset to uniform.
	for _, p := range pf.Particles {
		if math.Abs(p.Weight-1.0/50) > 1e-12 {
			t.Fatalf("weight = %v after divergence", p.Weight)
		}
	}
	// Negative and NaN likelihoods are treated as zero, not propagated.
	pf.Weigh(func(p geo.Pose2) float64 {
		if p.P.X > 0 {
			return math.NaN()
		}
		return 1
	})
	for _, p := range pf.Particles {
		if math.IsNaN(p.Weight) {
			t.Fatal("NaN weight leaked")
		}
	}
}

func TestResamplePreservesDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	pf := NewParticleFilter(1000, geo.Pose2{}, 1, 0.1, rng)
	// Concentrate weight on particles with X > 0.
	pf.Weigh(func(p geo.Pose2) float64 {
		if p.P.X > 0 {
			return 1
		}
		return 1e-9
	})
	pf.Resample()
	pos := 0
	for _, p := range pf.Particles {
		if p.Pose.P.X > 0 {
			pos++
		}
		if math.Abs(p.Weight-1.0/1000) > 1e-12 {
			t.Fatal("resample must leave uniform weights")
		}
	}
	if pos < 950 {
		t.Errorf("only %d/1000 particles kept from the high-weight region", pos)
	}
}

func TestEffectiveN(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	pf := NewParticleFilter(100, geo.Pose2{}, 1, 0.1, rng)
	if n := pf.EffectiveN(); math.Abs(n-100) > 1e-6 {
		t.Errorf("uniform EffectiveN = %v, want 100", n)
	}
	// One particle with all the weight.
	for i := range pf.Particles {
		pf.Particles[i].Weight = 0
	}
	pf.Particles[0].Weight = 1
	if n := pf.EffectiveN(); math.Abs(n-1) > 1e-9 {
		t.Errorf("degenerate EffectiveN = %v, want 1", n)
	}
}

func TestUniformInit(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	box := geo.NewAABB(geo.V2(0, 0), geo.V2(100, 50))
	pf := NewParticleFilterUniform(1000, box, rng)
	for _, p := range pf.Particles {
		if !box.Contains(p.Pose.P) {
			t.Fatalf("particle %v outside box", p.Pose.P)
		}
	}
	// Mean should be near the box centre.
	if d := pf.Mean().P.Dist(box.Center()); d > 5 {
		t.Errorf("uniform mean %v far from centre", pf.Mean().P)
	}
}

func TestBest(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	pf := NewParticleFilter(10, geo.Pose2{}, 1, 0.1, rng)
	pf.Particles[7].Weight = 10
	pf.Particles[7].Pose = geo.NewPose2(42, 0, 0)
	if b := pf.Best(); b.P.X != 42 {
		t.Errorf("Best = %v", b)
	}
}

func TestGaussianLikelihood(t *testing.T) {
	if g := GaussianLikelihood(0, 1); g != 1 {
		t.Errorf("G(0,1) = %v", g)
	}
	if g := GaussianLikelihood(1, 1); math.Abs(g-math.Exp(-0.5)) > 1e-12 {
		t.Errorf("G(1,1) = %v", g)
	}
	if g := GaussianLikelihood(5, 0); g != 0 {
		t.Errorf("G(5,0) = %v", g)
	}
	if g := GaussianLikelihood(0, 0); g != 1 {
		t.Errorf("G(0,0) = %v", g)
	}
}

func TestHistogram1D(t *testing.T) {
	h := NewHistogram1D(0, 10, 100)
	if math.Abs(h.CellWidth()-0.1) > 1e-12 {
		t.Fatalf("CellWidth = %v", h.CellWidth())
	}
	// Sharp likelihood at 7.0 concentrates belief there.
	for i := 0; i < 10; i++ {
		h.Update(func(x float64) float64 { return GaussianLikelihood(x-7, 0.5) })
	}
	if m := h.Mean(); math.Abs(m-7) > 0.1 {
		t.Errorf("Mean = %v, want ≈7", m)
	}
	if m := h.MAP(); math.Abs(m-7) > 0.1 {
		t.Errorf("MAP = %v, want ≈7", m)
	}
	// Predict shifts the belief.
	h.Predict(2, 0.2)
	if m := h.Mean(); math.Abs(m-9) > 0.2 {
		t.Errorf("post-predict Mean = %v, want ≈9", m)
	}
	// Entropy increases after diffusion-only predict.
	e0 := h.Entropy()
	h.Predict(0, 0.5)
	if h.Entropy() <= e0 {
		t.Error("entropy must grow under diffusion")
	}
}

func TestHistogramDivergence(t *testing.T) {
	h := NewHistogram1D(0, 1, 10)
	if diverged := h.Update(func(float64) float64 { return 0 }); !diverged {
		t.Error("zero likelihood must report divergence")
	}
	var sum float64
	for _, p := range h.P {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("post-divergence sum = %v", sum)
	}
}

func TestDBNChangeInference(t *testing.T) {
	dbn, err := NewDBN(0.01, 0.9, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Repeated non-detection of a mapped element drives P(changed) up.
	for i := 0; i < 5; i++ {
		dbn.Propagate(1)
		dbn.Observe(1, false)
	}
	if b := dbn.Belief(1); b < 0.9 {
		t.Errorf("missed element belief = %v, want > 0.9", b)
	}
	// Repeated detection keeps belief low.
	for i := 0; i < 5; i++ {
		dbn.Propagate(2)
		dbn.Observe(2, true)
	}
	if b := dbn.Belief(2); b > 0.05 {
		t.Errorf("present element belief = %v, want < 0.05", b)
	}
	// New-element evidence: repeated detections of an unmapped element.
	for i := 0; i < 5; i++ {
		dbn.ObserveNew(3, true)
	}
	if b := dbn.Belief(3); b < 0.9 {
		t.Errorf("new element belief = %v, want > 0.9", b)
	}
	decided := dbn.Decide(0.9)
	if len(decided) != 2 {
		t.Errorf("Decide returned %v", decided)
	}
	dbn.Reset(1)
	if dbn.Len() != 2 {
		t.Errorf("Len after reset = %d", dbn.Len())
	}
	if b := dbn.Belief(1); b != dbn.PChangePrior {
		t.Errorf("reset belief = %v", b)
	}
}

func TestDBNValidation(t *testing.T) {
	if _, err := NewDBN(-0.1, 0.9, 0.05); err == nil {
		t.Error("negative hazard accepted")
	}
	if _, err := NewDBN(0.01, 1.5, 0.05); err == nil {
		t.Error("tpr > 1 accepted")
	}
}

func BenchmarkParticleFilterStep(b *testing.B) {
	rng := rand.New(rand.NewSource(59))
	pf := NewParticleFilter(1000, geo.Pose2{}, 1, 0.1, rng)
	target := geo.V2(3, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pf.Predict(geo.NewPose2(0.1, 0, 0), 0.05, 0.01)
		pf.Weigh(func(p geo.Pose2) float64 { return GaussianLikelihood(p.P.Dist(target), 2) })
		pf.ResampleIfNeeded(0.5)
	}
}
