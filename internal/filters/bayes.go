package filters

import (
	"errors"
	"math"
)

// ErrBadDistribution is returned when probabilities are invalid.
var ErrBadDistribution = errors.New("filters: invalid probability distribution")

// Histogram1D is a discrete Bayes filter over a 1-D state (e.g. lateral
// lane position or arc-length along a route). Bauer-style road-surface
// localization and lane-level map matching use it where a full particle
// filter is overkill.
type Histogram1D struct {
	Min, Max float64
	P        []float64 // cell probabilities, sum to 1
}

// NewHistogram1D creates a uniform histogram with n cells over [min, max].
func NewHistogram1D(min, max float64, n int) *Histogram1D {
	if n < 1 {
		n = 1
	}
	h := &Histogram1D{Min: min, Max: max, P: make([]float64, n)}
	u := 1 / float64(n)
	for i := range h.P {
		h.P[i] = u
	}
	return h
}

// CellWidth returns the width of one cell.
func (h *Histogram1D) CellWidth() float64 { return (h.Max - h.Min) / float64(len(h.P)) }

// CellCenter returns the centre value of cell i.
func (h *Histogram1D) CellCenter(i int) float64 {
	return h.Min + (float64(i)+0.5)*h.CellWidth()
}

// Predict convolves the belief with a Gaussian motion kernel: the state
// moves by delta with standard deviation sigma.
func (h *Histogram1D) Predict(delta, sigma float64) {
	n := len(h.P)
	w := h.CellWidth()
	next := make([]float64, n)
	// Discretise the kernel out to 3 sigma around the shift.
	halfK := int(math.Ceil((3*sigma+math.Abs(delta))/w)) + 1
	kernel := make([]float64, 2*halfK+1)
	var kSum float64
	for k := -halfK; k <= halfK; k++ {
		d := float64(k)*w - delta
		kernel[k+halfK] = math.Exp(-d * d / (2 * sigma * sigma))
		kSum += kernel[k+halfK]
	}
	if kSum == 0 {
		return
	}
	for i := range kernel {
		kernel[i] /= kSum
	}
	for i := 0; i < n; i++ {
		if h.P[i] == 0 {
			continue
		}
		for k := -halfK; k <= halfK; k++ {
			j := i + k
			if j < 0 {
				j = 0
			}
			if j >= n {
				j = n - 1
			}
			next[j] += h.P[i] * kernel[k+halfK]
		}
	}
	h.P = next
}

// Update multiplies by likelihood(cellCenter) and renormalises; a zero
// total resets to uniform and reports divergence.
func (h *Histogram1D) Update(likelihood func(x float64) float64) (diverged bool) {
	var sum float64
	for i := range h.P {
		h.P[i] *= likelihood(h.CellCenter(i))
		sum += h.P[i]
	}
	if sum <= 0 {
		u := 1 / float64(len(h.P))
		for i := range h.P {
			h.P[i] = u
		}
		return true
	}
	for i := range h.P {
		h.P[i] /= sum
	}
	return false
}

// Mean returns the expected state value.
func (h *Histogram1D) Mean() float64 {
	var m float64
	for i, p := range h.P {
		m += p * h.CellCenter(i)
	}
	return m
}

// MAP returns the centre of the most probable cell.
func (h *Histogram1D) MAP() float64 {
	best, bp := 0, -1.0
	for i, p := range h.P {
		if p > bp {
			best, bp = i, p
		}
	}
	return h.CellCenter(best)
}

// Entropy returns the Shannon entropy in nats — a confidence diagnostic.
func (h *Histogram1D) Entropy() float64 {
	var e float64
	for _, p := range h.P {
		if p > 0 {
			e -= p * math.Log(p)
		}
	}
	return e
}

// DBN is a discrete dynamic Bayesian network over binary "element changed"
// variables, the inference core of SLAMCU (Jo et al.). Each tracked map
// element carries a belief that it has physically changed; per-visit
// evidence (detected / not detected, displaced / in place) updates the
// belief, and a persistence prior transfers belief across time steps.
type DBN struct {
	// PChangePrior is the per-visit prior probability that an element
	// changed since the last visit (hazard rate).
	PChangePrior float64
	// PDetectGivenPresent is the sensor's true-positive rate.
	PDetectGivenPresent float64
	// PDetectGivenAbsent is the sensor's false-positive rate.
	PDetectGivenAbsent float64

	beliefs map[int64]float64 // element id -> P(changed)
}

// NewDBN constructs the network. It returns ErrBadDistribution when any
// probability is outside [0, 1].
func NewDBN(hazard, tpr, fpr float64) (*DBN, error) {
	for _, p := range []float64{hazard, tpr, fpr} {
		if p < 0 || p > 1 {
			return nil, ErrBadDistribution
		}
	}
	return &DBN{
		PChangePrior:        hazard,
		PDetectGivenPresent: tpr,
		PDetectGivenAbsent:  fpr,
		beliefs:             make(map[int64]float64),
	}, nil
}

// Belief returns P(changed) for element id (the hazard prior when the
// element has never been observed).
func (d *DBN) Belief(id int64) float64 {
	if b, ok := d.beliefs[id]; ok {
		return b
	}
	return d.PChangePrior
}

// Propagate applies the temporal transition: an unchanged element may
// change with the hazard rate between observation epochs.
func (d *DBN) Propagate(id int64) {
	b := d.Belief(id)
	d.beliefs[id] = b + (1-b)*d.PChangePrior
}

// Observe updates the belief for an element the map says should be
// present. detected reports whether the sensor saw it this pass.
// For a map element, "changed" means removed/moved, so detection is
// evidence against change:
//
//	P(detected | changed)   = fpr   (we shouldn't see it, maybe clutter)
//	P(detected | unchanged) = tpr
func (d *DBN) Observe(id int64, detected bool) float64 {
	b := d.Belief(id)
	var lChanged, lUnchanged float64
	if detected {
		lChanged, lUnchanged = d.PDetectGivenAbsent, d.PDetectGivenPresent
	} else {
		lChanged, lUnchanged = 1-d.PDetectGivenAbsent, 1-d.PDetectGivenPresent
	}
	num := lChanged * b
	den := num + lUnchanged*(1-b)
	if den <= 0 {
		return b
	}
	d.beliefs[id] = num / den
	return d.beliefs[id]
}

// ObserveNew updates the belief for a detection with no map counterpart
// (a candidate new element). Here "changed" means the world gained an
// element, so detection is evidence for change.
func (d *DBN) ObserveNew(id int64, detected bool) float64 {
	b := d.Belief(id)
	var lChanged, lUnchanged float64
	if detected {
		lChanged, lUnchanged = d.PDetectGivenPresent, d.PDetectGivenAbsent
	} else {
		lChanged, lUnchanged = 1-d.PDetectGivenPresent, 1-d.PDetectGivenAbsent
	}
	num := lChanged * b
	den := num + lUnchanged*(1-b)
	if den <= 0 {
		return b
	}
	d.beliefs[id] = num / den
	return d.beliefs[id]
}

// Decide returns the ids whose change belief crosses threshold.
func (d *DBN) Decide(threshold float64) []int64 {
	var out []int64
	for id, b := range d.beliefs {
		if b >= threshold {
			out = append(out, id)
		}
	}
	return out
}

// Reset clears the belief for id (called after the map is patched).
func (d *DBN) Reset(id int64) { delete(d.beliefs, id) }

// Len returns the number of tracked elements.
func (d *DBN) Len() int { return len(d.beliefs) }
