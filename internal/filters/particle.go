package filters

import (
	"math"
	"math/rand"

	"hdmaps/internal/geo"
)

// Particle is one pose hypothesis with an importance weight.
type Particle struct {
	Pose   geo.Pose2
	Weight float64
}

// ParticleFilter is a sample-based pose estimator. It is the backbone of
// most surveyed localization methods: lane-marking matching (Ghallabi),
// road-surface localization (Bauer), HRL landmark matching, the bitwise
// raster matching of HDMI-Loc, and the two-filter change detector of
// Pannen et al.
type ParticleFilter struct {
	Particles []Particle
	rng       *rand.Rand
}

// NewParticleFilter creates n particles drawn from the given Gaussian
// prior around pose p0 (stdXY metres, stdTheta radians).
func NewParticleFilter(n int, p0 geo.Pose2, stdXY, stdTheta float64, rng *rand.Rand) *ParticleFilter {
	pf := &ParticleFilter{Particles: make([]Particle, n), rng: rng}
	w := 1 / float64(n)
	for i := range pf.Particles {
		pf.Particles[i] = Particle{
			Pose: geo.Pose2{
				P: geo.V2(
					p0.P.X+rng.NormFloat64()*stdXY,
					p0.P.Y+rng.NormFloat64()*stdXY,
				),
				Theta: geo.NormalizeAngle(p0.Theta + rng.NormFloat64()*stdTheta),
			},
			Weight: w,
		}
	}
	return pf
}

// NewParticleFilterUniform spreads n particles uniformly over box with
// random headings — the global-initialization mode used by coarse-to-fine
// localization before GPS narrows the prior.
func NewParticleFilterUniform(n int, box geo.AABB, rng *rand.Rand) *ParticleFilter {
	pf := &ParticleFilter{Particles: make([]Particle, n), rng: rng}
	w := 1 / float64(n)
	for i := range pf.Particles {
		pf.Particles[i] = Particle{
			Pose: geo.Pose2{
				P: geo.V2(
					box.Min.X+rng.Float64()*(box.Max.X-box.Min.X),
					box.Min.Y+rng.Float64()*(box.Max.Y-box.Min.Y),
				),
				Theta: rng.Float64()*2*math.Pi - math.Pi,
			},
			Weight: w,
		}
	}
	return pf
}

// Predict applies odometry increment delta (in the vehicle frame) to every
// particle with Gaussian noise.
func (pf *ParticleFilter) Predict(delta geo.Pose2, stdXY, stdTheta float64) {
	for i := range pf.Particles {
		noisy := geo.Pose2{
			P: geo.V2(
				delta.P.X+pf.rng.NormFloat64()*stdXY,
				delta.P.Y+pf.rng.NormFloat64()*stdXY,
			),
			Theta: delta.Theta + pf.rng.NormFloat64()*stdTheta,
		}
		pf.Particles[i].Pose = pf.Particles[i].Pose.Compose(noisy)
	}
}

// Weigh multiplies each particle's weight by likelihood(pose) and
// renormalises. A likelihood sum of zero resets to uniform weights (filter
// divergence is reported via the return value so callers can re-seed).
func (pf *ParticleFilter) Weigh(likelihood func(geo.Pose2) float64) (diverged bool) {
	var sum float64
	for i := range pf.Particles {
		w := pf.Particles[i].Weight * likelihood(pf.Particles[i].Pose)
		if w < 0 || math.IsNaN(w) {
			w = 0
		}
		pf.Particles[i].Weight = w
		sum += w
	}
	if sum <= 0 {
		u := 1 / float64(len(pf.Particles))
		for i := range pf.Particles {
			pf.Particles[i].Weight = u
		}
		return true
	}
	for i := range pf.Particles {
		pf.Particles[i].Weight /= sum
	}
	return false
}

// EffectiveN returns the effective sample size 1/Σw², the standard
// resampling trigger.
func (pf *ParticleFilter) EffectiveN() float64 {
	var s float64
	for _, p := range pf.Particles {
		s += p.Weight * p.Weight
	}
	if s == 0 {
		return 0
	}
	return 1 / s
}

// Resample performs systematic (low-variance) resampling, leaving all
// weights uniform.
func (pf *ParticleFilter) Resample() {
	n := len(pf.Particles)
	if n == 0 {
		return
	}
	next := make([]Particle, n)
	step := 1 / float64(n)
	u := pf.rng.Float64() * step
	var cum float64
	j := 0
	for i := 0; i < n; i++ {
		target := u + float64(i)*step
		for cum+pf.Particles[j].Weight < target && j < n-1 {
			cum += pf.Particles[j].Weight
			j++
		}
		next[i] = pf.Particles[j]
		next[i].Weight = step
	}
	pf.Particles = next
}

// ResampleIfNeeded resamples when the effective sample size drops below
// ratio·N (typical ratio 0.5) and reports whether it did.
func (pf *ParticleFilter) ResampleIfNeeded(ratio float64) bool {
	if pf.EffectiveN() < ratio*float64(len(pf.Particles)) {
		pf.Resample()
		return true
	}
	return false
}

// Mean returns the weighted mean pose (circular mean for heading).
func (pf *ParticleFilter) Mean() geo.Pose2 {
	var x, y, sc, ss, wSum float64
	for _, p := range pf.Particles {
		x += p.Weight * p.Pose.P.X
		y += p.Weight * p.Pose.P.Y
		sc += p.Weight * math.Cos(p.Pose.Theta)
		ss += p.Weight * math.Sin(p.Pose.Theta)
		wSum += p.Weight
	}
	if wSum == 0 {
		return geo.Pose2{}
	}
	return geo.Pose2{
		P:     geo.V2(x/wSum, y/wSum),
		Theta: math.Atan2(ss, sc),
	}
}

// Spread returns the weighted positional standard deviation around the
// mean — a convergence diagnostic.
func (pf *ParticleFilter) Spread() float64 {
	m := pf.Mean()
	var v, wSum float64
	for _, p := range pf.Particles {
		v += p.Weight * p.Pose.P.DistSq(m.P)
		wSum += p.Weight
	}
	if wSum == 0 {
		return 0
	}
	return math.Sqrt(v / wSum)
}

// Best returns the highest-weight particle's pose.
func (pf *ParticleFilter) Best() geo.Pose2 {
	best, bw := geo.Pose2{}, -1.0
	for _, p := range pf.Particles {
		if p.Weight > bw {
			best, bw = p.Pose, p.Weight
		}
	}
	return best
}

// GaussianLikelihood returns exp(-d²/(2σ²)), the unnormalised Gaussian
// likelihood used by nearly every measurement model in this repository.
func GaussianLikelihood(dist, sigma float64) float64 {
	if sigma <= 0 {
		if dist == 0 {
			return 1
		}
		return 0
	}
	return math.Exp(-dist * dist / (2 * sigma * sigma))
}
