package filters

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func matAlmostEq(a, b *Mat, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func TestMatBasics(t *testing.T) {
	a := MatFrom(2, 2, 1, 2, 3, 4)
	b := MatFrom(2, 2, 5, 6, 7, 8)
	if got := a.Add(b); !matAlmostEq(got, MatFrom(2, 2, 6, 8, 10, 12), 0) {
		t.Errorf("Add = %v", got.Data)
	}
	if got := b.Sub(a); !matAlmostEq(got, MatFrom(2, 2, 4, 4, 4, 4), 0) {
		t.Errorf("Sub = %v", got.Data)
	}
	if got := a.Scale(2); !matAlmostEq(got, MatFrom(2, 2, 2, 4, 6, 8), 0) {
		t.Errorf("Scale = %v", got.Data)
	}
	if got := a.Mul(b); !matAlmostEq(got, MatFrom(2, 2, 19, 22, 43, 50), 0) {
		t.Errorf("Mul = %v", got.Data)
	}
	if got := a.T(); !matAlmostEq(got, MatFrom(2, 2, 1, 3, 2, 4), 0) {
		t.Errorf("T = %v", got.Data)
	}
}

func TestMatMulNonSquare(t *testing.T) {
	a := MatFrom(2, 3, 1, 2, 3, 4, 5, 6)
	b := MatFrom(3, 1, 1, 1, 1)
	got := a.Mul(b)
	if got.Rows != 2 || got.Cols != 1 || got.At(0, 0) != 6 || got.At(1, 0) != 15 {
		t.Errorf("Mul = %+v", got)
	}
}

func TestMatInverse(t *testing.T) {
	a := MatFrom(2, 2, 4, 7, 2, 6)
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Mul(inv); !matAlmostEq(got, Eye(2), 1e-12) {
		t.Errorf("A·A⁻¹ = %v", got.Data)
	}
	if _, err := MatFrom(2, 2, 1, 2, 2, 4).Inverse(); err == nil {
		t.Error("singular matrix inverted")
	}
	if _, err := MatFrom(2, 3, 1, 2, 3, 4, 5, 6).Inverse(); err == nil {
		t.Error("non-square matrix inverted")
	}
}

func TestMatInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5)
		a := NewMat(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Diagonal dominance ensures invertibility.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		inv, err := a.Inverse()
		if err != nil {
			t.Fatalf("unexpected singular: %v", err)
		}
		if got := a.Mul(inv); !matAlmostEq(got, Eye(n), 1e-9) {
			t.Fatalf("n=%d inverse check failed", n)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(vals [6]float64) bool {
		m := MatFrom(2, 3, vals[0], vals[1], vals[2], vals[3], vals[4], vals[5])
		return matAlmostEq(m.T().T(), m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiagEyeVec(t *testing.T) {
	d := Diag(1, 2, 3)
	if d.At(0, 0) != 1 || d.At(1, 1) != 2 || d.At(2, 2) != 3 || d.At(0, 1) != 0 {
		t.Error("Diag wrong")
	}
	v := Vec(7, 8)
	if v.Rows != 2 || v.Cols != 1 || v.At(1, 0) != 8 {
		t.Error("Vec wrong")
	}
	if c := d.Col(1); len(c) != 3 || c[1] != 2 {
		t.Error("Col wrong")
	}
}

func TestSymmetrize(t *testing.T) {
	m := MatFrom(2, 2, 1, 2, 4, 3)
	s := m.Symmetrize()
	if s.At(0, 1) != 3 || s.At(1, 0) != 3 {
		t.Errorf("Symmetrize = %v", s.Data)
	}
}

func TestMatFromPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MatFrom with wrong count must panic")
		}
	}()
	MatFrom(2, 2, 1, 2, 3)
}
