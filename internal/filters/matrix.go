// Package filters implements the state-estimation machinery the HD-map
// pipelines are built on: linear Kalman filters, extended Kalman filters,
// particle filters with systematic resampling, 1-D histogram filters, and
// a small discrete dynamic Bayesian network used by SLAMCU-style map
// change inference.
//
// A tiny dense-matrix type is included rather than depending on an
// external linear-algebra package; the state dimensions in this domain
// are single digits, so clarity beats asymptotics.
package filters

import (
	"errors"
	"fmt"
)

// ErrSingular is returned when a matrix inversion fails.
var ErrSingular = errors.New("filters: singular matrix")

// ErrDimension is returned when operand shapes are incompatible.
var ErrDimension = errors.New("filters: dimension mismatch")

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat returns a zero matrix of the given shape.
func NewMat(rows, cols int) *Mat {
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatFrom builds a matrix from row-major values; it panics if the value
// count does not match the shape (a programming error, not runtime input).
func MatFrom(rows, cols int, vals ...float64) *Mat {
	if len(vals) != rows*cols {
		panic(fmt.Sprintf("filters: MatFrom(%d,%d) got %d values", rows, cols, len(vals)))
	}
	m := NewMat(rows, cols)
	copy(m.Data, vals)
	return m
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square matrix with the given diagonal.
func Diag(vals ...float64) *Mat {
	m := NewMat(len(vals), len(vals))
	for i, v := range vals {
		m.Set(i, i, v)
	}
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Add returns m + o.
func (m *Mat) Add(o *Mat) *Mat {
	checkShape(m, o)
	r := NewMat(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = m.Data[i] + o.Data[i]
	}
	return r
}

// Sub returns m - o.
func (m *Mat) Sub(o *Mat) *Mat {
	checkShape(m, o)
	r := NewMat(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = m.Data[i] - o.Data[i]
	}
	return r
}

// Scale returns m scaled by s.
func (m *Mat) Scale(s float64) *Mat {
	r := NewMat(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = m.Data[i] * s
	}
	return r
}

// Mul returns the matrix product m·o.
func (m *Mat) Mul(o *Mat) *Mat {
	if m.Cols != o.Rows {
		panic(ErrDimension)
	}
	r := NewMat(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			for j := 0; j < o.Cols; j++ {
				r.Data[i*o.Cols+j] += a * o.Data[k*o.Cols+j]
			}
		}
	}
	return r
}

// T returns the transpose of m.
func (m *Mat) T() *Mat {
	r := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			r.Set(j, i, m.At(i, j))
		}
	}
	return r
}

// Inverse returns m⁻¹ using Gauss-Jordan elimination with partial
// pivoting. It returns ErrSingular for non-invertible input.
func (m *Mat) Inverse() (*Mat, error) {
	if m.Rows != m.Cols {
		return nil, ErrDimension
	}
	n := m.Rows
	a := m.Clone()
	inv := Eye(n)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if abs(a.At(r, col)) > abs(a.At(pivot, col)) {
				pivot = r
			}
		}
		if abs(a.At(pivot, col)) < 1e-14 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Normalise pivot row.
		p := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/p)
			inv.Set(col, j, inv.At(col, j)/p)
		}
		// Eliminate.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
				inv.Set(r, j, inv.At(r, j)-f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

func swapRows(m *Mat, a, b int) {
	for j := 0; j < m.Cols; j++ {
		va, vb := m.At(a, j), m.At(b, j)
		m.Set(a, j, vb)
		m.Set(b, j, va)
	}
}

func checkShape(a, b *Mat) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(ErrDimension)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Vec returns a column vector matrix from values.
func Vec(vals ...float64) *Mat { return MatFrom(len(vals), 1, vals...) }

// Col extracts column j as a slice.
func (m *Mat) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := range out {
		out[i] = m.At(i, j)
	}
	return out
}

// Symmetrize returns (m + mᵀ)/2, used to keep covariance matrices
// numerically symmetric across many filter iterations.
func (m *Mat) Symmetrize() *Mat {
	return m.Add(m.T()).Scale(0.5)
}
