// Command mapbench regenerates the survey's tables and figures: it runs
// the experiments catalogued in DESIGN.md (Table I, Fig 1, Fig 2 and the
// E1–E20 headline results) and prints paper-quoted values next to
// measured ones.
//
// Usage:
//
//	mapbench                 # run everything
//	mapbench -experiment E6  # run one experiment
//	mapbench -seed 7         # change the deterministic seed
//	mapbench -list           # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hdmaps/internal/experiments"
)

func main() {
	var (
		id   = flag.String("experiment", "", "run a single experiment by ID (e.g. F2, E6)")
		seed = flag.Int64("seed", 42, "deterministic seed")
		list = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}
	if *id != "" {
		run(*id, *seed)
		return
	}
	for _, e := range experiments.All() {
		run(e.ID, *seed)
	}
}

func run(id string, seed int64) {
	start := time.Now()
	rep, err := experiments.Run(id, seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
		os.Exit(1)
	}
	fmt.Print(rep.String())
	fmt.Printf("  (%.1fs)\n\n", time.Since(start).Seconds())
}
