// Command mapbench regenerates the survey's tables and figures: it runs
// the experiments catalogued in DESIGN.md (Table I, Fig 1, Fig 2 and the
// E1–E20 headline results) and prints paper-quoted values next to
// measured ones.
//
// It also owns the repo's perf baseline: `-json` runs the hot-path
// probe suite in internal/bench and emits JSON, and `-compare` gates a
// fresh run against a committed baseline with tolerances (loose on
// wall time, tight on allocations).
//
// Usage:
//
//	mapbench                 # run every experiment
//	mapbench -experiment E6  # run one experiment
//	mapbench -seed 7         # change the deterministic seed
//	mapbench -list           # list experiment IDs
//	mapbench -json                            # perf suite → stdout JSON
//	mapbench -json -out BENCH_baseline.json   # write/refresh the baseline
//	mapbench -compare BENCH_baseline.json     # run suite, gate vs baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"hdmaps/internal/bench"
	"hdmaps/internal/experiments"
	"hdmaps/internal/obs"
)

func main() {
	var (
		id       = flag.String("experiment", "", "run a single experiment by ID (e.g. F2, E6)")
		seed     = flag.Int64("seed", 42, "deterministic seed")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		jsonOut  = flag.Bool("json", false, "run the perf probe suite and emit JSON instead of experiments")
		outPath  = flag.String("out", "", "with -json: write the suite JSON to this file instead of stdout")
		compare  = flag.String("compare", "", "run the perf suite and gate it against this baseline JSON file")
		nsTol    = flag.Float64("nstol", 0, "with -compare: allowed ns_per_op multiple (default 4.0)")
		allocTol = flag.Float64("alloctol", 0, "with -compare: allowed allocs_per_op multiple (default 1.25)")
	)
	flag.Parse()

	if *compare != "" {
		os.Exit(gate(*compare, *seed, bench.Tolerances{NsFactor: *nsTol, AllocFactor: *allocTol}))
	}
	if *jsonOut {
		os.Exit(perfJSON(*seed, *outPath))
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}
	// One wall-clock observation per experiment; the summary at the end
	// shows where a regeneration run spends its time.
	durations := obs.NewHistogram([]float64{
		0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
	})
	if *id != "" {
		run(*id, *seed, durations)
		fmt.Printf("experiment wall-clock: %s\n", durations.Snapshot().Summary())
		return
	}
	for _, e := range experiments.All() {
		run(e.ID, *seed, durations)
	}
	fmt.Printf("experiment wall-clock: %s\n", durations.Snapshot().Summary())
}

func run(id string, seed int64, durations *obs.Histogram) {
	start := time.Now()
	rep, err := experiments.Run(id, seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
		os.Exit(1)
	}
	durations.ObserveSince(start)
	fmt.Print(rep.String())
	fmt.Printf("  (%.1fs)\n\n", time.Since(start).Seconds())
}

// perfJSON runs the probe suite and writes it as JSON (stdout or -out).
func perfJSON(seed int64, outPath string) int {
	suite, err := bench.RunSuite(seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	if outPath != "" {
		if err := bench.WriteRun(outPath, suite); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %d probes to %s\n", len(suite.Results), outPath)
		return 0
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(suite); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	return 0
}

// gate runs the probe suite and compares it against a committed
// baseline; a regression beyond tolerance is a nonzero exit, which is
// what CI keys on.
func gate(baselinePath string, seed int64, tol bench.Tolerances) int {
	baseline, err := bench.ReadRun(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	current, err := bench.RunSuite(seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	c := bench.Compare(baseline, current, tol)
	// The delta table prints on every run, pass or fail: perf drift
	// should be visible in CI logs long before it crosses a tolerance.
	for _, d := range c.Deltas {
		fmt.Printf("  %s\n", d)
	}
	for _, n := range c.Notes {
		fmt.Printf("note: %s\n", n)
	}
	if !c.OK() {
		for _, r := range c.Regressions {
			fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", r)
		}
		fmt.Fprintf(os.Stderr, "bench gate: %d regression(s) vs %s\n", len(c.Regressions), baselinePath)
		return 1
	}
	fmt.Printf("bench gate: %d probes within tolerance of %s\n", len(current.Results), baselinePath)
	return 0
}
