// Command mapbench regenerates the survey's tables and figures: it runs
// the experiments catalogued in DESIGN.md (Table I, Fig 1, Fig 2 and the
// E1–E20 headline results) and prints paper-quoted values next to
// measured ones.
//
// Usage:
//
//	mapbench                 # run everything
//	mapbench -experiment E6  # run one experiment
//	mapbench -seed 7         # change the deterministic seed
//	mapbench -list           # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hdmaps/internal/experiments"
	"hdmaps/internal/obs"
)

func main() {
	var (
		id   = flag.String("experiment", "", "run a single experiment by ID (e.g. F2, E6)")
		seed = flag.Int64("seed", 42, "deterministic seed")
		list = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}
	// One wall-clock observation per experiment; the summary at the end
	// shows where a regeneration run spends its time.
	durations := obs.NewHistogram([]float64{
		0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
	})
	if *id != "" {
		run(*id, *seed, durations)
		fmt.Printf("experiment wall-clock: %s\n", durations.Snapshot().Summary())
		return
	}
	for _, e := range experiments.All() {
		run(e.ID, *seed, durations)
	}
	fmt.Printf("experiment wall-clock: %s\n", durations.Snapshot().Summary())
}

func run(id string, seed int64, durations *obs.Histogram) {
	start := time.Now()
	rep, err := experiments.Run(id, seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
		os.Exit(1)
	}
	durations.ObserveSince(start)
	fmt.Print(rep.String())
	fmt.Printf("  (%.1fs)\n\n", time.Since(start).Seconds())
}
