package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"hdmaps/internal/chaos"
	"hdmaps/internal/resilience"
	"hdmaps/internal/storage"
)

// TestRunServeDrainsInFlight exercises the `hdmapctl serve` shutdown
// path: context cancellation (what SIGINT triggers) while GETs are in
// flight over a slow store. Every in-flight request must complete with
// 200 — no connection reset observed by any client — and runServe must
// return nil within the drain deadline.
func TestRunServeDrainsInFlight(t *testing.T) {
	store := storage.NewMemStore()
	const tiles = 4
	for i := 0; i < tiles; i++ {
		key := storage.TileKey{Layer: "base", TX: int32(i), TY: 0}
		if err := store.Put(key, []byte(fmt.Sprintf("tile-payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Every store read takes 50ms, so cancellation lands mid-request.
	injector := chaos.New(chaos.Config{Seed: 11, LatencyProb: 1, Latency: 50 * time.Millisecond})
	handler := resilience.NewHandler(storage.NewTileServer(injector.Store(store)), resilience.Config{
		CacheSize: -1, // force every GET through the slow store
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- runServe(ctx, ln, handler, 5*time.Second) }()

	// readyz says serving before the drain begins.
	waitReady(t, base)

	type outcome struct {
		code int
		err  error
	}
	outcomes := make(chan outcome, tiles)
	var wg sync.WaitGroup
	for i := 0; i < tiles; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("%s/v1/tiles/base/%d/0", base, i))
			if err != nil {
				outcomes <- outcome{err: err}
				return
			}
			defer resp.Body.Close()
			outcomes <- outcome{code: resp.StatusCode}
		}(i)
	}
	deadline := time.After(5 * time.Second)
	for handler.Stats().Inflight < tiles {
		select {
		case <-deadline:
			t.Fatalf("only %d requests in flight", handler.Stats().Inflight)
		case <-time.After(time.Millisecond):
		}
	}

	cancel() // what SIGINT does via signal.NotifyContext
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("runServe: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("runServe did not return after cancellation")
	}
	wg.Wait()
	close(outcomes)
	for o := range outcomes {
		if o.err != nil {
			t.Errorf("client saw a connection error during drain: %v", o.err)
		} else if o.code != http.StatusOK {
			t.Errorf("in-flight GET dropped during drain: status %d", o.code)
		}
	}
	snap := handler.Stats()
	if snap.Inflight != 0 || !snap.Draining {
		t.Errorf("post-drain stats: inflight=%d draining=%v", snap.Inflight, snap.Draining)
	}
	if snap.Submitted != snap.Accepted+snap.Shed+snap.Errored {
		t.Errorf("accounting: submitted %d != accepted %d + shed %d + errored %d",
			snap.Submitted, snap.Accepted, snap.Shed, snap.Errored)
	}
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		select {
		case <-deadline:
			t.Fatalf("server never became ready: %v", err)
		case <-time.After(5 * time.Millisecond):
		}
	}
}
