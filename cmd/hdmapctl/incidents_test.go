package main

import (
	"strings"
	"testing"
	"time"

	"hdmaps/internal/obs/eventlog"
	"hdmaps/internal/obs/incident"
)

func TestRenderIncidents(t *testing.T) {
	at := time.Unix(1700000000, 0).UTC()
	doc := &incident.Status{
		GeneratedAt: at,
		Open:        1,
		Resolved:    1,
		Incidents: []incident.Incident{
			{
				ID: "inc-2", Objective: "slo.read.availability", State: incident.StateOpen,
				Severity: "critical", OpenedAt: at.Add(-time.Minute),
				Description:     "routed requests answered, not shed",
				ExemplarTraceID: "feedfacefeedface",
				Arc: []incident.ArcStep{
					{At: at.Add(-time.Minute), From: "ok", To: "critical", BurnFast: 44.1, BurnSlow: 20.3},
				},
				Events: []eventlog.Event{
					{Seq: 7, At: at.Add(-90 * time.Second), Type: eventlog.TypeNodeDead,
						Node: "node1", Detail: "probe timeout"},
				},
			},
			{
				ID: "inc-1", Objective: "slo.sweep.cadence", State: incident.StateResolved,
				Severity: "warning", OpenedAt: at.Add(-time.Hour),
				ResolvedAt: at.Add(-time.Hour + 30*time.Second),
			},
		},
	}
	out := renderIncidents(doc, "http://localhost:8080")
	for _, want := range []string{
		"1 open, 1 resolved",
		"inc-2 OPEN slo.read.availability [critical]",
		"exemplar trace feedfacefeedface",
		"ok -> critical  burn fast=44.1 slow=20.3",
		"node_dead", "node1", "probe timeout",
		"inc-1 RESOLVED slo.sweep.cadence [warning]",
		"(30s)", // resolved incidents show their duration
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}

	empty := &incident.Status{GeneratedAt: at}
	if out := renderIncidents(empty, "b"); !strings.Contains(out, "no incidents") {
		t.Errorf("empty render: %s", out)
	}
}

func TestRenderEvents(t *testing.T) {
	if out := renderEvents(nil); out != "" {
		t.Errorf("nil journal should render nothing, got %q", out)
	}
	at := time.Unix(1700000000, 0).UTC()
	doc := &eventlog.Status{
		GeneratedAt: at,
		Seq:         2,
		Events: []eventlog.Event{
			{Seq: 1, At: at, Type: eventlog.TypeNodeDead, Node: "node0", Detail: "probe timeout"},
			{Seq: 2, At: at, Type: eventlog.TypeAlertCritical,
				Detail: "slo.read.availability: ok -> critical", TraceID: "deadbeefdeadbeef"},
		},
	}
	out := renderEvents(doc)
	for _, want := range []string{
		"EVENTS",
		"node_dead", "node0", "probe timeout",
		"alert_critical", "trace=deadbeefdeadbeef",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if out := renderEvents(&eventlog.Status{GeneratedAt: at}); !strings.Contains(out, "journal empty") {
		t.Errorf("empty journal render: %s", out)
	}
}
