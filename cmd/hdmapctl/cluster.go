// Cluster-side commands: `serve -cluster N` boots a sharded, replicated
// tile fleet behind one router, and `cluster` prints a running router's
// /clusterz status document.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"hdmaps/internal/cluster"
	"hdmaps/internal/obs"
	"hdmaps/internal/resilience"
	"hdmaps/internal/storage"
)

// serveCluster boots N tile-server nodes (each with its own DirStore
// under <dir>/nodeI and its own overload pipeline) on loopback
// listeners, fronts them with a consistent-hash router at R-way
// replication, and serves the router on addr. One process, N shards:
// the deployment shape is a demo, but the routing, quorum, repair, and
// handoff paths are exactly what a multi-host cluster would run.
func serveCluster(ctx context.Context, dir, addr string, n, replicas int, rcfg resilience.Config, drain, sweep, tombTTL, sample time.Duration) error {
	if n > 16 {
		return fmt.Errorf("-cluster %d: more than 16 in-process nodes is a typo, not a deployment", n)
	}
	nodes := make([]cluster.Node, 0, n)
	nodeSrvs := make([]*http.Server, 0, n)
	defer func() {
		for _, s := range nodeSrvs {
			_ = s.Close()
		}
	}()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("node%d", i)
		store, err := storage.NewDirStore(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		// Each node gets its own registry so per-node counters do not
		// merge into one indistinguishable pile; the router's registry
		// (obs.Default) carries the fleet-level view.
		ncfg := rcfg
		ncfg.Metrics = obs.NewRegistry()
		handler := resilience.NewHandler(storage.NewTileServer(store), ncfg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: handler}
		go func() { _ = srv.Serve(ln) }()
		nodeSrvs = append(nodeSrvs, srv)
		nodes = append(nodes, cluster.Node{Name: name, Base: "http://" + ln.Addr().String()})
		fmt.Printf("  %s serving %s on %s\n", name, filepath.Join(dir, name), ln.Addr())
	}

	rt, err := cluster.NewRouter(cluster.Config{
		Nodes:          nodes,
		Replicas:       replicas,
		Registry:       obs.Default(),
		Tracer:         rcfg.Tracer,
		Logger:         rcfg.Log,
		SweepInterval:  sweep,
		TombstoneTTL:   tombTTL,
		SampleInterval: sample,
	})
	if err != nil {
		return err
	}
	rt.Start()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	st := rt.Status()
	fmt.Printf("cluster router on %s: %d nodes, R=%d, read quorum %d, write quorum %d\n",
		ln.Addr(), len(nodes), st.Replicas, st.ReadQuorum, st.WriteQuorum)
	fmt.Println("endpoints: /v1/... /healthz /readyz /statz /clusterz /metricz /tracez /fleetz /alertz /eventz /incidentz")

	srv := &http.Server{Handler: rt}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("shutting down cluster, draining router...")
	// Order matters: the router first refuses new work (readyz 503,
	// /v1 shed with Retry-After) and waits out its background read
	// finishers and hint drains, then the front door closes, then the
	// nodes go down — so no shard dies under a request the router still
	// owns.
	rt.Close()
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("router shutdown: %w", err)
	}
	for _, s := range nodeSrvs {
		if err := s.Shutdown(dctx); err != nil {
			return fmt.Errorf("node shutdown: %w", err)
		}
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// cmdCluster fetches and pretty-prints a router's /clusterz document —
// membership health, quorum shape, handoff backlog, and the accounting
// counters whose invariants the soak enforces.
func cmdCluster(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	base := fs.String("base", "http://localhost:8080", "cluster router URL")
	raw := fs.Bool("json", false, "print the raw /clusterz JSON instead of the summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, *base+"/clusterz", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("clusterz: %s", resp.Status)
	}
	var st cluster.ClusterStatus
	if *raw {
		var pretty json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&pretty); err != nil {
			return err
		}
		out, err := json.MarshalIndent(pretty, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	printClusterStatus(os.Stdout, st)
	down := 0
	for _, m := range st.Members {
		if !m.Alive {
			down++
		}
	}
	if down > 0 {
		return fmt.Errorf("%d of %d members down", down, len(st.Members))
	}
	return nil
}

func printClusterStatus(w *os.File, st cluster.ClusterStatus) {
	fmt.Fprintf(w, "cluster: %d members, R=%d, read quorum %d, write quorum %d, %d vnodes/node\n",
		len(st.Members), st.Replicas, st.ReadQuorum, st.WriteQuorum, st.VNodes)
	for _, m := range st.Members {
		state := "up"
		if !m.Alive {
			state = "DOWN"
		}
		fmt.Fprintf(w, "  %-10s %-28s %-5s", m.Name, m.Base, state)
		if m.Strikes > 0 {
			fmt.Fprintf(w, " strikes=%d", m.Strikes)
		}
		if pending := st.HintsByNode[m.Name]; pending > 0 {
			fmt.Fprintf(w, " hints_pending=%d", pending)
		}
		if m.LastError != "" && !m.Alive {
			fmt.Fprintf(w, " last_error=%q", m.LastError)
		}
		fmt.Fprintln(w)
	}
	s := st.Stats
	fmt.Fprintf(w, "requests: routed=%d served=%d shed=%d errored=%d (reads=%d writes=%d)\n",
		s.Routed, s.Served, s.Shed, s.Errored, s.Reads, s.Writes)
	fmt.Fprintf(w, "repair:   scheduled=%d done=%d skipped=%d dropped=%d stale_seen=%d integrity_failures=%d\n",
		s.RepairsScheduled, s.RepairsDone, s.RepairsSkipped, s.RepairsDropped,
		s.StaleReplicas, s.IntegrityFailures)
	fmt.Fprintf(w, "handoff:  queued=%d drained=%d superseded=%d dropped=%d recovered=%d pending=%d\n",
		s.HintsQueued, s.HintsDrained, s.HintsSuperseded, s.HintsDropped, s.HintsRecovered, s.HintsPending)
	fmt.Fprintf(w, "deletes:  tombstones written=%d reclaimed=%d pending=%d\n",
		s.TombstonesWritten, s.TombstonesReclaimed, s.TombstonesPending)
	for _, ts := range st.Tombstones {
		fmt.Fprintf(w, "    %s/%d/%d clock=%d age=%ds ttl=%ds\n",
			ts.Layer, ts.TX, ts.TY, ts.Clock, tombstoneAge(ts), ts.TTLSeconds)
	}
	fmt.Fprintf(w, "sweeps:   rounds=%d ranges_diffed=%d mismatches=%d keys_synced=%d repairs done=%d skipped=%d\n",
		s.AERounds, s.AERangesDiffed, s.AERangeMismatches, s.AEKeysSynced,
		s.AERepairsDone, s.AERepairsSkipped)
	if s.Draining {
		fmt.Fprintln(w, "router is draining")
	}
}

// tombstoneAge is a marker's age in seconds, clamped at zero for clock
// skew between the router and this client.
func tombstoneAge(ts cluster.TombstoneStatus) int64 {
	age := time.Now().Unix() - int64(ts.Created)
	if age < 0 {
		age = 0
	}
	return age
}
