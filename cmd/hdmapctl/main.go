// Command hdmapctl is the HD-map toolbox: generate synthetic worlds,
// build maps from simulated sensor drives, inspect/validate/diff maps,
// convert formats, and compute lane-level routes.
//
// Subcommands:
//
//	hdmapctl gen -kind highway -length 2000 -out map.hdmp
//	hdmapctl gen -kind grid -rows 4 -cols 4 -out city.hdmp
//	hdmapctl stats -in map.hdmp
//	hdmapctl validate -in map.hdmp
//	hdmapctl verify-map map.hdmp                                (constraint engine, -json for reports)
//	hdmapctl verify-map -tiles tiles/ -layer base               (verify a stitched tile layer)
//	hdmapctl convert -in map.hdmp -out map.json
//	hdmapctl diff -a old.hdmp -b new.hdmp
//	hdmapctl route -in city.hdmp -from <laneletID> -to <laneletID>
//	hdmapctl drive -kind highway -length 1000 -out built.hdmp   (LiDAR mapping run)
//	hdmapctl serve -dir tiles/ -addr :8080                      (tile distribution server)
//	hdmapctl serve -dir shards/ -cluster 5 -replicas 3          (sharded replicated cluster)
//	hdmapctl cluster -base http://localhost:8080                (cluster status)
//	hdmapctl top -base http://localhost:8080                    (live fleet dashboard)
//	hdmapctl fetch -base http://host:8080 -layer base -out region.hdmp  (vehicle-side pull)
//	hdmapctl loadtest -clients 40 -requests 100                 (overload drill + /statz)
//	hdmapctl ingest -in base.hdmp -store versions/ -synth 200   (supervised maintenance)
//	hdmapctl versions -store versions/
//	hdmapctl rollback -store versions/ -n 1 -tiles tiles/
//
// Long-running commands (serve, fetch) stop cleanly on SIGINT/SIGTERM:
// serve drains in-flight requests through http.Server.Shutdown, fetch
// cancels its context so retries stop immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hdmaps/internal/apps/planning"
	"hdmaps/internal/core"
	"hdmaps/internal/creation/lidarmap"
	"hdmaps/internal/mapeval"
	"hdmaps/internal/sensors"
	"hdmaps/internal/storage"
	"hdmaps/internal/worldgen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// Root context for every subcommand: first SIGINT/SIGTERM cancels,
	// a second one kills via the restored default handler.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "validate":
		err = cmdValidate(os.Args[2:])
	case "verify-map":
		err = cmdVerifyMap(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "route":
		err = cmdRoute(os.Args[2:])
	case "drive":
		err = cmdDrive(os.Args[2:])
	case "serve":
		err = cmdServe(ctx, os.Args[2:])
	case "fetch":
		err = cmdFetch(ctx, os.Args[2:])
	case "loadtest":
		err = cmdLoadtest(ctx, os.Args[2:])
	case "cluster":
		err = cmdCluster(ctx, os.Args[2:])
	case "top":
		err = cmdTop(ctx, os.Args[2:])
	case "incidents":
		err = cmdIncidents(ctx, os.Args[2:])
	case "ingest":
		err = cmdIngest(os.Args[2:])
	case "versions":
		err = cmdVersions(os.Args[2:])
	case "rollback":
		err = cmdRollback(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `hdmapctl — HD map toolbox

subcommands:
  gen       generate a synthetic world map (-kind highway|grid)
  stats     print map statistics
  validate  check structural invariants
  verify-map
            run the reference-free constraint engine (geometric,
            topological, semantic rules) over a map file or a stitched
            tile layer; -json for machine-readable reports, -rules to
            list the rule catalog; exits non-zero iff Error-severity
            violations exist
  convert   convert between binary (.hdmp) and JSON (.json)
  diff      geometric diff of two maps
  route     lane-level route between two lanelets
  drive     run the LiDAR mapping pipeline over a generated world
  serve     serve a tile directory over HTTP with overload protection
            (admission control, per-client rate limits, hot-tile cache,
            request coalescing; graceful drain on SIGINT); exposes
            /statz and /metricz, plus pprof via -pprof and structured
            logs via -log-level. With -cluster N -replicas R it boots N
            sharded nodes behind a consistent-hash router with quorum
            reads, read-repair, and hinted handoff (/clusterz)
  cluster   print a running cluster router's /clusterz status (members,
            quorum shape, repair and handoff accounting)
  top       live terminal dashboard over a router's /fleetz: per-node
            QPS, p99, shed/error rates, hints, tombstones, active SLO
            burn-rate alerts, and the tail of the cluster event journal
            (-once for a single snapshot)
  incidents print a router's /incidentz table: each incident's alert
            arc, the journal events in its causal window, and its
            exemplar trace (-state open|resolved, -json for raw)
  fetch     pull a tile region from a server and stitch it to one map
  loadtest  stampede a tile server with a zipfian closed-loop fleet and
            print its latency histogram and /statz snapshot (self-hosts
            a server when -base is empty)
  ingest    run supervised map maintenance into a version store
  versions  list a version store's commit log
  rollback  restore a previous map version (and republish its tiles)`)
}

func loadMap(path string) (*core.Map, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".json") {
		return storage.DecodeJSON(data)
	}
	return storage.DecodeBinary(data)
}

func saveMap(m *core.Map, path string) error {
	var data []byte
	var err error
	if strings.HasSuffix(path, ".json") {
		data, err = storage.EncodeJSON(m)
		if err != nil {
			return err
		}
	} else {
		data = storage.EncodeBinary(m)
	}
	return os.WriteFile(path, data, 0o644)
}

func generate(kind string, length float64, rows, cols, lanes int, seed int64) (*worldgen.World, error) {
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case "highway":
		hw, err := worldgen.GenerateHighway(worldgen.HighwayParams{
			LengthM: length, Lanes: lanes, SignSpacing: 150,
			CurveAmp: 25, CurvePeriod: 1500, HillAmp: 30,
		}, rng)
		if err != nil {
			return nil, err
		}
		return hw.World, nil
	case "grid":
		g, err := worldgen.GenerateGrid(worldgen.GridParams{
			Rows: rows, Cols: cols, Lanes: lanes, TrafficLights: true,
		}, rng)
		if err != nil {
			return nil, err
		}
		return g.World, nil
	default:
		return nil, fmt.Errorf("unknown kind %q (want highway|grid)", kind)
	}
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "highway", "highway|grid")
	length := fs.Float64("length", 2000, "highway length, m")
	rows := fs.Int("rows", 4, "grid rows")
	cols := fs.Int("cols", 4, "grid cols")
	lanes := fs.Int("lanes", 2, "lanes per direction")
	seed := fs.Int64("seed", 42, "seed")
	out := fs.String("out", "map.hdmp", "output path (.hdmp or .json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := generate(*kind, *length, *rows, *cols, *lanes, *seed)
	if err != nil {
		return err
	}
	if err := saveMap(w.Map, *out); err != nil {
		return err
	}
	s := w.Map.ComputeStats()
	fmt.Printf("wrote %s: %d lanelets, %.1f lane-km, %d points, %d lines\n",
		*out, s.Lanelets, s.TotalLaneKm, s.Points, s.Lines)
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "", "input map")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := loadMap(*in)
	if err != nil {
		return err
	}
	s := m.ComputeStats()
	fmt.Printf("name:            %s\n", m.Name)
	fmt.Printf("points:          %d\n", s.Points)
	fmt.Printf("lines:           %d\n", s.Lines)
	fmt.Printf("areas:           %d\n", s.Areas)
	fmt.Printf("lanelets:        %d\n", s.Lanelets)
	fmt.Printf("bundles:         %d\n", s.Bundles)
	fmt.Printf("regulatory:      %d\n", s.Regs)
	fmt.Printf("lane km:         %.2f\n", s.TotalLaneKm)
	fmt.Printf("boundary km:     %.2f\n", s.TotalBoundaryKm)
	fmt.Printf("mean confidence: %.3f\n", s.MeanConfidence)
	fmt.Printf("extent:          %.0fx%.0f m\n",
		s.Extent.Max.X-s.Extent.Min.X, s.Extent.Max.Y-s.Extent.Min.Y)
	return nil
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	in := fs.String("in", "", "input map")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := loadMap(*in)
	if err != nil {
		return err
	}
	issues := m.Validate()
	if len(issues) == 0 {
		fmt.Println("ok: map is structurally consistent")
		return nil
	}
	for _, iss := range issues {
		fmt.Println(iss)
	}
	return fmt.Errorf("%d issues", len(issues))
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "input map")
	out := fs.String("out", "", "output map")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := loadMap(*in)
	if err != nil {
		return err
	}
	if err := saveMap(m, *out); err != nil {
		return err
	}
	fmt.Printf("converted %s -> %s\n", *in, *out)
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	a := fs.String("a", "", "base map")
	b := fs.String("b", "", "other map")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ma, err := loadMap(*a)
	if err != nil {
		return err
	}
	mb, err := loadMap(*b)
	if err != nil {
		return err
	}
	changes := core.Diff(ma, mb, core.DefaultDiffOptions())
	for _, c := range changes {
		fmt.Printf("%-8s %-14s id=%d at %s", c.Kind, c.Class, c.ID, c.Where)
		if c.Kind == core.ChangeMoved {
			fmt.Printf(" (%.2f m)", c.Displacement)
		}
		fmt.Println()
	}
	fmt.Printf("%d changes\n", len(changes))
	return nil
}

func cmdRoute(args []string) error {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	in := fs.String("in", "", "input map")
	from := fs.Int64("from", 0, "start lanelet id")
	to := fs.Int64("to", 0, "goal lanelet id")
	algo := fs.String("algo", "bhps", "dijkstra|astar|bfs|bhps")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := loadMap(*in)
	if err != nil {
		return err
	}
	g, err := m.BuildRouteGraph()
	if err != nil {
		return err
	}
	var r *planning.Route
	switch *algo {
	case "dijkstra":
		r, err = planning.Dijkstra(g, core.ID(*from), core.ID(*to))
	case "astar":
		r, err = planning.AStar(g, m, core.ID(*from), core.ID(*to))
	case "bfs":
		r, err = planning.BFS(g, core.ID(*from), core.ID(*to))
	default:
		r, err = planning.BHPS(g, core.ID(*from), core.ID(*to))
	}
	if err != nil {
		return err
	}
	fmt.Printf("route: %d lanelets, cost %.1f m-eq, %d lane changes, %d expansions\n",
		len(r.Lanelets), r.Cost, r.LaneChanges(g), r.Expanded)
	for _, id := range r.Lanelets {
		fmt.Printf("  %d\n", id)
	}
	return nil
}

func cmdDrive(args []string) error {
	fs := flag.NewFlagSet("drive", flag.ExitOnError)
	length := fs.Float64("length", 1000, "highway length, m")
	lanes := fs.Int("lanes", 2, "lanes")
	grade := fs.String("gps", "rtk", "gps grade: consumer|dgps|rtk")
	seed := fs.Int64("seed", 42, "seed")
	out := fs.String("out", "built.hdmp", "output path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	hw, err := worldgen.GenerateHighway(worldgen.HighwayParams{
		LengthM: *length, Lanes: *lanes, SignSpacing: 120,
	}, rng)
	if err != nil {
		return err
	}
	route, err := hw.RoutePolyline(hw.LaneChains[0])
	if err != nil {
		return err
	}
	var g sensors.GPSGrade
	switch *grade {
	case "consumer":
		g = sensors.GPSConsumer
	case "dgps":
		g = sensors.GPSDGPS
	default:
		g = sensors.GPSRTK
	}
	res, err := lidarmap.BuildFromRoute(hw.World, route, lidarmap.Config{GPSGrade: g}, rng)
	if err != nil {
		return err
	}
	if err := saveMap(res.Map, *out); err != nil {
		return err
	}
	te := mapeval.EvalTrajectory(res.PoseErrors)
	lr := mapeval.EvalLines(hw.Map, res.Map, core.ClassLaneBoundary, 3)
	fmt.Printf("drove %.0f m, %d scans, %d points\n", route.Length(), res.Scans, res.Points)
	fmt.Printf("pose error: mean %.3f m, p95 %.3f m\n", te.Mean, te.P95)
	fmt.Printf("boundary error vs truth: %.3f m (completeness %.0f%%)\n",
		lr.MeanError, lr.Completeness*100)
	fmt.Printf("wrote %s\n", *out)
	return nil
}

func cmdFetch(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("fetch", flag.ExitOnError)
	base := fs.String("base", "http://localhost:8080", "tile server URL")
	layer := fs.String("layer", "base", "layer to pull")
	tx0 := fs.Int("tx0", -1000, "min tile x")
	ty0 := fs.Int("ty0", -1000, "min tile y")
	tx1 := fs.Int("tx1", 1000, "max tile x")
	ty1 := fs.Int("ty1", 1000, "max tile y")
	out := fs.String("out", "region.hdmp", "output path (.hdmp or .json)")
	timeout := fs.Duration("timeout", 30*time.Second, "overall fetch deadline")
	attempts := fs.Int("attempts", 4, "per-request attempts (1 disables retries)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()
	client := &storage.Client{
		Base:  *base,
		Retry: storage.RetryPolicy{MaxAttempts: *attempts},
	}
	m, health, err := client.FetchRegion(ctx, *layer, int32(*tx0), int32(*ty0), int32(*tx1), int32(*ty1), "region")
	if err != nil {
		return err
	}
	if err := saveMap(m, *out); err != nil {
		return err
	}
	status := "fresh"
	if health.Degraded {
		status = "DEGRADED"
	}
	fmt.Printf("fetched %s region [%d,%d]x[%d,%d]: %d tiles (%d fresh, %d stale, %d missing) — %s\n",
		*layer, *tx0, *ty0, *tx1, *ty1, health.Requested, health.Fresh, health.Stale, len(health.Missing), status)
	fmt.Printf("wrote %s (%d elements)\n", *out, m.NumElements())
	return nil
}
