// Serve-side commands: the overload-protected tile server and the load
// drill that stampedes one.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"strings"
	"time"

	"hdmaps/internal/chaos"
	"hdmaps/internal/obs"
	"hdmaps/internal/resilience"
	"hdmaps/internal/storage"
	"hdmaps/internal/worldgen"
)

// serveFlags registers the shared overload-policy knobs and returns a
// closure resolving them to a resilience.Config.
func serveFlags(fs *flag.FlagSet) func() resilience.Config {
	maxConcurrent := fs.Int64("max-concurrent", 64, "admission capacity in weight units (writes weigh 4)")
	maxWait := fs.Duration("max-wait", 100*time.Millisecond, "max admission queue wait before shedding")
	reqTimeout := fs.Duration("request-timeout", 5*time.Second, "per-request deadline")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint on shed responses")
	rate := fs.Float64("rate", 0, "per-client sustained requests/s (0 = unlimited)")
	burst := fs.Int("burst", 0, "per-client burst allowance (0 = ceil(rate))")
	cache := fs.Int("cache", 1024, "hot-tile response cache size (-1 disables)")
	traceSlow := fs.Duration("trace-slow", 250*time.Millisecond, "tail-sampling bar: requests slower than this (or shed/errored) keep their span tree on /tracez (0 disables tracing)")
	traceRing := fs.Int("trace-ring", 64, "flight-recorder capacity: the last N sampled traces are kept for /tracez")
	return func() resilience.Config {
		cfg := resilience.Config{
			MaxConcurrent:  *maxConcurrent,
			MaxWait:        *maxWait,
			RequestTimeout: *reqTimeout,
			RetryAfter:     *retryAfter,
			RatePerClient:  *rate,
			RateBurst:      *burst,
			CacheSize:      *cache,
		}
		if *traceSlow > 0 {
			cfg.Tracer = obs.NewTracer(obs.TracerConfig{
				SlowThreshold: *traceSlow,
				Capacity:      *traceRing,
				Metrics:       obs.Default(),
			})
		}
		return cfg
	}
}

func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	dir := fs.String("dir", "tiles", "tile directory (DirStore root)")
	addr := fs.String("addr", ":8080", "listen address")
	drain := fs.Duration("drain", 5*time.Second, "max time to drain in-flight requests on shutdown")
	logLevel := fs.String("log-level", "warn", "structured log level: debug, info, warn, error, off")
	pprofAddr := fs.String("pprof", "", "debug listen address for pprof + expvar (e.g. localhost:6060; empty disables)")
	clusterN := fs.Int("cluster", 0, "boot N sharded tile nodes behind a replicating router (0/1 = single server)")
	replicas := fs.Int("replicas", 3, "with -cluster: replicas per tile (R)")
	sweep := fs.Duration("sweep", 0, "with -cluster: anti-entropy sweep interval (0 = 30s default, negative disables)")
	tombTTL := fs.Duration("tombstone-ttl", 0, "with -cluster: delete-marker retention before GC (0 = 24h default)")
	sample := fs.Duration("sample", 0, "with -cluster: observability sampling/federation/SLO cadence (0 = 5s default, negative disables /fleetz and /alertz)")
	cfg := serveFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rcfg := cfg()
	rcfg.Metrics = obs.Default()
	if logger, err := serveLogger(*logLevel); err != nil {
		return err
	} else {
		rcfg.Log = logger
	}
	if *clusterN > 1 {
		if *pprofAddr != "" {
			if err := startDebugServer(*pprofAddr, obs.Default(), rcfg.Tracer); err != nil {
				return err
			}
		}
		return serveCluster(ctx, *dir, *addr, *clusterN, *replicas, rcfg, *drain, *sweep, *tombTTL, *sample)
	}
	store, err := storage.NewDirStore(*dir)
	if err != nil {
		return err
	}
	handler := resilience.NewHandler(storage.NewTileServer(store), rcfg)
	if *pprofAddr != "" {
		if err := startDebugServer(*pprofAddr, handler.Metrics(), rcfg.Tracer); err != nil {
			return err
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving tiles from %s on %s (/healthz /readyz /statz /metricz /tracez)\n", *dir, ln.Addr())
	return runServe(ctx, ln, handler, *drain)
}

// serveLogger builds the server's structured logger at the requested
// level; "off" discards everything.
func serveLogger(level string) (*slog.Logger, error) {
	switch strings.ToLower(level) {
	case "off", "none":
		return obs.Nop(), nil
	case "debug":
		return obs.NewLogger(os.Stderr, "serve", slog.LevelDebug), nil
	case "info":
		return obs.NewLogger(os.Stderr, "serve", slog.LevelInfo), nil
	case "warn", "":
		return obs.NewLogger(os.Stderr, "serve", slog.LevelWarn), nil
	case "error":
		return obs.NewLogger(os.Stderr, "serve", slog.LevelError), nil
	default:
		return nil, fmt.Errorf("unknown log level %q", level)
	}
}

// startDebugServer exposes pprof, expvar, /metricz, and /tracez on a
// separate listener, so profiling endpoints never share a port (or the
// overload pipeline's admission policy) with map traffic.
func startDebugServer(addr string, reg *obs.Registry, tracer *obs.Tracer) error {
	reg.PublishExpvar("hdmaps")
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metricz", obs.MetricsHandler(reg))
	mux.Handle("/tracez", obs.TracezHandler(tracer))
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		// expvar's handler is package-private; re-serve its default mux
		// entry by delegating to the default ServeMux where expvar
		// registers itself on import... instead, serve the registry
		// directly: /metricz carries the same data.
		http.Redirect(w, r, "/metricz", http.StatusTemporaryRedirect)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof listener: %w", err)
	}
	fmt.Printf("debug server on http://%s (/debug/pprof /metricz /tracez)\n", ln.Addr())
	go func() { _ = http.Serve(ln, mux) }()
	return nil
}

// runServe serves handler on ln until ctx is cancelled, then drains:
// the handler stops admitting (readyz flips to 503, late requests are
// shed with Retry-After), in-flight requests finish, and the HTTP
// server shuts down — all within the drain deadline. A nil return
// means zero in-flight requests were dropped.
func runServe(ctx context.Context, ln net.Listener, handler *resilience.Handler, drain time.Duration) error {
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("shutting down, draining in-flight requests...")
	// Stop admitting at the handler first so clients get an orderly
	// 503 + Retry-After instead of a refused connection.
	handler.StartDrain()
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	// Shutdown returned, so every connection closed cleanly; Drain now
	// certifies the handler-level invariant (zero requests in flight).
	if err := handler.Drain(dctx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func cmdLoadtest(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	base := fs.String("base", "", "target server URL (empty: self-host a generated city in-process)")
	clients := fs.Int("clients", 40, "concurrent closed-loop clients")
	requests := fs.Int("requests", 100, "requests per client")
	seed := fs.Int64("seed", 42, "load plan seed")
	burstEvery := fs.Int("burst-every", 10, "every Nth request is a thundering-herd burst (0 disables)")
	layer := fs.String("layer", "base", "layer whose tiles are stampeded")
	cfg := serveFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	target := *base
	if target == "" {
		// Self-host: generate a city, tile it, and serve it behind the
		// same overload pipeline `hdmapctl serve` uses.
		g, err := worldgen.GenerateGrid(worldgen.GridParams{
			Rows: 3, Cols: 3, Lanes: 2, TrafficLights: true,
		}, rand.New(rand.NewSource(*seed)))
		if err != nil {
			return err
		}
		store := storage.NewMemStore()
		n, err := storage.Tiler{TileSize: 200}.SaveMap(store, g.Map, *layer)
		if err != nil {
			return err
		}
		handler := resilience.NewHandler(storage.NewTileServer(store), cfg())
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: handler}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		target = "http://" + ln.Addr().String()
		fmt.Printf("self-hosted %d tiles at %s\n", n, target)
	}

	// The tile list is the popularity ranking: index 0 is the hot tile.
	var listed []struct {
		TX int32 `json:"tx"`
		TY int32 `json:"ty"`
	}
	if err := getTileList(ctx, target, *layer, &listed); err != nil {
		return err
	}
	if len(listed) == 0 {
		return fmt.Errorf("layer %q has no tiles to stampede", *layer)
	}
	paths := make([]string, len(listed))
	for i, k := range listed {
		paths[i] = fmt.Sprintf("/v1/tiles/%s/%d/%d", *layer, k.TX, k.TY)
	}

	start := time.Now()
	res, err := chaos.RunLoad(ctx, chaos.LoadConfig{
		Seed:              *seed,
		Clients:           *clients,
		RequestsPerClient: *requests,
		Paths:             paths,
		BurstEvery:        *burstEvery,
		Base:              target,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("load: %d clients x %d requests over %d tiles in %v (%.0f req/s)\n",
		*clients, *requests, len(paths), elapsed.Round(time.Millisecond),
		float64(res.Submitted)/elapsed.Seconds())
	fmt.Printf("outcomes: ok=%d shed=%d errored=%d (shed-without-retry-after=%d, hot-tile ok=%d)\n",
		res.OK, res.Shed, res.Errored, res.ShedMissingRetryAfter, res.HotOK)
	fmt.Printf("latency: %s\n", res.Latency.Snapshot().Summary())

	resp, err := http.Get(target + "/statz")
	if err != nil {
		return fmt.Errorf("statz: %w", err)
	}
	defer resp.Body.Close()
	snap, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("statz: %w", err)
	}
	fmt.Printf("server /statz: %s", snap)
	printSlowTraces(target)
	return nil
}

// printSlowTraces surfaces the slowest sampled requests of a drill: the
// latency histogram's bucket exemplars carry the trace IDs tail
// sampling kept, so the summary can point straight at the span
// waterfalls of the worst requests. Best-effort — a target without
// /metricz (or without a tracer) just prints nothing.
func printSlowTraces(target string) {
	resp, err := http.Get(target + "/metricz")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var snap obs.RegistrySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return
	}
	// Keep each trace's worst observed value: the same trace can be the
	// exemplar of several series (e.g. first as 2xx, later shed).
	worst := map[string]float64{}
	for name, h := range snap.Histograms {
		if !strings.HasPrefix(name, "resilience.http.latency_seconds.") {
			continue
		}
		exs := make([]*obs.Exemplar, 0, len(h.Buckets)+1)
		for _, b := range h.Buckets {
			exs = append(exs, b.Exemplar)
		}
		exs = append(exs, h.OverflowExemplar)
		for _, ex := range exs {
			if ex == nil || ex.TraceID == "" {
				continue
			}
			if v, ok := worst[ex.TraceID]; !ok || ex.Value > v {
				worst[ex.TraceID] = ex.Value
			}
		}
	}
	if len(worst) == 0 {
		return
	}
	type slow struct {
		id  string
		val float64
	}
	top := make([]slow, 0, len(worst))
	for id, v := range worst {
		top = append(top, slow{id, v})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].val > top[j].val })
	if len(top) > 5 {
		top = top[:5]
	}
	fmt.Println("slowest sampled requests (latency exemplars; waterfall at /tracez?trace=<id>&format=text):")
	for _, s := range top {
		fmt.Printf("  %9.1f ms  %s\n", s.val*1000, s.id)
	}
}

// getTileList pulls a layer's tile index.
func getTileList(ctx context.Context, base, layer string, out interface{}) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/tiles/"+layer, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("list tiles: %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
