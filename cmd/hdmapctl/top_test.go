package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"hdmaps/internal/cluster"
	"hdmaps/internal/obs/slo"
	"hdmaps/internal/resilience"
)

func TestRenderFleet(t *testing.T) {
	doc := &cluster.FleetStatus{
		GeneratedAt:    time.Unix(1700000000, 0).UTC(),
		SampleInterval: "5s",
		MaxNodes:       16,
		Nodes: []cluster.FleetNodeStatus{
			{Name: "router", Role: "router", Alive: true,
				Summary: cluster.FleetSummary{QPS: 120.5, P99Seconds: 0.042, ShedPerSec: 1.5, HintsPending: 3, TombstonesPending: 2}},
			{Name: "node0", Role: "shard", Alive: true,
				Summary: cluster.FleetSummary{QPS: 40, P99Seconds: 0.010}},
			{Name: "node1", Role: "shard", Alive: false, Stale: true, LastError: "node down"},
			{Name: "node9", Role: "overflow", Alive: true, CollapsedInto: "other"},
		},
		Alerts: []slo.Alert{
			{Name: "slo.read.latency_p99", State: "ok"},
			{Name: "slo.read.availability", State: "critical", BurnFast: 50.2, BurnSlow: 31.7, ExemplarTraceID: "deadbeefdeadbeef"},
		},
	}
	out := renderFleet(doc, "http://localhost:8080")

	for _, want := range []string{
		"NODE", "QPS", "P99(ms)", "HINTS", "TOMBS",
		"router", "120.5", "42.0", // p99 rendered in ms
		"node1", "DOWN",
		"node9", "-> other", // collapsed members point at the pseudo-node
		"CRITICAL slo.read.availability",
		"burn fast=50.2 slow=31.7",
		"trace=deadbeefdeadbeef",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "OK slo.read.latency_p99") {
		t.Errorf("ok objectives should not be listed as alerts:\n%s", out)
	}

	// All clear: the ok set is summarised, not itemised.
	doc.Alerts = []slo.Alert{{Name: "slo.read.availability", State: "ok"}}
	out = renderFleet(doc, "b")
	if !strings.Contains(out, "all clear (1 objectives ok)") {
		t.Errorf("healthy render: %s", out)
	}
}

// TestTopEndToEnd boots `serve -cluster 3`, waits for federation to
// commit a round, and runs `top -once` against the live router — the
// dashboard must render every node of the multi-node view.
func TestTopEndToEnd(t *testing.T) {
	dir := t.TempDir()
	addr := freePort(t)
	base := "http://" + addr

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() {
		served <- serveCluster(ctx, dir, addr, 3, 3, resilience.Config{CacheSize: -1},
			5*time.Second, -1, time.Minute, 50*time.Millisecond)
	}()
	waitReady(t, base)

	// Drive a little traffic so the federated rates have something to
	// report, then wait until every shard has a committed scrape.
	for i := 0; i < 10; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/v1/tiles/base/%d/0", base, i))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/fleetz?points=1")
		if err != nil {
			t.Fatal(err)
		}
		var doc cluster.FleetStatus
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		committed := 0
		for _, n := range doc.Nodes {
			if n.Role == "shard" && n.Scrapes > 0 && !n.Stale {
				committed++
			}
		}
		if len(doc.Nodes) == 4 && committed == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("federation never committed all shards: %+v", doc.Nodes)
		}
		time.Sleep(25 * time.Millisecond)
	}

	out := captureStdout(t, func() {
		if err := cmdTop(ctx, []string{"-base", base, "-once"}); err != nil {
			t.Fatalf("top -once: %v", err)
		}
	})
	for _, want := range []string{"router", "node0", "node1", "node2", "SLO ALERTS", "EVENTS"} {
		if !strings.Contains(out, want) {
			t.Errorf("top output missing %q:\n%s", want, out)
		}
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serveCluster: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveCluster did not return after cancellation")
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and
// returns everything it printed.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	fn()
	os.Stdout = orig
	_ = w.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}
