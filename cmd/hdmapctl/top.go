// `hdmapctl top` — a live terminal dashboard over a cluster router's
// /fleetz document: one row per node (QPS, tail latency, shed and
// error rates, parked hints, pending tombstones) plus the active SLO
// alert set and the tail of the cluster event journal (/eventz),
// refreshed in place.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"hdmaps/internal/cluster"
	"hdmaps/internal/obs/eventlog"
)

func cmdTop(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	base := fs.String("base", "http://localhost:8080", "cluster router URL")
	interval := fs.Duration("interval", 2*time.Second, "refresh cadence")
	once := fs.Bool("once", false, "print one snapshot and exit (no screen control)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := &http.Client{Timeout: *interval + 5*time.Second}
	fetch := func() (*cluster.FleetStatus, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, *base+"/fleetz?points=2", nil)
		if err != nil {
			return nil, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
			return nil, fmt.Errorf("/fleetz: %s: %s", resp.Status, strings.TrimSpace(string(body)))
		}
		var doc cluster.FleetStatus
		if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&doc); err != nil {
			return nil, err
		}
		return &doc, nil
	}
	// The events pane is best-effort: a router without the journal
	// (plane disabled, older build) just loses the pane, not the
	// dashboard.
	fetchEvents := func() *eventlog.Status {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, *base+"/eventz?max=8", nil)
		if err != nil {
			return nil
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			return nil
		}
		var doc eventlog.Status
		if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&doc); err != nil {
			return nil
		}
		return &doc
	}

	if *once {
		doc, err := fetch()
		if err != nil {
			return err
		}
		fmt.Print(renderFleet(doc, *base))
		fmt.Print(renderEvents(fetchEvents()))
		return nil
	}

	t := time.NewTicker(*interval)
	defer t.Stop()
	for {
		doc, err := fetch()
		// Home the cursor and clear below instead of wiping the whole
		// scrollback: the dashboard repaints in place.
		fmt.Print("\x1b[H\x1b[2J")
		if err != nil {
			fmt.Printf("hdmapctl top — %s\n\n  unreachable: %v\n", *base, err)
		} else {
			fmt.Print(renderFleet(doc, *base))
			fmt.Print(renderEvents(fetchEvents()))
		}
		select {
		case <-ctx.Done():
			fmt.Println()
			return nil
		case <-t.C:
		}
	}
}

// renderFleet formats one /fleetz document as the dashboard screen.
// Pure (no I/O, no clock) so tests can assert on exact output.
func renderFleet(doc *cluster.FleetStatus, base string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "hdmapctl top — %s  (interval %s, generated %s)\n\n",
		base, doc.SampleInterval, doc.GeneratedAt.Format(time.TimeOnly))
	fmt.Fprintf(&b, "  %-10s %-9s %-6s %9s %9s %9s %9s %7s %7s\n",
		"NODE", "ROLE", "STATE", "QPS", "P99(ms)", "SHED/s", "ERR/s", "HINTS", "TOMBS")
	for _, n := range doc.Nodes {
		state := "up"
		switch {
		case !n.Alive:
			state = "DOWN"
		case n.Stale:
			state = "stale"
		}
		if n.CollapsedInto != "" {
			// Collapsed members have no series of their own; point at the
			// pseudo-node carrying them instead of printing zeros as data.
			fmt.Fprintf(&b, "  %-10s %-9s %-6s %s\n",
				n.Name, n.Role, state, "-> "+n.CollapsedInto)
			continue
		}
		s := n.Summary
		fmt.Fprintf(&b, "  %-10s %-9s %-6s %9.1f %9.1f %9.1f %9.1f %7d %7d\n",
			n.Name, n.Role, state, s.QPS, s.P99Seconds*1000, s.ShedPerSec, s.ErrorsPerSec,
			s.HintsPending, s.TombstonesPending)
	}

	active, quiet := 0, 0
	sorted := make([]int, 0, len(doc.Alerts))
	for i := range doc.Alerts {
		sorted = append(sorted, i)
	}
	sort.Slice(sorted, func(i, j int) bool {
		ai, aj := doc.Alerts[sorted[i]], doc.Alerts[sorted[j]]
		if ai.State != aj.State {
			// critical first, then warning, then ok.
			rank := map[string]int{"critical": 0, "warning": 1, "ok": 2}
			return rank[ai.State] < rank[aj.State]
		}
		return ai.Name < aj.Name
	})
	b.WriteString("\n  SLO ALERTS\n")
	for _, i := range sorted {
		a := doc.Alerts[i]
		if a.State == "ok" {
			quiet++
			continue
		}
		active++
		fmt.Fprintf(&b, "  %-8s %-28s burn fast=%.1f slow=%.1f", strings.ToUpper(a.State), a.Name, a.BurnFast, a.BurnSlow)
		if a.ExemplarTraceID != "" {
			fmt.Fprintf(&b, "  trace=%s", a.ExemplarTraceID)
		}
		b.WriteByte('\n')
	}
	if active == 0 {
		fmt.Fprintf(&b, "  all clear (%d objectives ok)\n", quiet)
	}
	return b.String()
}

// renderEvents formats the journal tail as the dashboard's EVENTS
// pane, newest last (reading order matches the scrollback). A nil
// document (journal unavailable) renders nothing. Pure, like
// renderFleet, so tests can assert on exact output.
func renderEvents(doc *eventlog.Status) string {
	if doc == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString("\n  EVENTS\n")
	if len(doc.Events) == 0 {
		b.WriteString("  (journal empty)\n")
		return b.String()
	}
	for _, e := range doc.Events {
		fmt.Fprintf(&b, "  %s  %-18s %-10s %s", e.At.Format(time.TimeOnly), e.Type, e.Node, e.Detail)
		if e.TraceID != "" {
			fmt.Fprintf(&b, "  trace=%s", e.TraceID)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
