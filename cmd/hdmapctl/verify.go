package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"hdmaps/internal/core"
	"hdmaps/internal/mapverify"
	"hdmaps/internal/storage"
)

// cmdVerifyMap runs the reference-free constraint engine over a map
// file or a stitched tile layer and reports every violation. The exit
// status mirrors the commit gate: non-zero exactly when Error-severity
// findings exist (Warns alone exit zero), so `hdmapctl verify-map` can
// gate deployment scripts the same way the ingest gate blocks commits.
func cmdVerifyMap(args []string) error {
	fs := flag.NewFlagSet("verify-map", flag.ExitOnError)
	in := fs.String("in", "", "input map (.hdmp or .json); may also be the first positional arg")
	tiles := fs.String("tiles", "", "tile store directory (stitches -layer instead of reading -in)")
	layer := fs.String("layer", "base", "layer to stitch from -tiles")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	maxViol := fs.Int("max-violations", 0, "violation list cap (0 = engine default)")
	disable := fs.String("disable", "", "comma-separated rule names to skip (see 'rules' below)")
	listRules := fs.Bool("rules", false, "list every rule name and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listRules {
		for _, r := range mapverify.RuleNames() {
			fmt.Println(r)
		}
		return nil
	}
	if *in == "" && fs.NArg() > 0 {
		*in = fs.Arg(0)
	}

	var m *core.Map
	var src string
	var err error
	switch {
	case *tiles != "":
		store, serr := storage.NewDirStore(*tiles)
		if serr != nil {
			return serr
		}
		m, err = storage.Tiler{}.LoadMap(store, *layer, *layer)
		src = fmt.Sprintf("%s (layer %s)", *tiles, *layer)
	case *in != "":
		m, err = loadMap(*in)
		src = *in
	default:
		return fmt.Errorf("verify-map: need -in <map>, a positional path, or -tiles <dir>")
	}
	if err != nil {
		return err
	}

	cfg := mapverify.Config{MaxViolations: *maxViol}
	if *disable != "" {
		for _, r := range strings.Split(*disable, ",") {
			if r = strings.TrimSpace(r); r != "" {
				cfg.Disable = append(cfg.Disable, r)
			}
		}
	}
	rep := mapverify.Verify(m, cfg)

	if *jsonOut {
		out := struct {
			Source     string          `json:"source"`
			Checked    int             `json:"checked"`
			Errors     int             `json:"errors"`
			Warnings   int             `json:"warnings"`
			Truncated  bool            `json:"truncated"`
			Clean      bool            `json:"clean"`
			Violations []jsonViolation `json:"violations"`
			ByRule     map[string]int  `json:"by_rule"`
		}{
			Source: src, Checked: rep.Checked,
			Errors: rep.Errors, Warnings: rep.Warnings,
			Truncated: rep.Truncated, Clean: rep.Clean(),
			Violations: make([]jsonViolation, 0, len(rep.Violations)),
			ByRule:     map[string]int{},
		}
		for _, v := range rep.Violations {
			out.Violations = append(out.Violations, jsonViolation{
				Rule: v.Rule, Severity: v.Severity.String(),
				Element: int64(v.ElementID), Detail: v.Detail,
			})
			out.ByRule[v.Rule]++
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		for _, v := range rep.Violations {
			fmt.Println(v)
		}
		if rep.Truncated {
			fmt.Printf("(violation list truncated; totals below are complete)\n")
		}
		if rep.Clean() && rep.Warnings == 0 {
			fmt.Printf("ok: %s — %d elements verified, no violations\n", src, rep.Checked)
		} else {
			fmt.Printf("%s: %d elements verified, %d errors, %d warnings\n",
				src, rep.Checked, rep.Errors, rep.Warnings)
		}
	}
	if !rep.Clean() {
		return fmt.Errorf("verify-map: %d error-severity violations", rep.Errors)
	}
	return nil
}

// jsonViolation is the stable JSON shape for one violation (severity
// rendered as a string, not the internal enum).
type jsonViolation struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	Element  int64  `json:"element"`
	Detail   string `json:"detail"`
}
