package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"hdmaps/internal/cluster"
	"hdmaps/internal/core"
	"hdmaps/internal/resilience"
	"hdmaps/internal/storage"
)

// freePort grabs an ephemeral loopback address for a server started by
// the code under test (which takes an address, not a listener).
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// TestServeClusterEndToEnd boots `hdmapctl serve -cluster 5 -replicas 3`
// the way main would, writes and reads a tile through the router,
// checks /clusterz, runs the `cluster` status subcommand against it,
// and verifies a clean drain persisted the tile on exactly R shard
// directories.
func TestServeClusterEndToEnd(t *testing.T) {
	dir := t.TempDir()
	addr := freePort(t)
	base := "http://" + addr

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() {
		// Sweeps disabled (negative interval) so counter assertions are
		// deterministic; a short tombstone TTL proves the flag plumbs.
		served <- serveCluster(ctx, dir, addr, 5, 3, resilience.Config{CacheSize: -1}, 5*time.Second, -1, time.Minute, 0)
	}()
	waitReady(t, base)

	m := core.NewMap("cluster-tile")
	m.Clock = 7
	data := storage.EncodeBinary(m)
	key := storage.TileKey{Layer: "base", TX: 3, TY: 4}
	path := fmt.Sprintf("%s/v1/tiles/%s/%d/%d", base, key.Layer, key.TX, key.TY)

	req, err := http.NewRequest(http.MethodPut, path, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(storage.ChecksumHeader, storage.Checksum(data))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PUT through router: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT status %d", resp.StatusCode)
	}

	cl := &storage.Client{Endpoints: []string{base}}
	got, err := cl.GetTile(ctx, key)
	if err != nil {
		t.Fatalf("GET through router: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("tile bytes differ through the cluster round trip")
	}

	// Delete a second tile: the deletion must be visible as a pending
	// tombstone in the /clusterz ledger, not as a silent gap.
	keyDel := storage.TileKey{Layer: "base", TX: 5, TY: 6}
	delPath := fmt.Sprintf("%s/v1/tiles/%s/%d/%d", base, keyDel.Layer, keyDel.TX, keyDel.TY)
	req, err = http.NewRequest(http.MethodPut, delPath, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(storage.ChecksumHeader, storage.Checksum(data))
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT %s status %d", delPath, resp.StatusCode)
	}
	if req, err = http.NewRequest(http.MethodDelete, delPath, nil); err != nil {
		t.Fatal(err)
	}
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	if resp, err = http.Get(delPath); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after DELETE: %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(base + "/clusterz")
	if err != nil {
		t.Fatal(err)
	}
	var st cluster.ClusterStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Members) != 5 || st.Replicas != 3 || st.ReadQuorum != 2 {
		t.Fatalf("clusterz shape: %d members, R=%d, RQ=%d", len(st.Members), st.Replicas, st.ReadQuorum)
	}
	if st.Stats.TombstonesWritten != 1 || st.Stats.TombstonesPending != 1 {
		t.Errorf("clusterz tombstone counters: %+v", st.Stats)
	}
	if len(st.Tombstones) != 1 || st.Tombstones[0].Layer != keyDel.Layer ||
		st.Tombstones[0].TX != keyDel.TX || st.Tombstones[0].TY != keyDel.TY {
		t.Errorf("clusterz tombstone ledger: %+v", st.Tombstones)
	}
	for _, mem := range st.Members {
		if !mem.Alive {
			t.Errorf("member %s down in a healthy boot", mem.Name)
		}
	}

	// The status subcommand against the live router: healthy fleet means
	// a nil error (it reports down members as a failure).
	if err := cmdCluster(ctx, []string{"-base", base}); err != nil {
		t.Errorf("cluster subcommand: %v", err)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serveCluster: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveCluster did not return after cancellation")
	}

	// R=3 owners persisted the tile to their DirStores; the other two
	// shard directories must not have it. The deleted key must survive
	// the restart as a durable marker on its R owners, not as live data.
	holders, delHolders, markers := 0, 0, 0
	for i := 0; i < 5; i++ {
		store, err := storage.NewDirStore(fmt.Sprintf("%s/node%d", dir, i))
		if err != nil {
			t.Fatal(err)
		}
		stored, err := store.Get(key)
		switch {
		case err == nil:
			holders++
			if !bytes.Equal(stored, data) {
				t.Errorf("node%d holds a divergent replica", i)
			}
		case errors.Is(err, storage.ErrNoTile):
		default:
			t.Fatal(err)
		}
		if _, err := store.Get(keyDel); err == nil {
			delHolders++
		}
		tk := storage.TileKey{Layer: storage.TombLayerPrefix + keyDel.Layer, TX: keyDel.TX, TY: keyDel.TY}
		if _, err := store.Get(tk); err == nil {
			markers++
		}
	}
	if holders != 3 {
		t.Errorf("tile persisted on %d shards, want exactly R=3", holders)
	}
	if delHolders != 0 {
		t.Errorf("deleted tile still live on %d shards", delHolders)
	}
	if markers != 3 {
		t.Errorf("tombstone marker persisted on %d shards, want exactly R=3", markers)
	}
}
