package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"hdmaps/internal/cluster"
	"hdmaps/internal/core"
	"hdmaps/internal/resilience"
	"hdmaps/internal/storage"
)

// freePort grabs an ephemeral loopback address for a server started by
// the code under test (which takes an address, not a listener).
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// TestServeClusterEndToEnd boots `hdmapctl serve -cluster 5 -replicas 3`
// the way main would, writes and reads a tile through the router,
// checks /clusterz, runs the `cluster` status subcommand against it,
// and verifies a clean drain persisted the tile on exactly R shard
// directories.
func TestServeClusterEndToEnd(t *testing.T) {
	dir := t.TempDir()
	addr := freePort(t)
	base := "http://" + addr

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() {
		served <- serveCluster(ctx, dir, addr, 5, 3, resilience.Config{CacheSize: -1}, 5*time.Second)
	}()
	waitReady(t, base)

	m := core.NewMap("cluster-tile")
	m.Clock = 7
	data := storage.EncodeBinary(m)
	key := storage.TileKey{Layer: "base", TX: 3, TY: 4}
	path := fmt.Sprintf("%s/v1/tiles/%s/%d/%d", base, key.Layer, key.TX, key.TY)

	req, err := http.NewRequest(http.MethodPut, path, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(storage.ChecksumHeader, storage.Checksum(data))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PUT through router: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT status %d", resp.StatusCode)
	}

	cl := &storage.Client{Endpoints: []string{base}}
	got, err := cl.GetTile(ctx, key)
	if err != nil {
		t.Fatalf("GET through router: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("tile bytes differ through the cluster round trip")
	}

	resp, err = http.Get(base + "/clusterz")
	if err != nil {
		t.Fatal(err)
	}
	var st cluster.ClusterStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Members) != 5 || st.Replicas != 3 || st.ReadQuorum != 2 {
		t.Fatalf("clusterz shape: %d members, R=%d, RQ=%d", len(st.Members), st.Replicas, st.ReadQuorum)
	}
	for _, mem := range st.Members {
		if !mem.Alive {
			t.Errorf("member %s down in a healthy boot", mem.Name)
		}
	}

	// The status subcommand against the live router: healthy fleet means
	// a nil error (it reports down members as a failure).
	if err := cmdCluster(ctx, []string{"-base", base}); err != nil {
		t.Errorf("cluster subcommand: %v", err)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serveCluster: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveCluster did not return after cancellation")
	}

	// R=3 owners persisted the tile to their DirStores; the other two
	// shard directories must not have it.
	holders := 0
	for i := 0; i < 5; i++ {
		store, err := storage.NewDirStore(fmt.Sprintf("%s/node%d", dir, i))
		if err != nil {
			t.Fatal(err)
		}
		stored, err := store.Get(key)
		switch {
		case err == nil:
			holders++
			if !bytes.Equal(stored, data) {
				t.Errorf("node%d holds a divergent replica", i)
			}
		case errors.Is(err, storage.ErrNoTile):
		default:
			t.Fatal(err)
		}
	}
	if holders != 3 {
		t.Errorf("tile persisted on %d shards, want exactly R=3", holders)
	}
}
