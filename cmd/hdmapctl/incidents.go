// `hdmapctl incidents` — print a cluster router's /incidentz table:
// one block per incident with its alert arc, bundled journal events,
// and exemplar trace, newest first.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"hdmaps/internal/obs/incident"
)

func cmdIncidents(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("incidents", flag.ExitOnError)
	base := fs.String("base", "http://localhost:8080", "cluster router URL")
	state := fs.String("state", "", "filter: open or resolved (default both)")
	asJSON := fs.Bool("json", false, "print the raw /incidentz document")
	if err := fs.Parse(args); err != nil {
		return err
	}
	url := *base + "/incidentz"
	if *state != "" {
		url += "?state=" + *state
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/incidentz: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	if *asJSON {
		fmt.Println(strings.TrimSpace(string(body)))
		return nil
	}
	var doc incident.Status
	if err := json.Unmarshal(body, &doc); err != nil {
		return err
	}
	fmt.Print(renderIncidents(&doc, *base))
	return nil
}

// renderIncidents formats one /incidentz document. Pure (no I/O, no
// clock) so tests can assert on exact output.
func renderIncidents(doc *incident.Status, base string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "hdmapctl incidents — %s  (%d open, %d resolved, generated %s)\n",
		base, doc.Open, doc.Resolved, doc.GeneratedAt.Format(time.TimeOnly))
	if len(doc.Incidents) == 0 {
		b.WriteString("\n  no incidents\n")
		return b.String()
	}
	for _, inc := range doc.Incidents {
		fmt.Fprintf(&b, "\n  %s %s %s [%s]\n", inc.ID, strings.ToUpper(inc.State),
			inc.Objective, inc.Severity)
		if inc.Description != "" {
			fmt.Fprintf(&b, "    %s\n", inc.Description)
		}
		fmt.Fprintf(&b, "    opened %s", inc.OpenedAt.Format(time.TimeOnly))
		if inc.State == incident.StateResolved {
			fmt.Fprintf(&b, ", resolved %s (%s)",
				inc.ResolvedAt.Format(time.TimeOnly),
				inc.ResolvedAt.Sub(inc.OpenedAt).Round(time.Second))
		}
		b.WriteByte('\n')
		if inc.ExemplarTraceID != "" {
			fmt.Fprintf(&b, "    exemplar trace %s\n", inc.ExemplarTraceID)
		}
		for _, step := range inc.Arc {
			fmt.Fprintf(&b, "    arc  %s  %s -> %s  burn fast=%.1f slow=%.1f\n",
				step.At.Format(time.TimeOnly), step.From, step.To, step.BurnFast, step.BurnSlow)
		}
		for _, e := range inc.Events {
			fmt.Fprintf(&b, "    evt  %s  %-18s %s", e.At.Format(time.TimeOnly), e.Type, e.Node)
			if e.Detail != "" {
				fmt.Fprintf(&b, "  %s", e.Detail)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
