package main

import (
	"math/rand"
	"path/filepath"
	"testing"

	"hdmaps/internal/mapverify"
	"hdmaps/internal/storage"
	"hdmaps/internal/worldgen"
)

// TestCmdVerifyMap exercises the verify-map subcommand end to end: a
// pristine generated city verifies clean (nil error = exit 0), every
// worldgen corruption makes it return non-nil (= exit 1), the tile-
// store path stitches and verifies a layer, and -disable silences the
// one firing rule.
func TestCmdVerifyMap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := worldgen.GenerateGrid(worldgen.GridParams{
		Rows: 3, Cols: 3, Lanes: 2, TrafficLights: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	clean := filepath.Join(dir, "clean.hdmp")
	if err := saveMap(g.Map, clean); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerifyMap([]string{clean}); err != nil {
		t.Fatalf("pristine map should verify clean: %v", err)
	}
	if err := cmdVerifyMap([]string{"-json", "-in", clean}); err != nil {
		t.Fatalf("json mode changed the verdict: %v", err)
	}

	// Every corruption class must flip the exit status.
	for _, kind := range worldgen.CorruptionKinds() {
		m := g.Map.Clone()
		if _, ok := worldgen.ApplyCorruption(m, kind, rng); !ok {
			t.Fatalf("no victim for %s", kind)
		}
		bad := filepath.Join(dir, kind.String()+".hdmp")
		if err := saveMap(m, bad); err != nil {
			t.Fatal(err)
		}
		if err := cmdVerifyMap([]string{bad}); err == nil {
			t.Errorf("%s: verify-map returned success on a corrupted map", kind)
		}
	}

	// Tile-store path: split the city, stitch the layer back, verify.
	store, err := storage.NewDirStore(filepath.Join(dir, "tiles"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (storage.Tiler{}).SaveMap(store, g.Map, "base"); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerifyMap([]string{"-tiles", filepath.Join(dir, "tiles"), "-layer", "base"}); err != nil {
		t.Fatalf("stitched tile layer should verify clean: %v", err)
	}

	// -disable turns the one firing rule off, flipping exit back to 0.
	m := g.Map.Clone()
	if _, ok := worldgen.ApplyCorruption(m, worldgen.CorruptOrphanSuccessor, rng); !ok {
		t.Fatal("no victim")
	}
	orphaned := filepath.Join(dir, "orphaned.hdmp")
	if err := saveMap(m, orphaned); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerifyMap([]string{"-disable", mapverify.RuleDanglingRef, orphaned}); err != nil {
		t.Fatalf("disabling the firing rule should verify clean, got %v", err)
	}
}
