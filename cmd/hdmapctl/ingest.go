package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"hdmaps/internal/chaos"
	"hdmaps/internal/core"
	"hdmaps/internal/geo"
	"hdmaps/internal/storage"
	"hdmaps/internal/update/incremental"
	"hdmaps/internal/update/ingest"
)

// cmdIngest runs the supervised maintenance service over a version
// store: reports (from a JSON file, or synthesized with optional chaos
// corruption) are validated, quarantined, fused, and committed through
// the gate. The store directory survives runs: re-invoking ingest
// appends versions, and rollback can step back through them.
func cmdIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	in := fs.String("in", "", "base map to seed an empty store (.hdmp or .json)")
	storeDir := fs.String("store", "versions", "version store directory")
	tilesDir := fs.String("tiles", "", "optional tile directory to publish committed versions to")
	layer := fs.String("layer", "serve", "published tile layer")
	reportsPath := fs.String("reports", "", "JSON file with an array of reports (overrides -synth)")
	synth := fs.Int("synth", 200, "synthesize this many fleet reports from the current map")
	seed := fs.Int64("seed", 42, "seed for synthesis and fault injection")
	malform := fs.Float64("malform", 0.08, "probability a synthetic report is malformed")
	byzantine := fs.Float64("byzantine", 0.05, "probability a synthetic report is mis-georeferenced")
	duplicate := fs.Float64("duplicate", 0.05, "probability a synthetic report is replayed")
	stale := fs.Float64("stale", 0.05, "probability a synthetic report is stale")
	commitEvery := fs.Int("commit-every", 16, "accepted reports per committed version")
	if err := fs.Parse(args); err != nil {
		return err
	}

	vs, err := ingest.OpenVersionDir(*storeDir, ingest.GateConfig{})
	if err != nil {
		return err
	}
	if vs.CurrentSeq() == 0 {
		if *in == "" {
			return fmt.Errorf("store %s is empty: seed it with -in <base map>", *storeDir)
		}
		m, err := loadMap(*in)
		if err != nil {
			return err
		}
		v, err := vs.Commit(m, "genesis from "+*in)
		if err != nil {
			return err
		}
		fmt.Printf("seeded %s with v%d (%d elements)\n", *storeDir, v.Seq, v.Elements)
	}

	var reports []ingest.Report
	if *reportsPath != "" {
		data, err := os.ReadFile(*reportsPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &reports); err != nil {
			return fmt.Errorf("decode %s: %w", *reportsPath, err)
		}
		fmt.Printf("ingesting %d reports from %s\n", len(reports), *reportsPath)
	} else {
		reports = synthReports(vs.Current(), *synth, *seed, chaos.ReportChaosConfig{
			Seed:          *seed,
			MalformProb:   *malform,
			ByzantineProb: *byzantine,
			DuplicateProb: *duplicate,
			StaleProb:     *stale,
		})
		fmt.Printf("ingesting %d synthetic reports (seed %d)\n", len(reports), *seed)
	}

	cfg := ingest.Config{
		CommitEvery: *commitEvery,
		// A batch run hands the whole set over at once; overload
		// shedding is for live streams, not operator batches.
		QueueDepth: len(reports) + 16,
	}
	if *tilesDir != "" {
		ts, err := storage.NewDirStore(*tilesDir)
		if err != nil {
			return err
		}
		cfg.Publish = &ingest.PublishConfig{Store: ts, Layer: *layer, Tiler: storage.Tiler{}}
	}
	svc, err := ingest.NewService(vs, cfg)
	if err != nil {
		return err
	}
	for _, r := range reports {
		if err := svc.Submit(r); err != nil {
			return err
		}
	}
	svc.Close()
	if svc.Metrics().Accepted > 0 {
		if err := svc.Commit("ingest flush"); err != nil {
			fmt.Printf("final commit rejected: %v\n", err)
		}
	}

	m := svc.Metrics()
	fmt.Printf("submitted %d, accepted %d, quarantined %d\n", m.Submitted, m.Accepted, m.QuarantineTotal)
	printReasons(m.Quarantined)
	fmt.Printf("commits %d (rejected %d), published %d (errors %d)\n",
		m.Commits, m.CommitsRejected, m.Published, m.PublishErrors)
	if len(m.OpenBreakers) > 0 {
		fmt.Printf("open breakers: %v\n", m.OpenBreakers)
	}
	fmt.Printf("current version: v%d\n", m.CurrentVersion)
	return nil
}

func printReasons(counts map[ingest.Reason]uint64) {
	keys := make([]string, 0, len(counts))
	for k, v := range counts {
		if v > 0 {
			keys = append(keys, string(k))
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-10s %d\n", k, counts[ingest.Reason(k)])
	}
}

// synthReports fabricates fleet reports by re-observing the map's point
// elements with sensor noise, then mangles them through the chaos
// injector so the run exercises quarantine and the gate.
func synthReports(m *core.Map, n int, seed int64, chaosCfg chaos.ReportChaosConfig) []ingest.Report {
	type anchor struct {
		p     geo.Vec2
		class core.Class
	}
	var anchors []anchor
	for _, id := range m.PointIDs() {
		p, _ := m.Point(id)
		anchors = append(anchors, anchor{p: geo.V2(p.Pos.X, p.Pos.Y), class: p.Class})
	}
	if len(anchors) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	inj := chaos.NewReportInjector(chaosCfg)
	var out []ingest.Report
	for i := 0; i < n; i++ {
		center := anchors[rng.Intn(len(anchors))]
		r := ingest.Report{
			Source: fmt.Sprintf("veh-%d", i%4),
			Seq:    uint64(i + 1),
			Stamp:  m.Clock + uint64(i+1),
		}
		for _, a := range anchors {
			if dx, dy := a.p.X-center.p.X, a.p.Y-center.p.Y; dx < -60 || dx > 60 || dy < -60 || dy > 60 {
				continue
			}
			r.Observations = append(r.Observations, incremental.Observation{
				Class:  a.class,
				P:      geo.V2(a.p.X+rng.NormFloat64()*0.3, a.p.Y+rng.NormFloat64()*0.3),
				PosVar: 0.1,
				Stamp:  r.Stamp,
			})
		}
		mangled, _ := inj.Mangle(r)
		out = append(out, mangled...)
	}
	return out
}

// cmdVersions lists a version store's commit log and cursor.
func cmdVersions(args []string) error {
	fs := flag.NewFlagSet("versions", flag.ExitOnError)
	storeDir := fs.String("store", "versions", "version store directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	vs, err := ingest.OpenVersionDir(*storeDir, ingest.GateConfig{})
	if err != nil {
		return err
	}
	versions := vs.Versions()
	if len(versions) == 0 {
		fmt.Println("store is empty")
		return nil
	}
	cur := vs.CurrentSeq()
	fmt.Printf("%-3s %-6s %-8s %-9s %-10s %s\n", "", "seq", "clock", "elements", "checksum", "note")
	for _, v := range versions {
		marker := ""
		if v.Seq == cur {
			marker = "*"
		}
		fmt.Printf("%-3s v%-5d %-8d %-9d %-10s %s\n", marker, v.Seq, v.Clock, v.Elements, v.Checksum, v.Note)
	}
	return nil
}

// cmdRollback moves a version store's cursor back n versions and, when
// a tile directory is given, republishes the restored version's tiles.
func cmdRollback(args []string) error {
	fs := flag.NewFlagSet("rollback", flag.ExitOnError)
	storeDir := fs.String("store", "versions", "version store directory")
	n := fs.Int("n", 1, "versions to step back")
	tilesDir := fs.String("tiles", "", "optional tile directory to republish")
	layer := fs.String("layer", "serve", "published tile layer")
	if err := fs.Parse(args); err != nil {
		return err
	}
	vs, err := ingest.OpenVersionDir(*storeDir, ingest.GateConfig{})
	if err != nil {
		return err
	}
	v, err := vs.Rollback(*n)
	if err != nil {
		return err
	}
	fmt.Printf("rolled back to v%d (%d elements, checksum %s)\n", v.Seq, v.Elements, v.Checksum)
	if *tilesDir != "" {
		ts, err := storage.NewDirStore(*tilesDir)
		if err != nil {
			return err
		}
		saved, deleted, err := (storage.Tiler{}).SyncMap(ts, vs.Frozen(), *layer)
		if err != nil {
			return err
		}
		fmt.Printf("republished %d tiles (%d stale dropped) to %s\n", saved, deleted, *tilesDir)
	}
	return nil
}
