// Package hdmaps is an ecosystem library for High-Definition (HD) maps,
// reproducing the systems surveyed in "On the Ecosystem of
// High-Definition (HD) Maps" (ICDE 2024) as one coherent, testable Go
// codebase.
//
// The library is organised along the survey's Table I taxonomy:
//
//   - Map modeling and design: a layered data model (physical /
//     relational / topological, à la Lanelet2 + HiDAM lane bundles) in
//     internal/core, the HDMI-Loc 8-bit semantic raster in
//     internal/raster, and compact vector / raw / JSON codecs with a
//     Morton-tiled, layer-decoupled store in internal/storage.
//   - Map creation: LiDAR mapping pipelines (internal/creation/lidarmap),
//     crowdsourced probe-data mapping with corrective feedback
//     (internal/creation/crowd), and aerial+ground / smartphone fusion
//     (internal/creation/fusion).
//   - Map maintenance and update: SLAMCU DBN change detection
//     (internal/update/slamcu), fleet-based boosted change classification
//     (internal/update/crowdupdate), and incremental Kalman fusion with
//     time decay plus RSU pre-aggregation (internal/update/incremental).
//   - Applications: localization (internal/apps/localization), 6-DoF pose
//     estimation (internal/apps/pose), lane-level planning and predictive
//     cruise control (internal/apps/planning[.../pcc]), map-prior
//     perception (internal/apps/perception), and indoor ATVs
//     (internal/apps/atv).
//
// Substrates — geometry, spatial indexes, filters, point-cloud
// processing, sensor and world simulation — live in internal/geo,
// internal/spatial, internal/filters, internal/pointcloud,
// internal/sensors, internal/sim and internal/worldgen.
//
// This root package re-exports the everyday surface (the map model,
// world generation, persistence, routing) so that typical programs need
// a single import; specialised pipelines are imported directly. The
// runnable entry points are cmd/hdmapctl (toolbox CLI), cmd/mapbench
// (regenerates every table and figure of the survey) and the programs
// under examples/.
package hdmaps
